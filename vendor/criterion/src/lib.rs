//! Offline stand-in for `criterion`.
//!
//! Implements the measurement surface the bench suite uses:
//! [`Criterion`] with `warm_up_time`/`measurement_time`/`sample_size`/
//! `configure_from_args`, `bench_function`, [`BenchmarkGroup`] with
//! `bench_with_input`/`throughput`/`finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Two execution modes, chosen by `configure_from_args`:
//!
//! * **Measure** — when the process arguments contain `--bench` (cargo
//!   passes it under `cargo bench`): warm up, then time `sample_size`
//!   samples and report the median per-iteration latency, criterion-
//!   style. No statistics beyond min/median/max — this is a tracking
//!   harness, not an inference engine.
//! * **Smoke** — otherwise (`cargo test` also runs `harness = false`
//!   bench targets): run each routine once so the code path stays
//!   exercised, and skip timing.
//!
//! Set `CRITERION_JSON=<path>` to append one JSON line per benchmark
//! (`{"id":…,"median_ns":…,…}`) for committed baselines.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup cost is amortized. The stand-in times every
/// routine call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units-of-work declaration for a group (reported, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Smoke,
    Measure,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
            mode: Mode::Smoke,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, warm_up: Duration) -> Self {
        self.warm_up = warm_up;
        self
    }

    /// Sets the total measurement duration budget.
    #[must_use]
    pub fn measurement_time(mut self, measurement: Duration) -> Self {
        self.measurement = measurement;
        self
    }

    /// Sets how many timing samples to take.
    #[must_use]
    pub fn sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = sample_size.max(2);
        self
    }

    /// Applies process arguments: `--bench` (passed by `cargo bench`)
    /// switches from smoke mode to real measurement.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|arg| arg == "--bench") {
            self.mode = Mode::Measure;
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            mode: self.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            sample: None,
        };
        f(&mut bencher);
        report(id, self.mode, None, bencher.sample.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks reported under a shared prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares units-of-work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            sample: None,
        };
        f(&mut bencher, input);
        let full_id = format!("{}/{}", self.name, id.id);
        report(
            &full_id,
            self.criterion.mode,
            self.throughput,
            bencher.sample.as_ref(),
        );
        self
    }

    /// Runs one benchmark without a parameterized input.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            sample: None,
        };
        f(&mut bencher);
        let full_id = format!("{}/{id}", self.name);
        report(
            &full_id,
            self.criterion.mode,
            self.throughput,
            bencher.sample.as_ref(),
        );
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Per-iteration timing distilled from the samples.
#[derive(Debug)]
struct Sample {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
    samples: usize,
    iterations: u64,
}

/// Drives the routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    sample: Option<Sample>,
}

impl Bencher {
    /// Times `routine` (smoke mode: runs it once, untimed).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).max(1);
        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.sample = Some(summarize(per_iter_ns, iters_per_sample));
    }

    /// Times `routine` over fresh inputs from `setup`; setup cost is
    /// excluded by timing each routine call individually.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = (timed.as_secs_f64() / warm_iters as f64).max(1e-9);
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).max(1);
        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        self.sample = Some(summarize(per_iter_ns, iters_per_sample));
    }
}

fn summarize(mut per_iter_ns: Vec<f64>, iterations: u64) -> Sample {
    per_iter_ns.sort_by(f64::total_cmp);
    let samples = per_iter_ns.len();
    Sample {
        min_ns: per_iter_ns[0],
        median_ns: per_iter_ns[samples / 2],
        max_ns: per_iter_ns[samples - 1],
        samples,
        iterations,
    }
}

fn report(id: &str, mode: Mode, throughput: Option<Throughput>, sample: Option<&Sample>) {
    match (mode, sample) {
        (Mode::Smoke, _) => println!("{id:<50} smoke ok"),
        (Mode::Measure, None) => println!("{id:<50} (no measurement recorded)"),
        (Mode::Measure, Some(sample)) => {
            println!(
                "{id:<50} time:   [{} {} {}]",
                fmt_ns(sample.min_ns),
                fmt_ns(sample.median_ns),
                fmt_ns(sample.max_ns),
            );
            if let Some(Throughput::Elements(elements)) = throughput {
                let per_sec = elements as f64 / (sample.median_ns / 1e9);
                println!("{:<50} thrpt:  {per_sec:.0} elem/s", "");
            }
            export_json(id, throughput, sample);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Appends one JSON line per measured benchmark to `$CRITERION_JSON`.
fn export_json(id: &str, throughput: Option<Throughput>, sample: &Sample) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let elements = match throughput {
        Some(Throughput::Elements(elements)) => format!(",\"elements\":{elements}"),
        _ => String::new(),
    };
    let line = format!(
        "{{\"id\":\"{id}\",\"median_ns\":{:.0},\"min_ns\":{:.0},\"max_ns\":{:.0},\
         \"samples\":{},\"iters_per_sample\":{}{elements}}}\n",
        sample.median_ns, sample.min_ns, sample.max_ns, sample.samples, sample.iterations,
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = result {
        eprintln!("CRITERION_JSON export to {path} failed: {error}");
    }
}

/// Bundles benchmark targets under a runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut count = 0;
        let mut criterion = Criterion::default(); // smoke: no --bench arg
        criterion.bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            sample_size: 5,
            mode: Mode::Measure,
        };
        criterion.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64.pow(7))));
        let mut group = criterion.benchmark_group("grouped");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            sample_size: 3,
            mode: Mode::Measure,
        };
        criterion.bench_function("drain", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    assert_eq!(v.len(), 3);
                    v.clear();
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("build", 64).id, "build/64");
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
