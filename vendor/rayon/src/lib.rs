//! Offline stand-in for `rayon`.
//!
//! Covers the surface the workspace uses: `slice.par_iter().map(f)
//! .collect::<Vec<_>>()`, [`ThreadPoolBuilder`] → [`ThreadPool::install`],
//! and [`current_num_threads`]. Scheduling is delegated to
//! [`mine_pool`], the workspace's persistent work-stealing pool: one
//! process-wide set of long-lived workers with per-worker Chase–Lev
//! deques and an injector queue for external submissions.
//!
//! [`ThreadPool`] is therefore purely a *budget*: `install` scopes a
//! thread count (plus helper permits) over the enclosed parallel
//! operations without spawning anything — exactly rayon's semantics of
//! limiting parallelism, minus per-pool threads. Nested operations
//! inherit the innermost budget and feed the same deques, so nesting a
//! `par_iter` inside a pooled task composes instead of oversubscribing.
//! Results are written into pre-sized slots by input index, so output
//! order is deterministic regardless of scheduling.

use std::error::Error;
use std::fmt;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

/// The number of worker threads parallel operations started from this
/// thread will use.
#[must_use]
pub fn current_num_threads() -> usize {
    mine_pool::current_num_threads()
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map on the pool under the current thread budget and
    /// collects results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(mine_pool::map_slice(self.items, self.f))
    }
}

/// Collection types a parallel map can gather into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(items: Vec<R>) -> Self {
        items
    }
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means auto-detect, like rayon.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            mine_pool::default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical pool: a thread budget that [`install`](ThreadPool::install)
/// applies to parallel operations started inside it. The worker threads
/// themselves live in the process-wide [`mine_pool`] registry and are
/// shared by every `ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread budget active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        mine_pool::install(self.threads, f)
    }

    /// This pool's thread budget.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error building a thread pool (never produced by this stand-in, but
/// the signature matches rayon's fallible `build`).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, ThreadPoolBuilder};

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_workloads_still_ordered() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = pool.install(|| {
            items
                .par_iter()
                .map(|&x| {
                    // Make early items much slower than late ones.
                    if x < 4 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    x
                })
                .collect()
        });
        assert_eq!(out, items);
    }

    #[test]
    fn install_scopes_the_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn zero_threads_means_auto() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn single_item_and_empty_inputs() {
        let one = [7u8];
        let collected: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(collected, vec![8]);
        let empty: Vec<u8> = Vec::new();
        let collected: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
    }

    #[test]
    fn nested_par_iter_inherits_the_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let outer: Vec<u64> = (0..8).collect();
        let out: Vec<u64> = pool.install(|| {
            outer
                .par_iter()
                .map(|&o| {
                    assert_eq!(current_num_threads(), 4);
                    let inner: Vec<u64> = (0..32).collect();
                    inner
                        .par_iter()
                        .map(|&i| o * 100 + i)
                        .collect::<Vec<_>>()
                        .len() as u64
                })
                .collect()
        });
        assert_eq!(out, vec![32; 8]);
    }
}
