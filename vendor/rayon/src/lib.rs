//! Offline stand-in for `rayon`.
//!
//! Covers the surface the workspace uses: `slice.par_iter().map(f)
//! .collect::<Vec<_>>()`, [`ThreadPoolBuilder`] → [`ThreadPool::install`],
//! and [`current_num_threads`]. Work is distributed dynamically — each
//! worker thread claims the next unclaimed index from a shared atomic
//! counter, so skewed per-item costs balance like rayon's stealing —
//! and results are returned in input order, so output is deterministic
//! regardless of scheduling.
//!
//! Unlike real rayon there is no persistent pool: each parallel
//! operation spawns scoped worker threads. Spawn cost (~tens of µs) is
//! noise against the per-exam analysis this repo parallelizes.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads parallel operations started from this
/// thread will use.
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Runs `f(&items[i])` for every index with `threads` workers pulling
/// indices off a shared counter; returns results in input order.
fn parallel_map<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, f, slot_ptr) = (&next, &f, &slot_ptr);
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let value = f(&items[index]);
                // Safety: each index is claimed by exactly one worker
                // (fetch_add), slots outlives the scope, and disjoint
                // indices are disjoint memory.
                unsafe { slot_ptr.0.add(index).write(Some(value)) };
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by a worker"))
        .collect()
}

struct SendPtr<R>(*mut Option<R>);

// Safety: workers write disjoint indices behind this pointer; the
// referent (`slots`) outlives the thread scope.
unsafe impl<R: Send> Sync for SendPtr<R> {}
unsafe impl<R: Send> Send for SendPtr<R> {}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map on the current thread budget and collects results
    /// in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let threads = current_num_threads();
        C::from_ordered_vec(parallel_map(self.items, threads, &self.f))
    }
}

/// Collection types a parallel map can gather into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(items: Vec<R>) -> Self {
        items
    }
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means auto-detect, like rayon.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical pool: a thread budget that [`install`](ThreadPool::install)
/// applies to parallel operations started inside it.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread budget active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|cell| cell.replace(Some(self.threads)));
        let result = f();
        INSTALLED_THREADS.with(|cell| cell.set(previous));
        result
    }

    /// This pool's thread budget.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error building a thread pool (never produced by this stand-in, but
/// the signature matches rayon's fallible `build`).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, ThreadPoolBuilder};

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_workloads_still_ordered() {
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                // Make early items much slower than late ones.
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                x
            })
            .collect();
        assert_eq!(out, items);
    }

    #[test]
    fn install_scopes_the_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn zero_threads_means_auto() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn single_item_and_empty_inputs() {
        let one = [7u8];
        let collected: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(collected, vec![8]);
        let empty: Vec<u8> = Vec::new();
        let collected: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
    }
}
