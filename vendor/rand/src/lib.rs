//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the surface the workspace uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] — over a xoshiro256++
//! generator seeded via SplitMix64. Not the same stream as upstream
//! rand's ChaCha12, but deterministic per seed with equivalent
//! statistical quality for simulation purposes.

/// Sources of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can produce. Mirrors rand's structure —
/// per-type sampling lives here so [`SampleRange`] can be a single
/// blanket impl per range shape, which is what lets inference resolve
/// unsuffixed literals like `rng.gen_range(-1.0..1.0)`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impl {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded draw (Lemire); bias is
                // negligible for the span sizes simulations use.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}
int_uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impl {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                start + unit * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                start + unit * (end - start)
            }
        }
    )*};
}
float_uniform_impl!(f32, f64);

/// A half-open or inclusive range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }

    fn is_empty_range(&self) -> bool {
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }

    fn is_empty_range(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

/// The user-facing generator methods.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Picks a uniformly random element (None when empty).
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, (0..20).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
