//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: immutable, cheap to clone, and
//! dereferences to `[u8]` like the real thing. Slicing/splitting APIs
//! are omitted — the workspace only builds, clones, and reads frames.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_deref() {
        let bytes = Bytes::from(vec![1, 2, 3]);
        assert_eq!(bytes.len(), 3);
        assert_eq!(&bytes[..], &[1, 2, 3]);
        assert!(bytes.starts_with(&[1, 2]));
        assert!(!Bytes::new().starts_with(&[1]));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from_static(b"FRAME");
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from_static(b"OTHER"));
        assert_eq!(format!("{a:?}"), "b\"FRAME\"");
        assert_eq!(format!("{:?}", Bytes::from(vec![0x00])), "b\"\\x00\"");
    }
}
