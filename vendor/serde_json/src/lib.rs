//! Offline stand-in for `serde_json`: renders and parses the `serde`
//! stand-in's [`Value`] tree as JSON text.
//!
//! Output is deterministic: a pure function of the value being
//! serialized (object order is insertion order; the serde stand-in
//! sorts unordered collections). The batch-analysis determinism proofs
//! compare these bytes directly.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Number, Serialize};

/// Serialization/deserialization failure (line/column for parse errors).
#[derive(Debug)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        Self {
            message: message.into(),
            line,
            column,
        }
    }

    fn data(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::data(err.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for tree values; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for tree values; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse error (with position) for malformed JSON, or a data
/// error when the JSON shape does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(number) => write_number(out, number),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, number: &Number) {
    match number {
        Number::PosInt(n) => out.push_str(&n.to_string()),
        Number::NegInt(n) => out.push_str(&n.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is the shortest round-trippable form; pin
                // integral floats to `N.0` like serde_json does.
                let text = format!("{f}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn position(&self) -> (usize, usize) {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        (line, column)
    }

    fn error(&self, message: impl Into<String>) -> Error {
        let (line, column) = self.position();
        Error::parse(message, line, column)
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("invalid utf-8"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.error("invalid utf-8")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid hex"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(&b'e') | Some(&b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(&b'+') | Some(&b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        let parsed: f64 = from_str("2.0").unwrap();
        assert_eq!(parsed, 2.0);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_and_unescapes() {
        let s = "a\"b\\c\nd\t中";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn duration_round_trips() {
        let d = std::time::Duration::new(61, 123_456_789);
        let json = to_string(&d).unwrap();
        let back: std::time::Duration = from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![(1u32, "x".to_string())];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
