//! Offline stand-in for `crossbeam`.
//!
//! Provides `channel::unbounded` with cloneable senders *and*
//! receivers (the multi-producer multi-consumer shape std's mpsc lacks)
//! over a `Mutex<VecDeque>` + `Condvar`. Throughput is far below real
//! crossbeam, but the monitor traffic here is light.

pub mod channel {
    //! MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<QueueState<T>>,
        ready: Condvar,
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The error returned when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty right now.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Why a timed receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if no receiver can ever see it.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receivers hold an Arc too, so strong_count > senders means
            // at least one receiver is still alive.
            let mut state = self.shared.queue.lock().unwrap();
            if Arc::strong_count(&self.shared) <= state.senders {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let none_left = state.senders == 0;
            drop(state);
            if none_left {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(TryRecvError::Disconnected);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a value arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if result.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let drained: Vec<i32> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
            assert_eq!(drained, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for j in 0..25 {
                            tx.send(i * 100 + j).unwrap();
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            drop(tx);
            let mut received = Vec::new();
            while let Ok(value) = rx.recv() {
                received.push(value);
            }
            assert_eq!(received.len(), 100);
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_gets_value_sent_later() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(42u8).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        }

        #[test]
        fn send_fails_with_no_receiver() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1u8), Err(SendError(1u8)));
        }
    }
}
