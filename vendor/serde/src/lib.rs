//! Offline stand-in for the `serde` crate.
//!
//! The sanctioned build environment has no network access, so the real
//! serde cannot be fetched. This crate keeps the public surface the
//! workspace actually uses — `Serialize`/`Deserialize` traits plus the
//! derive macros — but trades serde's zero-copy visitor architecture
//! for a simple tree [`Value`] data model. The only (de)serializer in
//! the workspace is `serde_json`, which renders and parses this tree
//! directly, so nothing of value is lost.
//!
//! Determinism note: `Object` preserves insertion order and unordered
//! std collections (`HashMap`, `HashSet`) are serialized in sorted
//! order, so serialization is a pure function of the value — a property
//! the batch-analysis determinism tests rely on.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized tree: the intersection of what JSON can express and
/// what the workspace's types need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers.
    Number(Number),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping integers exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integers.
    PosInt(u64),
    /// Negative integers.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, found Y" convenience.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// "missing field" convenience.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the serialized tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the serialized tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::PosInt(n)) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::PosInt(n)) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::Number(Number::NegInt(n)) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Number(Number::Float(f64::from(*self)))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::Float(f)) => Ok(*f as $ty),
                    Value::Number(Number::PosInt(n)) => Ok(*n as $ty),
                    Value::Number(Number::NegInt(n)) => Ok(*n as $ty),
                    Value::Null => Ok(<$ty>::NAN),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s: String = Deserialize::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $index:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", value))?;
                let expected = [$($index,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$index])?,)+))
            }
        }
    )+};
}
tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Serializes a map entry key: map keys must render as strings.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        other => panic!("map key must serialize to a string, got {}", other.kind()),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::String(k.clone()))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::String(k.clone()))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        rendered.sort_by_key(|v| match v {
            Value::String(s) => s.clone(),
            other => format!("{other:?}"),
        });
        Value::Array(rendered)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

// Matches serde's `{"secs": …, "nanos": …}` encoding.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs: u64 = Deserialize::from_value(
            value
                .get("secs")
                .ok_or_else(|| Error::missing_field("secs"))?,
        )?;
        let nanos: u32 = Deserialize::from_value(
            value
                .get("nanos")
                .ok_or_else(|| Error::missing_field("nanos"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
