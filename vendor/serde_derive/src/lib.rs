//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros for
//! the workspace's `serde` stand-in. Supports the shapes this workspace
//! actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype included; serialized as the inner value for
//!   arity 1, as an array otherwise),
//! * enums with unit / newtype / tuple / struct variants (externally
//!   tagged, like real serde),
//! * the container attribute `#[serde(try_from = "T", into = "T")]`.
//!
//! Unsupported shapes (generics, unions) produce a compile error naming
//! the limitation instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match direction {
                Direction::Serialize => generate_serialize(&item),
                Direction::Deserialize => generate_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------------
// A minimal item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// `#[serde(try_from = "...", into = "...")]` payload, if present.
    try_from: Option<String>,
    into: Option<String>,
    shape: Shape,
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    form: VariantForm,
}

enum VariantForm {
    Unit,
    Tuple { arity: usize },
    Struct { fields: Vec<String> },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(ident)) = self.peek() {
            if ident.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(punct)) = self.peek() {
            if punct.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consumes `#[...]` attributes, returning the token string of any
    /// `#[serde(...)]` payloads (concatenated).
    fn eat_attributes(&mut self) -> String {
        let mut serde_payload = String::new();
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return serde_payload;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(group)) = self.next() {
                let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                if let Some(TokenTree::Ident(head)) = inner.first() {
                    if head.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            serde_payload.push_str(&args.stream().to_string());
                            serde_payload.push(',');
                        }
                    }
                }
            }
        }
    }

    /// Consumes a visibility modifier (`pub`, `pub(crate)`, …).
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(group)) = self.peek() {
                if group.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    let serde_attr = cursor.eat_attributes();
    cursor.eat_visibility();

    let is_struct = cursor.eat_ident("struct");
    let is_enum = !is_struct && cursor.eat_ident("enum");
    if !is_struct && !is_enum {
        return Err("serde derive supports only structs and enums".to_string());
    }

    let name = match cursor.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected type name".to_string()),
    };

    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stand-in does not support generics (on `{name}`)"
        ));
    }

    let (try_from, into) = parse_serde_attr(&serde_attr);

    let shape = if is_struct {
        match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct {
                    fields: parse_named_fields(group.stream())?,
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    arity: count_tuple_fields(group.stream()),
                }
            }
            _ => return Err(format!("unsupported struct shape for `{name}`")),
        }
    } else {
        match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(group.stream())?,
            },
            _ => return Err(format!("expected enum body for `{name}`")),
        }
    };

    Ok(Item {
        name,
        try_from,
        into,
        shape,
    })
}

/// Extracts `try_from = "T"` / `into = "T"` from a serde attribute
/// payload rendered as a token string.
fn parse_serde_attr(payload: &str) -> (Option<String>, Option<String>) {
    let mut try_from = None;
    let mut into = None;
    for part in payload.split(',') {
        let Some((key, value)) = part.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').trim().to_string();
        match key {
            "try_from" => try_from = Some(value),
            "into" => into = Some(value),
            _ => {}
        }
    }
    (try_from, into)
}

/// Parses `name: Type, …` field lists, returning the names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cursor.eat_attributes();
        if cursor.peek().is_none() {
            return Ok(fields);
        }
        cursor.eat_visibility();
        let name = match cursor.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !cursor.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_type(&mut cursor);
        fields.push(name);
    }
}

/// Skips a type (everything up to a top-level `,`), tracking `<` depth
/// so generic arguments' commas do not terminate the field.
fn skip_type(cursor: &mut Cursor) {
    let mut angle_depth = 0usize;
    while let Some(token) = cursor.peek() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                cursor.pos += 1;
                return;
            }
            _ => {}
        }
        cursor.pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    let mut count = 0usize;
    while cursor.peek().is_some() {
        cursor.eat_attributes();
        if cursor.peek().is_none() {
            break;
        }
        cursor.eat_visibility();
        skip_type(&mut cursor);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.eat_attributes();
        if cursor.peek().is_none() {
            return Ok(variants);
        }
        let name = match cursor.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let form = match cursor.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(group.stream());
                cursor.pos += 1;
                VariantForm::Tuple { arity }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream())?;
                cursor.pos += 1;
                VariantForm::Struct { fields }
            }
            _ => VariantForm::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if cursor.eat_punct('=') {
            while let Some(token) = cursor.peek() {
                if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cursor.pos += 1;
            }
        }
        cursor.eat_punct(',');
        variants.push(Variant { name, form });
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into {
        format!(
            "let __converted: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__converted)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                    entries.join(", ")
                )
            }
            Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::TupleStruct { arity } => {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            }
            Shape::Enum { variants } => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| serialize_variant_arm(name, v))
                    .collect();
                format!("match self {{\n{}\n}}", arms.join(",\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.form {
        VariantForm::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::String(::std::string::String::from(\"{v}\"))"
        ),
        VariantForm::Tuple { arity: 1 } => format!(
            "{enum_name}::{v}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([\
             (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]))"
        ),
        VariantForm::Tuple { arity } => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Object(::std::vec::Vec::from([\
                 (::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Array(::std::vec::Vec::from([{}])))]))",
                binders.join(", "),
                values.join(", ")
            )
        }
        VariantForm::Struct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                 (::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Object(::std::vec::Vec::from([{}])))]))",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_from) = &item.try_from {
        format!(
            "let __raw: {try_from} = ::serde::Deserialize::from_value(__value)?;\n\
             <{name} as ::std::convert::TryFrom<{try_from}>>::try_from(__raw)\
             .map_err(|e| ::serde::Error::custom(::std::format!(\"{{e}}\")))"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                let inits: Vec<String> = fields.iter().map(|f| named_field_init(f)).collect();
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Shape::TupleStruct { arity: 1 } => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Shape::TupleStruct { arity } => {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(\
                             __items.get({i}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "let __items = __value.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", __value))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::Enum { variants } => deserialize_enum_body(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// `field: from_value(obj field or Null)?` — missing fields fall back to
/// `Null` so `Option` fields deserialize to `None`, and other types
/// produce a "missing field" error.
fn named_field_init(field: &str) -> String {
    format!(
        "{field}: match __value.get(\"{field}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             ::std::option::Option::None => \
                 ::serde::Deserialize::from_value(&::serde::Value::Null)\
                 .map_err(|_| ::serde::Error::missing_field(\"{field}\"))?,\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.form, VariantForm::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.form, VariantForm::Unit))
        .map(|v| deserialize_tagged_arm(name, v))
        .collect();

    format!(
        "match __value {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }},\n\
             __other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"{name} variant\", __other)),\n\
         }}",
        unit = if unit_arms.is_empty() {
            String::new()
        } else {
            unit_arms.join(",\n") + ","
        },
        tagged = if tagged_arms.is_empty() {
            String::new()
        } else {
            tagged_arms.join(",\n") + ","
        },
    )
}

fn deserialize_tagged_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.form {
        VariantForm::Unit => unreachable!("unit variants handled separately"),
        VariantForm::Tuple { arity: 1 } => format!(
            "\"{v}\" => ::std::result::Result::Ok(\
             {name}::{v}(::serde::Deserialize::from_value(__payload)?))"
        ),
        VariantForm::Tuple { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         __items.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "\"{v}\" => {{\n\
                     let __items = __payload.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", __payload))?;\n\
                     ::std::result::Result::Ok({name}::{v}({}))\n\
                 }}",
                elems.join(", ")
            )
        }
        VariantForm::Struct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(f).replace("__value", "__payload"))
                .collect();
            format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }})",
                inits.join(", ")
            )
        }
    }
}
