//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! lock methods return guards directly, recovering from poisoning by
//! taking the inner guard (parking_lot has no poisoning at all).

use std::sync::{self};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A readers-writer lock whose methods never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
        assert!(lock.try_read().is_some());
    }
}
