//! Offline stand-in for `proptest`.
//!
//! Generate-only property testing: strategies produce random values
//! from a deterministically seeded RNG and failures panic immediately —
//! there is no shrinking and no regression-file persistence. The
//! strategy combinators cover what the workspace's property tests use:
//! ranges, tuples, [`Just`], `prop_oneof!`, `prop_map`/`prop_flat_map`/
//! `prop_filter`/`prop_recursive`, [`collection::vec`], [`option::of`],
//! [`any`], and regex-literal string strategies (`"[a-z]{1,4}"`).

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }

        /// Maps generated values through `f`.
        fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Regenerates until `predicate` accepts the value.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            predicate: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                predicate,
            }
        }

        /// Builds recursive structures: `recurse` receives the strategy
        /// for the previous level. `_desired_size`/`_branch` shape real
        /// proptest's size heuristics and are ignored here; nesting is
        /// bounded by unrolling `depth` levels eagerly.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                // Mix in the base at every level so leaves stay likely.
                current = Union::new(vec![base.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }
    }

    /// A cheaply-cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + 'static,
        {
            self
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;

        fn generate(&self, rng: &mut StdRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        predicate: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.generate(rng);
                if (self.predicate)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.reason
            );
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].generate(rng)
        }
    }

    impl<T: rand::SampleUniform + PartialOrd + Copy + 'static> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + PartialOrd + Copy + 'static> Strategy
        for std::ops::RangeInclusive<T>
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategy_impl {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy_impl! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`crate::any`].

    use super::*;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_int_impl {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
                }
            }
        )*};
    }
    arbitrary_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy [`crate::any`] returns.
    pub struct AnyStrategy<A> {
        _marker: std::marker::PhantomData<fn() -> A>,
    }

    impl<A> Default for AnyStrategy<A> {
        fn default() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<A: Arbitrary> crate::strategy::Strategy for AnyStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `A` (`any::<bool>()`).
#[must_use]
pub fn any<A: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<A> {
    arbitrary::AnyStrategy::default()
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// A length bound for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_inclusive: len,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec size range");
            Self {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// A strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// A strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(some: S) -> OptionStrategy<S> {
        OptionStrategy { some }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        some: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.some.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Tiny regex-subset generator backing `&str` strategies.
    //!
    //! Supports the shapes the workspace's patterns use: literal chars,
    //! `\`-escapes, character classes with ranges and a trailing
    //! literal `-`, groups with alternation `(a|bc|d)`, and the
    //! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded capped at 8).

    use super::*;

    enum Node {
        Literal(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        /// Alternation over sequences.
        Group(Vec<Vec<Quantified>>),
    }

    struct Quantified {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Generates one string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_sequence(&mut chars, pattern);
        assert!(chars.next().is_none(), "unbalanced pattern: {pattern:?}");
        let mut out = String::new();
        for node in &nodes {
            emit(node, rng, &mut out);
        }
        out
    }

    type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn parse_sequence(chars: &mut Chars<'_>, pattern: &str) -> Vec<Quantified> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            chars.next();
            let node = match c {
                '\\' => {
                    let escaped = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    Node::Literal(escaped)
                }
                '[' => Node::Class(parse_class(chars, pattern)),
                '(' => {
                    let mut alternatives = vec![parse_sequence(chars, pattern)];
                    while chars.peek() == Some(&'|') {
                        chars.next();
                        alternatives.push(parse_sequence(chars, pattern));
                    }
                    assert_eq!(chars.next(), Some(')'), "unclosed group in {pattern:?}");
                    Node::Group(alternatives)
                }
                '.' => Node::Class(vec![(' ', '~')]),
                literal => Node::Literal(literal),
            };
            let (min, max) = parse_quantifier(chars, pattern);
            nodes.push(Quantified { node, min, max });
        }
        nodes
    }

    fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unclosed class in {pattern:?}"));
            match c {
                ']' => break,
                '\\' => {
                    let escaped = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    ranges.push((escaped, escaped));
                }
                low => {
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            // Trailing `-` before `]` is a literal dash.
                            Some(&']') | None => {
                                ranges.push((low, low));
                                ranges.push(('-', '-'));
                            }
                            Some(&high) => {
                                chars.next();
                                assert!(low <= high, "inverted range in {pattern:?}");
                                ranges.push((low, high));
                            }
                        }
                    } else {
                        ranges.push((low, low));
                    }
                }
            }
        }
        assert!(!ranges.is_empty(), "empty class in {pattern:?}");
        ranges
    }

    fn parse_quantifier(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
        match chars.peek() {
            Some(&'{') => {
                chars.next();
                let mut body = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => panic!("unclosed quantifier in {pattern:?}"),
                    }
                }
                if let Some((min, max)) = body.split_once(',') {
                    let min = min.trim().parse().expect("quantifier min");
                    let max = max.trim().parse().expect("quantifier max");
                    assert!(min <= max, "inverted quantifier in {pattern:?}");
                    (min, max)
                } else {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
            Some(&'?') => {
                chars.next();
                (0, 1)
            }
            Some(&'*') => {
                chars.next();
                (0, 8)
            }
            Some(&'+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn emit(node: &Quantified, rng: &mut StdRng, out: &mut String) {
        let count = rng.gen_range(node.min..=node.max);
        for _ in 0..count {
            match &node.node {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    // Weight ranges by their width so wide spans
                    // dominate the way they would in real proptest.
                    let total: u32 = ranges
                        .iter()
                        .map(|&(low, high)| high as u32 - low as u32 + 1)
                        .sum();
                    let mut pick = rng.gen_range(0..total);
                    for &(low, high) in ranges {
                        let width = high as u32 - low as u32 + 1;
                        if pick < width {
                            // Skip unassigned code points (surrogates);
                            // classes in practice avoid them entirely.
                            let c = char::from_u32(low as u32 + pick).unwrap_or(low);
                            out.push(c);
                            break;
                        }
                        pick -= width;
                    }
                }
                Node::Group(alternatives) => {
                    let pick = rng.gen_range(0..alternatives.len());
                    for inner in &alternatives[pick] {
                        emit(inner, rng, out);
                    }
                }
            }
        }
    }
}

/// Deterministic per-property RNG seed derived from the test path.
#[doc(hidden)]
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name keeps different properties decorrelated.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Mirrors proptest's macro: each `fn name(arg in strategy, …) { body }`
/// becomes a test running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(seed);
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Property equality assertion; panics on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Property inequality assertion; panics on match.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn regex_shapes_match_expectations() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = crate::string::generate_matching("[a-z][a-z0-9-]{0,12}", &mut rng);
            assert!((1..=13).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

            let s = crate::string::generate_matching(
                "cmi\\.interactions\\.[0-9]{1,2}\\.(id|type|result)",
                &mut rng,
            );
            assert!(s.starts_with("cmi.interactions."), "{s:?}");
            let tail = s.rsplit('.').next().unwrap();
            assert!(["id", "type", "result"].contains(&tail), "{s:?}");

            let s = crate::string::generate_matching("[ -~]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng();
        let strategy = prop_oneof![(0usize..3).prop_map(|n| n * 10), Just(99usize),];
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!([0, 10, 20, 99].contains(&v), "{v}");
        }
        let vecs = crate::collection::vec(0u8..5, 2..4);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((2..=3).contains(&v.len()));
        }
        let filtered = (0i32..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..50 {
            assert_eq!(filtered.generate(&mut rng) % 2, 0);
        }
        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(7u8), n..=n));
        for _ in 0..20 {
            let v = flat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
        let opt = crate::option::of(Just(1u8));
        let nones = (0..200)
            .filter(|_| opt.generate(&mut rng).is_none())
            .count();
        assert!(nones > 10 && nones < 120, "{nones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(tree: &Tree) -> usize {
            match tree {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..100 {
            assert!(depth(&strategy.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_runs_cases(
            x in 0usize..10,
            (a, b) in (0u8..5, 5u8..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!(a < 5 && b >= 5);
            prop_assert_ne!(u8::from(flag), 2);
        }
    }
}
