#!/usr/bin/env bash
# Smoke test for adaptive (CAT) delivery: author and calibrate a bank,
# boot a journaled `mine serve`, drive adaptive and mixed loadgen
# populations through it, leave one CAT sitting mid-flight, kill -9
# the server, recover from the same --data-dir, and assert the sitting
# resumed byte-identically (same ability estimate, same next item)
# before finishing it on the restarted server.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:7437}"
CLIENTS="${SMOKE_CLIENTS:-6}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
DATA="$WORKDIR/journal"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_adaptive: $1" >&2; exit 1; }

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $ADDR never came up"
}

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
for i in 1 2 3 4 5 6; do
  "$MINE" add-choice "$DB" "c$i" smoke A A "Calibrated item $i" right wrong1 wrong2 wrong3
done
"$MINE" add-exam "$DB" quiz "Adaptive smoke quiz" c1 c2 c3 c4 c5 c6

echo "==> calibrate the whole bank (adaptive delivery refuses raw items)"
"$MINE" calibrate "$DB" --auto

echo "==> serve on $ADDR with journal at $DATA"
"$MINE" serve "$DB" --addr "$ADDR" --threads 4 \
  --data-dir "$DATA" --fsync never --snapshot-every 16 &
SERVER_PID=$!
wait_up

echo "==> loadgen: $CLIENTS adaptive clients (simulated IRT respondents)"
"$MINE" loadgen "$ADDR" quiz --clients "$CLIENTS" --seed 11 --mode adaptive --db "$DB"

echo "==> loadgen: $CLIENTS mixed fixed/adaptive clients"
"$MINE" loadgen "$ADDR" quiz --clients "$CLIENTS" --seed 12 --mode mixed --db "$DB"

echo "==> start a CAT sitting and leave it mid-flight (one step journaled)"
curl -sf -X POST "http://$ADDR/sessions" \
  -d '{"exam":"quiz","student":"midflight","seed":3,"mode":"adaptive","max_items":6,"se_threshold":0.001}' \
  > "$WORKDIR/start.json"
grep -q '"mode":"adaptive"' "$WORKDIR/start.json" || fail "sitting did not start adaptive"
SESSION="$(sed -n 's/.*"session":"\([^"]*\)".*/\1/p' "$WORKDIR/start.json")"
[[ -n "$SESSION" ]] || fail "no session id in $(cat "$WORKDIR/start.json")"
curl -sf -X POST "http://$ADDR/sessions/$SESSION/answers" \
  -d '{"answer":{"Choice":"A"},"time_spent_secs":5}' > /dev/null \
  || fail "mid-flight answer refused"

echo "==> capture the pre-crash adaptive status and analysis"
curl -sf "http://$ADDR/sessions/$SESSION" > "$WORKDIR/status_before.json"
grep -q '"steps":1' "$WORKDIR/status_before.json" || fail "step was not recorded"
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/before.json"
grep -q '"analyses"' "$WORKDIR/before.json" || fail "no analysis before the crash"

echo "==> kill -9 the server"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "==> offline inspection: mine recover"
"$MINE" recover "$DATA"

echo "==> restart from the journal"
"$MINE" serve "$DB" --addr "$ADDR" --threads 4 --data-dir "$DATA" &
SERVER_PID=$!
wait_up

echo "==> the CAT sitting resumed byte-identically (θ̂, SE, next item)"
curl -sf "http://$ADDR/sessions/$SESSION" > "$WORKDIR/status_after.json"
cmp "$WORKDIR/status_before.json" "$WORKDIR/status_after.json" \
  || fail "adaptive status changed across the crash"

echo "==> the analysis over the mixed population survived byte-identically"
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/after.json"
cmp "$WORKDIR/before.json" "$WORKDIR/after.json" \
  || fail "analysis changed across the crash"
curl -sf "http://$ADDR/exams/quiz/analysis?mode=batch" > "$WORKDIR/batch.json"
cmp "$WORKDIR/after.json" "$WORKDIR/batch.json" \
  || fail "streaming and batch analysis disagree after recovery"

echo "==> finish the resumed sitting on the restarted server"
curl -sf -X POST "http://$ADDR/sessions/$SESSION/answers" \
  -d '{"answer":{"Choice":"B"},"time_spent_secs":4}' > /dev/null \
  || fail "post-recovery answer refused"
curl -sf -X POST "http://$ADDR/sessions/$SESSION/finish" > "$WORKDIR/record.json" \
  || fail "post-recovery finish refused"
grep -q '"student":"midflight"' "$WORKDIR/record.json" || fail "finish filed no record"

echo "smoke_adaptive: OK (CAT sitting resumed byte-identically across kill -9)"
