#!/usr/bin/env bash
# Smoke test for replicated failover: boot a journaled primary shipping
# its WAL to a live follower, drive sittings through the primary,
# capture the live analysis, kill -9 the primary, promote the follower
# with `mine promote`, and assert the promoted node serves a
# byte-identical report at a bumped epoch — with the replication gauges
# visible in /metrics along the way.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY_ADDR="${SMOKE_PRIMARY_ADDR:-127.0.0.1:7441}"
PRIMARY_REPL="${SMOKE_PRIMARY_REPL:-127.0.0.1:7442}"
FOLLOWER_ADDR="${SMOKE_FOLLOWER_ADDR:-127.0.0.1:7443}"
FOLLOWER_REPL="${SMOKE_FOLLOWER_REPL:-127.0.0.1:7444}"
CLIENTS="${SMOKE_CLIENTS:-8}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
PRIMARY_PID=""
FOLLOWER_PID=""

cleanup() {
  # Kill, then wait for the drains to finish before removing the
  # workdir — otherwise a back-to-back run finds the ports still bound
  # and the final snapshot has nowhere to land.
  [[ -n "$PRIMARY_PID" ]] && kill "$PRIMARY_PID" 2>/dev/null || true
  [[ -n "$FOLLOWER_PID" ]] && kill "$FOLLOWER_PID" 2>/dev/null || true
  [[ -n "$PRIMARY_PID" ]] && wait "$PRIMARY_PID" 2>/dev/null || true
  [[ -n "$FOLLOWER_PID" ]] && wait "$FOLLOWER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_failover: $1" >&2; exit 1; }

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $1 never came up"
}

healthz_field() {
  curl -sf "http://$1/healthz" | sed -E "s/.*\"$2\":\"?([^\",}]+)\"?.*/\1/"
}

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

echo "==> primary on $PRIMARY_ADDR shipping WAL from $PRIMARY_REPL"
"$MINE" serve "$DB" --addr "$PRIMARY_ADDR" --threads 4 \
  --data-dir "$WORKDIR/primary" --fsync never --snapshot-every 16 \
  --repl-addr "$PRIMARY_REPL" &
PRIMARY_PID=$!
wait_up "$PRIMARY_ADDR"

echo "==> follower on $FOLLOWER_ADDR replicating from $PRIMARY_REPL"
"$MINE" serve "$DB" --addr "$FOLLOWER_ADDR" --threads 4 \
  --data-dir "$WORKDIR/follower" --fsync never --snapshot-every 16 \
  --repl-addr "$FOLLOWER_REPL" --replica-of "$PRIMARY_REPL" &
FOLLOWER_PID=$!
wait_up "$FOLLOWER_ADDR"

echo "==> loadgen: $CLIENTS clients against the primary"
"$MINE" loadgen "$PRIMARY_ADDR" quiz --clients "$CLIENTS" --seed 11

echo "==> capture the pre-crash analysis"
curl -sf "http://$PRIMARY_ADDR/exams/quiz/analysis" > "$WORKDIR/before.json"
grep -q '"analyses"' "$WORKDIR/before.json" || fail "no analysis before the crash"

echo "==> replication gauges visible in /metrics"
# Fetch to a file, then grep: `curl | grep -q` under pipefail races
# grep's early exit against curl's last write (EPIPE, exit 23).
curl -sf "http://$PRIMARY_ADDR/metrics" > "$WORKDIR/primary_metrics.txt"
grep -q 'mine_repl_role{role="primary"} 1' "$WORKDIR/primary_metrics.txt" \
  || fail "primary does not report its role gauge"
grep -q 'mine_repl_followers 1' "$WORKDIR/primary_metrics.txt" \
  || fail "primary does not report its connected follower"
curl -sf "http://$FOLLOWER_ADDR/metrics" > "$WORKDIR/follower_metrics.txt"
grep -q 'mine_repl_role{role="follower"} 1' "$WORKDIR/follower_metrics.txt" \
  || fail "follower does not report its role gauge"

echo "==> wait for the follower to catch up"
HEAD="$(healthz_field "$PRIMARY_ADDR" last_applied_seq)"
[[ "$HEAD" -gt 0 ]] || fail "primary applied nothing"
for _ in $(seq 1 100); do
  APPLIED="$(healthz_field "$FOLLOWER_ADDR" last_applied_seq)"
  [[ "$APPLIED" -ge "$HEAD" ]] && break
  sleep 0.1
done
[[ "$APPLIED" -ge "$HEAD" ]] || fail "follower never caught up ($APPLIED < $HEAD)"

echo "==> writes against the follower are redirected (421)"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"exam":"quiz","student":"rogue"}' "http://$FOLLOWER_ADDR/sessions")"
[[ "$CODE" == "421" ]] || fail "follower answered a write with $CODE, not 421"

echo "==> kill -9 the primary"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

echo "==> mine promote $FOLLOWER_ADDR"
"$MINE" promote "$FOLLOWER_ADDR"
[[ "$(healthz_field "$FOLLOWER_ADDR" role)" == "primary" ]] \
  || fail "promoted node does not report role=primary"
[[ "$(healthz_field "$FOLLOWER_ADDR" epoch)" == "2" ]] \
  || fail "promoted node does not report the bumped epoch"
curl -sf "http://$FOLLOWER_ADDR/metrics" > "$WORKDIR/promoted_metrics.txt"
grep -q 'mine_repl_epoch 2' "$WORKDIR/promoted_metrics.txt" \
  || fail "promoted node does not expose the bumped epoch gauge"

echo "==> promoted node serves the same analysis byte for byte"
curl -sf "http://$FOLLOWER_ADDR/exams/quiz/analysis" > "$WORKDIR/after.json"
cmp "$WORKDIR/before.json" "$WORKDIR/after.json" \
  || fail "analysis changed across the failover"

echo "==> promoted node accepts writes"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"exam":"quiz","student":"post-failover"}' "http://$FOLLOWER_ADDR/sessions")"
[[ "$CODE" == "201" ]] || fail "promoted node refused a write with $CODE"

echo "==> quiesce the survivor and audit both journals"
kill "$FOLLOWER_PID"
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
"$MINE" audit "$WORKDIR/primary" "$WORKDIR/follower" --db "$DB" \
  || fail "cross-node audit found violations"

echo "smoke_failover: OK (zero acked events lost, analysis byte-identical, audit clean)"
