#!/usr/bin/env bash
# Regenerates BENCH_batch_analysis.json reproducibly.
#
# The workload is fully deterministic (fixed simulation seeds inside
# benches/batch_analysis.rs: sitting i uses seed 1000+i), so run-to-run
# differences are machine noise, not input drift. The first line of the
# artifact is a header recording the machine the numbers came from; the
# rest is one JSON line per benchmark, appended by the harness via
# CRITERION_JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_batch_analysis.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

printf '{"header":{"generated_by":"scripts/bench_analysis.sh","host_os":"%s","kernel":"%s","arch":"%s","cpus":%s,"rustc":"%s","workload":"50 questions x 200 students per sitting, seeds 1000+i"}}\n' \
    "$(uname -s)" \
    "$(uname -r)" \
    "$(uname -m)" \
    "$(nproc)" \
    "$(rustc --version | sed 's/"/\\"/g')" \
    > "$tmp"

CRITERION_JSON="$tmp" cargo bench --offline -p mine-bench --bench batch_analysis

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out:"
head -1 "$out"
