#!/usr/bin/env bash
# Regenerates BENCH_streaming_analysis.json reproducibly.
#
# The workload is fully deterministic (fixed simulation seed 4242
# inside benches/streaming_analysis.rs), so run-to-run differences are
# machine noise, not input drift. The first line of the artifact is a
# header recording the machine the numbers came from; the rest is one
# JSON line per measurement, appended by the bench via CRITERION_JSON:
# per-finish update p50/p99/max at each class size, then the analysis
# read minima (streaming, streaming+serialize, batch cold, batch warm).
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_streaming_analysis.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

printf '{"header":{"generated_by":"scripts/bench_streaming.sh","host_os":"%s","kernel":"%s","arch":"%s","cpus":%s,"rustc":"%s","workload":"50 questions x 10/100/1000/10000 sittings of one exam, seed 4242"}}\n' \
    "$(uname -s)" \
    "$(uname -r)" \
    "$(uname -m)" \
    "$(nproc)" \
    "$(rustc --version | sed 's/"/\\"/g')" \
    > "$tmp"

CRITERION_JSON="$tmp" cargo bench --offline -p mine-bench --bench streaming_analysis

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out:"
head -1 "$out"
