#!/usr/bin/env bash
# Smoke test for self-healing replication: boot a three-node cluster
# whose primary ships every WAL frame through a seeded fault schedule
# (MINE_FAULT_PLAN=seed=42 — drops, duplicates, delays, partition
# windows, all replayable from the seed), drive sittings through the
# chaos, kill -9 the primary, and assert that WITH NO OPERATOR ACTION
# exactly one follower auto-promotes at a bumped epoch, serves a
# byte-identical analysis, and accepts writes — then quiesce everything
# and run `mine audit` across all three journals for the final verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

A_ADDR="${SMOKE_A_ADDR:-127.0.0.1:7451}"
A_REPL="${SMOKE_A_REPL:-127.0.0.1:7452}"
B_ADDR="${SMOKE_B_ADDR:-127.0.0.1:7453}"
B_REPL="${SMOKE_B_REPL:-127.0.0.1:7454}"
C_ADDR="${SMOKE_C_ADDR:-127.0.0.1:7455}"
C_REPL="${SMOKE_C_REPL:-127.0.0.1:7456}"
CLIENTS="${SMOKE_CLIENTS:-8}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
A_PID=""
B_PID=""
C_PID=""

cleanup() {
  for pid in "$A_PID" "$B_PID" "$C_PID"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  done
  for pid in "$A_PID" "$B_PID" "$C_PID"; do
    [[ -n "$pid" ]] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_selfheal: $1" >&2; exit 1; }

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $1 never came up"
}

healthz_field() {
  curl -sf "http://$1/healthz" | sed -E "s/.*\"$2\":\"?([^\",}]+)\"?.*/\1/"
}

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

echo "==> primary on $A_ADDR shipping chaotic WAL (MINE_FAULT_PLAN=seed=42)"
MINE_FAULT_PLAN="seed=42" "$MINE" serve "$DB" --addr "$A_ADDR" --threads 4 \
  --data-dir "$WORKDIR/a" --fsync never --snapshot-every 16 \
  --repl-addr "$A_REPL" &
A_PID=$!
wait_up "$A_ADDR"

echo "==> followers with auto-failover armed (1500ms leader-silence timeout)"
"$MINE" serve "$DB" --addr "$B_ADDR" --threads 4 \
  --data-dir "$WORKDIR/b" --fsync never --snapshot-every 16 \
  --repl-addr "$B_REPL" --replica-of "$A_REPL" \
  --auto-failover=1500 --peers "$C_ADDR" &
B_PID=$!
"$MINE" serve "$DB" --addr "$C_ADDR" --threads 4 \
  --data-dir "$WORKDIR/c" --fsync never --snapshot-every 16 \
  --repl-addr "$C_REPL" --replica-of "$A_REPL" \
  --auto-failover=1500 --peers "$B_ADDR" &
C_PID=$!
wait_up "$B_ADDR"
wait_up "$C_ADDR"

echo "==> loadgen: $CLIENTS clients through the faulty stream"
"$MINE" loadgen "$A_ADDR" quiz --clients "$CLIENTS" --seed 11

echo "==> capture the pre-crash analysis"
curl -sf "http://$A_ADDR/exams/quiz/analysis" > "$WORKDIR/before.json"
grep -q '"analyses"' "$WORKDIR/before.json" || fail "no analysis before the crash"

echo "==> wait for both followers to absorb the chaos"
HEAD="$(healthz_field "$A_ADDR" last_applied_seq)"
[[ "$HEAD" -gt 0 ]] || fail "primary applied nothing"
for node in "$B_ADDR" "$C_ADDR"; do
  APPLIED=0
  for _ in $(seq 1 150); do
    APPLIED="$(healthz_field "$node" last_applied_seq)"
    [[ "$APPLIED" -ge "$HEAD" ]] && break
    sleep 0.1
  done
  [[ "$APPLIED" -ge "$HEAD" ]] || fail "follower $node never caught up ($APPLIED < $HEAD)"
done

echo "==> kill -9 the primary; nobody promotes anybody"
kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
A_PID=""

echo "==> wait for exactly one follower to promote itself"
WINNER=""
LOSER=""
for _ in $(seq 1 200); do
  B_ROLE="$(healthz_field "$B_ADDR" role)"
  C_ROLE="$(healthz_field "$C_ADDR" role)"
  if [[ "$B_ROLE" == "primary" && "$C_ROLE" == "primary" ]]; then
    fail "split brain: both followers promoted themselves"
  elif [[ "$B_ROLE" == "primary" ]]; then
    WINNER="$B_ADDR"; LOSER="$C_ADDR"; break
  elif [[ "$C_ROLE" == "primary" ]]; then
    WINNER="$C_ADDR"; LOSER="$B_ADDR"; break
  fi
  sleep 0.1
done
[[ -n "$WINNER" ]] || fail "no follower promoted itself within 20s"
echo "    winner: $WINNER"

[[ "$(healthz_field "$WINNER" epoch)" == "2" ]] \
  || fail "auto-promoted node does not report the bumped epoch"
for _ in $(seq 1 50); do
  [[ "$(healthz_field "$LOSER" epoch)" == "2" ]] && break
  sleep 0.1
done
[[ "$(healthz_field "$LOSER" epoch)" == "2" ]] \
  || fail "loser never adopted the winner's epoch"
[[ "$(healthz_field "$LOSER" role)" == "follower" ]] \
  || fail "loser did not stay a follower"

echo "==> failover is visible in the winner's metrics"
curl -sf "http://$WINNER/metrics" > "$WORKDIR/winner_metrics.txt"
grep -q 'mine_repl_failovers_total 1' "$WORKDIR/winner_metrics.txt" \
  || fail "winner does not count its automatic failover"

echo "==> auto-promoted node serves the same analysis byte for byte"
curl -sf "http://$WINNER/exams/quiz/analysis" > "$WORKDIR/after.json"
cmp "$WORKDIR/before.json" "$WORKDIR/after.json" \
  || fail "analysis changed across the automatic failover"

echo "==> auto-promoted node accepts writes"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"exam":"quiz","student":"post-selfheal"}' "http://$WINNER/sessions")"
[[ "$CODE" == "201" ]] || fail "auto-promoted node refused a write with $CODE"

echo "==> quiesce the survivors and audit all three journals"
kill "$B_PID" "$C_PID"
wait "$B_PID" 2>/dev/null || true
wait "$C_PID" 2>/dev/null || true
B_PID=""
C_PID=""
"$MINE" audit "$WORKDIR/a" "$WORKDIR/b" "$WORKDIR/c" --db "$DB" \
  || fail "journal audit found violations after the chaos run"

echo "smoke_selfheal: OK (seeded chaos, unsupervised failover, audit clean)"
