#!/usr/bin/env bash
# Smoke test for anti-entropy and degraded-mode serving over the real
# CLI: serve a journaled node with the background scrubber armed and a
# scheduled fsync-failure window (MINE_FAULT_PLAN), drive writes until
# the disk "fails", and assert the node degrades to read-only (writes
# 503 + Retry-After naming storage, healthz and metrics stay live),
# then self-heals once the window closes — no restart, no operator.
# Afterwards kill -9 the node and run the offline verdicts: `mine
# scrub` and `mine audit --json` must call the journal clean, then a
# deliberately flipped payload byte must turn both verdicts red.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_SCRUB_ADDR:-127.0.0.1:7461}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
DATA="$WORKDIR/node"
SERVE_PID=""

cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  [[ -n "$SERVE_PID" ]] && wait "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_scrub: $1" >&2; exit 1; }

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $1 never came up"
}

healthz_field() {
  curl -sf "http://$1/healthz" | sed -E "s/.*\"$2\":\"?([^\",}]+)\"?.*/\1/"
}

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

echo "==> serve with the scrubber armed and an fsync-failure window at calls 3..6"
MINE_FAULT_PLAN="disk.fsync_err@3;disk.fsync_err@4;disk.fsync_err@5;disk.fsync_err@6" \
  "$MINE" serve "$DB" --addr "$ADDR" --threads 4 \
  --data-dir "$DATA" --fsync always --scrub-interval 200 &
SERVE_PID=$!
wait_up "$ADDR"

echo "==> write until the disk fails: the node must degrade, not die"
DEGRADED=""
for attempt in $(seq 1 6); do
  CODE="$(curl -s -D "$WORKDIR/headers.txt" -o "$WORKDIR/body.json" \
    -w '%{http_code}' -X POST \
    -d "{\"exam\":\"quiz\",\"student\":\"s$attempt\"}" "http://$ADDR/sessions")"
  if [[ "$CODE" == "503" ]]; then
    DEGRADED=1
    break
  fi
  [[ "$CODE" == "201" ]] || fail "pre-window write answered $CODE"
done
[[ -n "$DEGRADED" ]] || fail "the fsync window never opened"
grep -q "storage degraded" "$WORKDIR/body.json" \
  || fail "503 body does not name storage: $(cat "$WORKDIR/body.json")"
grep -qi "retry-after: 2" "$WORKDIR/headers.txt" \
  || fail "degraded write is missing Retry-After"

echo "==> degraded, not dead: reads and observability stay live"
[[ "$(healthz_field "$ADDR" storage)" == "degraded" ]] \
  || fail "healthz does not report degraded storage"
curl -sf "http://$ADDR/metrics" > "$WORKDIR/metrics.txt"
grep -q 'mine_storage_degraded 1' "$WORKDIR/metrics.txt" \
  || fail "metrics do not report the degraded gauge"

echo "==> the healer closes the window: the node un-degrades itself"
HEALED=""
for _ in $(seq 1 100); do
  if [[ "$(healthz_field "$ADDR" storage)" == "ok" ]]; then
    HEALED=1
    break
  fi
  sleep 0.1
done
[[ -n "$HEALED" ]] || fail "node never healed itself"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"exam":"quiz","student":"post-heal"}' "http://$ADDR/sessions")"
[[ "$CODE" == "201" ]] || fail "healed node refused a write with $CODE"

echo "==> the background scrubber is passing and publishing ranges"
PASSING=""
for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/metrics" > "$WORKDIR/metrics.txt"
  if grep -Eq 'mine_scrub_passes_total [1-9]' "$WORKDIR/metrics.txt"; then
    PASSING=1
    break
  fi
  sleep 0.1
done
[[ -n "$PASSING" ]] || fail "scrubber never completed a pass"
grep -q 'mine_scrub_corrupt_segments_total 0' "$WORKDIR/metrics.txt" \
  || fail "scrubber reported corruption on a clean journal"
curl -sf "http://$ADDR/admin/ranges" | grep -q '"ranges"' \
  || fail "/admin/ranges did not serve the integrity table"

echo "==> kill -9, then the offline verdicts on the surviving journal"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
"$MINE" scrub "$DATA" || fail "offline scrub found corruption in a clean journal"
"$MINE" scrub "$DATA" --json | grep -q '"clean":true' \
  || fail "scrub --json disagrees with the clean verdict"
"$MINE" audit "$DATA" --db "$DB" --json > "$WORKDIR/audit.json" \
  || fail "audit found violations in a clean journal"
grep -q '"clean":true' "$WORKDIR/audit.json" \
  || fail "audit --json disagrees with the clean verdict"

echo "==> flip one payload byte at rest: both verdicts must turn red"
SEGMENT="$(ls "$DATA"/wal-*.log | head -1)"
printf '\xff' | dd of="$SEGMENT" bs=1 seek=20 conv=notrunc status=none
if "$MINE" scrub "$DATA" > "$WORKDIR/scrub.txt" 2>&1; then
  fail "scrub missed the flipped byte"
fi
grep -q "CORRUPT" "$WORKDIR/scrub.txt" || fail "scrub did not name the damage"
"$MINE" scrub "$DATA" --json > "$WORKDIR/scrub.json" 2>/dev/null || true
grep -q '"clean":false' "$WORKDIR/scrub.json" \
  || fail "scrub --json missed the flipped byte"
if "$MINE" audit "$DATA" --db "$DB" --json > "$WORKDIR/audit.json" 2>/dev/null; then
  fail "audit missed the flipped byte"
fi
grep -q '"clean":false' "$WORKDIR/audit.json" \
  || fail "audit --json missed the flipped byte"

echo "smoke_scrub: OK (degrade, self-heal, online scrub, offline verdicts)"
