#!/usr/bin/env bash
# Chaos smoke test for overload + graceful shutdown: boot a journaled
# `mine serve` with tight admission limits, drive load past capacity
# (shed/retry counters visible in the loadgen report), send a real
# SIGTERM mid-storm, and assert the server drains and exits 0, the
# journal recovers offline, and a graceful restart cycle serves a
# byte-identical analysis report.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:7437}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
DATA="$WORKDIR/journal"
LOG="$WORKDIR/server.log"
SERVER_PID=""

cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_chaos: $1" >&2; exit 1; }

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $ADDR never came up"
}

serve() {
  "$MINE" serve "$DB" --addr "$ADDR" --threads 2 \
    --data-dir "$DATA" --fsync never --snapshot-every 32 \
    --queue-depth 8 --drain-deadline 5 >>"$LOG" 2>&1 &
  SERVER_PID=$!
  wait_up
}

echo "==> serve on $ADDR (threads 2, queue depth 8, journal at $DATA)"
serve

echo "==> baseline load (finished sittings the drain must not lose)"
"$MINE" loadgen "$ADDR" quiz --clients 6 --seed 7 \
  || fail "baseline loadgen failed"
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/baseline.json"
grep -q '"analyses"' "$WORKDIR/baseline.json" \
  || fail "no analysis after baseline load"

echo "==> storm past capacity, SIGTERM mid-storm"
"$MINE" loadgen "$ADDR" quiz --clients 16 --seed 23 --ramp 1 \
  >"$WORKDIR/storm.log" 2>&1 &
STORM_PID=$!
sleep 0.5
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  SERVER_PID=""
else
  SERVER_PID=""
  fail "server did not exit 0 after SIGTERM"
fi
grep -q "drained:" "$LOG" || fail "server never printed a drain report"
grep "drained:" "$LOG" | tail -1
grep -q "snapshot=true" "$LOG" || fail "drain did not write the final snapshot"
# The storm clients were shed during the drain; their report (with shed
# and retry counts) is informational, their exit code is not asserted.
wait "$STORM_PID" 2>/dev/null || true
grep "loadgen:" "$WORKDIR/storm.log" || true

echo "==> offline inspection: mine recover"
"$MINE" recover "$DATA"

echo "==> restart from the journal, capture analysis"
serve
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/after-drain.json"
grep -q '"analyses"' "$WORKDIR/after-drain.json" \
  || fail "finished sittings lost across the drain"

echo "==> second graceful cycle must be byte-identical"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "idle server did not exit 0 after SIGTERM"
SERVER_PID=""
serve
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/after-restart.json"
cmp "$WORKDIR/after-drain.json" "$WORKDIR/after-restart.json" \
  || fail "analysis changed across a graceful restart"

echo "smoke_chaos: OK (SIGTERM drained cleanly, analysis byte-identical)"
