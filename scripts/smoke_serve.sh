#!/usr/bin/env bash
# Smoke test for the serving layer: build the CLI, author a small bank,
# boot `mine serve`, drive it with `mine loadgen`, and assert /metrics
# reports a clean run (no 4xx/5xx, every session finished).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:7431}"
CLIENTS="${SMOKE_CLIENTS:-16}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
SERVER_PID=""

cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

echo "==> serve on $ADDR"
"$MINE" serve "$DB" --addr "$ADDR" --threads 4 &
SERVER_PID=$!

# Wait for the listener (up to ~5s).
for _ in $(seq 1 50); do
  if "$MINE" loadgen "$ADDR" quiz --clients 1 --seed 999 >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

echo "==> loadgen: $CLIENTS clients"
"$MINE" loadgen "$ADDR" quiz --clients "$CLIENTS" --seed 7

echo "==> metrics"
METRICS="$(curl -sf "http://$ADDR/metrics?format=json")"
echo "$METRICS"

# The default /metrics rendering is Prometheus text exposition format.
# Fetch to a variable, then grep: `curl | grep -q` under pipefail races
# grep's early exit against curl's last write (EPIPE, exit 23).
PROM="$(curl -sf "http://$ADDR/metrics")"
echo "$PROM" | grep -q '# TYPE mine_requests_total counter' \
  || { echo "smoke_serve: /metrics is not Prometheus text format" >&2; exit 1; }

fail() { echo "smoke_serve: $1" >&2; exit 1; }

# The probe client plus the real run must all have finished cleanly.
WANT=$((CLIENTS + 1))
echo "$METRICS" | grep -q "\"status_4xx\":0" || fail "saw 4xx responses"
echo "$METRICS" | grep -q "\"status_5xx\":0" || fail "saw 5xx responses"
echo "$METRICS" | grep -q "\"sessions_started\":$WANT" || fail "expected $WANT sessions started"
echo "$METRICS" | grep -q "\"sessions_finished\":$WANT" || fail "expected $WANT sessions finished"
echo "$METRICS" | grep -q "\"active_sessions\":0" || fail "sessions still active"

# The live analysis endpoint serves a report over the finished sittings.
ANALYSIS="$(curl -sf "http://$ADDR/exams/quiz/analysis")"
echo "$ANALYSIS" | grep -q '"analyses"' \
  || fail "analysis endpoint did not return a report"

echo "smoke_serve: OK ($WANT sittings, clean metrics)"
