#!/usr/bin/env bash
# Full local gate: format, lint, test. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> server integration tests"
cargo test --offline -q -p mine-server --test loopback --test registry_concurrency

echo "All checks passed."
