#!/usr/bin/env bash
# Full local gate: format, lint, test. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy mine-store -D warnings"
cargo clippy --offline -p mine-store --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> server integration tests"
cargo test --offline -q -p mine-server --test loopback --test registry_concurrency

echo "==> store fault-injection tests (torn tails, bit flips, kill -9)"
cargo test --offline -q -p mine-store --test fault_injection

echo "==> server crash-recovery test (kill -9 + byte-identical analysis)"
cargo test --offline -q -p mine-server --test crash_recovery

echo "==> server chaos tests (overload shed, deadlines, drain mid-storm)"
timeout 60 cargo test --offline -q -p mine-server --test chaos

echo "==> chaos smoke (real SIGTERM drain over the CLI)"
timeout 60 scripts/smoke_chaos.sh

echo "==> adaptive delivery tests (CAT over HTTP, 422 validation, replay parity)"
cargo test --offline -q -p mine-server --test adaptive

echo "==> adaptive smoke (calibrate, CAT loadgen, kill -9, byte-identical resume)"
timeout 60 scripts/smoke_adaptive.sh

echo "==> server replication tests (kill -9 primary, promote, epoch fencing)"
timeout 60 cargo test --offline -q -p mine-server --test replication

echo "==> failover smoke (kill -9 primary, mine promote, byte-identical analysis)"
timeout 60 scripts/smoke_failover.sh

echo "==> self-healing tests (seeded fault schedule, kill -9, auto-failover, in-process audit)"
timeout 60 cargo test --offline -q -p mine-server --test selfheal

echo "==> self-healing smoke (seeded chaos, kill -9 primary, unsupervised failover, mine audit)"
timeout 60 scripts/smoke_selfheal.sh

echo "==> anti-entropy tests (online bitrot quarantine + repair, degraded primary promoted past)"
timeout 60 cargo test --offline -q -p mine-server --test antientropy

echo "==> anti-entropy smoke (degrade on fsync failure, self-heal, offline scrub verdicts)"
timeout 60 scripts/smoke_scrub.sh

echo "==> analysis perf smoke (pooled 4t >=1.5x the frozen naive baseline; MINE_SKIP_PERF_SMOKE=1 skips)"
timeout 120 cargo test --offline -q -p mine-bench --test perf_smoke

echo "==> streaming perf smoke (counter reads >=25x cold batch at 1000 sittings; MINE_SKIP_PERF_SMOKE=1 skips)"
timeout 120 cargo test --offline -q -p mine-bench --test streaming_smoke

echo "All checks passed."
