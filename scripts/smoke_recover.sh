#!/usr/bin/env bash
# Smoke test for crash recovery: boot a journaled `mine serve`, drive
# sittings through it, capture the live analysis report, kill -9 the
# server, restart it from the same --data-dir, and assert the restarted
# server serves a byte-identical report.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:7433}"
CLIENTS="${SMOKE_CLIENTS:-8}"
WORKDIR="$(mktemp -d)"
DB="$WORKDIR/smoke.json"
DATA="$WORKDIR/journal"
SERVER_PID=""

cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "smoke_recover: $1" >&2; exit 1; }

echo "==> build"
cargo build --offline -q --bin mine
MINE=target/debug/mine

echo "==> author a bank at $DB"
"$MINE" init "$DB"
"$MINE" add-tf "$DB" t1 smoke B true "Smoke is rising"
"$MINE" add-choice "$DB" c1 smoke C B "Pick the second option" alpha beta gamma delta
"$MINE" add-exam "$DB" quiz "Smoke quiz" t1 c1

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server at $ADDR never came up"
}

echo "==> serve on $ADDR with journal at $DATA"
"$MINE" serve "$DB" --addr "$ADDR" --threads 4 \
  --data-dir "$DATA" --fsync never --snapshot-every 16 &
SERVER_PID=$!
wait_up

echo "==> loadgen: $CLIENTS clients"
"$MINE" loadgen "$ADDR" quiz --clients "$CLIENTS" --seed 11

echo "==> capture the pre-crash analysis"
curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/before.json"
grep -q '"analyses"' "$WORKDIR/before.json" || fail "no analysis before the crash"

echo "==> kill -9 the server"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "==> offline inspection: mine recover"
"$MINE" recover "$DATA"

echo "==> restart from the journal"
"$MINE" serve "$DB" --addr "$ADDR" --threads 4 --data-dir "$DATA" &
SERVER_PID=$!
wait_up

curl -sf "http://$ADDR/exams/quiz/analysis" > "$WORKDIR/after.json"
cmp "$WORKDIR/before.json" "$WORKDIR/after.json" \
  || fail "analysis changed across the crash"

echo "==> quiesce and audit the journal"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
"$MINE" audit "$DATA" --db "$DB" || fail "journal audit found violations"

echo "smoke_recover: OK (analysis byte-identical across kill -9, audit clean)"
