//! LOM-style descriptive categories (§2.1).
//!
//! IEEE LTSC's Learning Object Metadata defines nine categories for
//! describing a learning resource. The MINE model keeps the descriptive
//! ones that matter for assessment exchange — General, Lifecycle,
//! Technical, Educational, Rights — in a deliberately lightweight form;
//! the assessment-specific sections live in [`crate::assessment`].

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// LOM *General*: identity and description of the resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GeneralMeta {
    /// Catalog identifier of the resource.
    pub identifier: String,
    /// Human-readable title.
    pub title: String,
    /// Language code (e.g. `en`, `zh-TW`).
    pub language: String,
    /// Free-text description.
    pub description: String,
    /// Search keywords.
    pub keywords: Vec<String>,
}

impl GeneralMeta {
    /// Creates a `General` section with the given identifier.
    #[must_use]
    pub fn new(identifier: impl Into<String>) -> Self {
        Self {
            identifier: identifier.into(),
            ..Self::default()
        }
    }
}

/// A contributor entry of the *Lifecycle* category.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contributor {
    /// Role, e.g. `author`, `instructor`, `tutor` (§5 actors).
    pub role: String,
    /// Display name.
    pub name: String,
    /// ISO-8601 date string, if recorded.
    pub date: Option<String>,
}

impl Contributor {
    /// Creates a contributor.
    #[must_use]
    pub fn new(role: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            role: role.into(),
            name: name.into(),
            date: None,
        }
    }
}

/// LOM *Lifecycle*: version and contributors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LifecycleMeta {
    /// Version label.
    pub version: String,
    /// Editorial status, e.g. `draft`, `final`, `revised`.
    pub status: String,
    /// People and roles that touched the resource.
    pub contributors: Vec<Contributor>,
}

/// LOM *Technical*: format and location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TechnicalMeta {
    /// MIME-ish format, e.g. `text/xml`.
    pub format: String,
    /// Size in bytes, if known.
    pub size: Option<u64>,
    /// Where the resource lives (URL or package-relative path).
    pub location: String,
}

/// LOM *Educational*: pedagogic attributes relevant to assessment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EducationalMeta {
    /// Intended end-user role, e.g. `learner`, `teacher`.
    pub intended_user_role: String,
    /// Context, e.g. `higher education`.
    pub context: String,
    /// Typical time a learner needs with the resource.
    pub typical_learning_time: Option<Duration>,
}

/// LOM *Rights*: cost and copyright.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RightsMeta {
    /// Whether use of the resource costs money.
    pub cost: bool,
    /// Copyright / licence statement.
    pub copyright: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_new_sets_identifier_only() {
        let g = GeneralMeta::new("q-42");
        assert_eq!(g.identifier, "q-42");
        assert!(g.title.is_empty());
        assert!(g.keywords.is_empty());
    }

    #[test]
    fn contributor_constructor() {
        let c = Contributor::new("author", "J. Hung");
        assert_eq!(c.role, "author");
        assert_eq!(c.name, "J. Hung");
        assert!(c.date.is_none());
    }

    #[test]
    fn defaults_are_empty_but_serializable() {
        let lifecycle = LifecycleMeta::default();
        let json = serde_json::to_string(&lifecycle).unwrap();
        let back: LifecycleMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lifecycle);
    }

    #[test]
    fn educational_learning_time_serializes() {
        let edu = EducationalMeta {
            typical_learning_time: Some(Duration::from_secs(90)),
            ..EducationalMeta::default()
        };
        let json = serde_json::to_string(&edu).unwrap();
        let back: EducationalMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back.typical_learning_time, Some(Duration::from_secs(90)));
    }
}
