//! Error type for metadata construction and XML binding.

use std::error::Error as StdError;
use std::fmt;

use mine_core::CoreError;
use mine_xml::XmlError;

/// Errors raised while building, validating, or (de)serializing MINE
/// metadata.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetadataError {
    /// An index value was outside its legal range.
    IndexOutOfRange {
        /// Which index ("difficulty" or "discrimination").
        index: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A required XML element was missing while decoding.
    MissingElement {
        /// Path to the expected element, `/`-joined.
        path: String,
    },
    /// An XML element held a value that could not be decoded.
    InvalidValue {
        /// Path to the element.
        path: String,
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A core vocabulary error (e.g. bad cognition letter) surfaced while
    /// decoding.
    Core(CoreError),
    /// A raw XML error surfaced while parsing metadata text.
    Xml(XmlError),
}

impl fmt::Display for MetadataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataError::IndexOutOfRange { index, value } => {
                write!(f, "{index} index {value} is out of range")
            }
            MetadataError::MissingElement { path } => {
                write!(f, "missing metadata element {path}")
            }
            MetadataError::InvalidValue {
                path,
                found,
                expected,
            } => write!(
                f,
                "invalid value at {path}: found {found:?}, expected {expected}"
            ),
            MetadataError::Core(err) => write!(f, "core error: {err}"),
            MetadataError::Xml(err) => write!(f, "xml error: {err}"),
        }
    }
}

impl StdError for MetadataError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            MetadataError::Core(err) => Some(err),
            MetadataError::Xml(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for MetadataError {
    fn from(err: CoreError) -> Self {
        MetadataError::Core(err)
    }
}

impl From<XmlError> for MetadataError {
    fn from(err: XmlError) -> Self {
        MetadataError::Xml(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MetadataError::MissingElement {
            path: "mine:assessment/cognition".into(),
        };
        assert!(err.to_string().contains("mine:assessment/cognition"));
    }

    #[test]
    fn wraps_sources() {
        let err = MetadataError::from(CoreError::InvalidCognitionLevel("G".into()));
        assert!(err.source().is_some());
        let err = MetadataError::from(XmlError::UnknownEntity { entity: "x".into() });
        assert!(err.source().is_some());
    }
}
