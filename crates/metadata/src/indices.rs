//! Item Difficulty and Item Discrimination indices (§3.3).
//!
//! The paper defines:
//!
//! * **Item Difficulty Index** `P = R / N` where `R` is the number of
//!   correct answers and `N` the total — e.g. `R = 800, N = 1000` gives
//!   `P = 0.8` (§3.3-III). "The more the Item Difficulty Index increases,
//!   the easier the question."
//! * **Item Discrimination Index** `D` — how strongly the question
//!   separates strong from weak students (§3.3-IV); the analysis model
//!   computes it as `D = PH − PL` (§4.1.1).
//!
//! These newtypes enforce the legal ranges (`P ∈ [0, 1]`,
//! `D ∈ [−1, 1]`) at the boundary so every downstream computation can
//! rely on them (C-VALIDATE, C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::MetadataError;

/// Item Difficulty Index `P ∈ [0, 1]`; larger means *easier*.
///
/// # Examples
///
/// ```
/// use mine_metadata::DifficultyIndex;
///
/// // The paper's example: 800 of 1000 students answered correctly.
/// let p = DifficultyIndex::from_counts(800, 1000).unwrap();
/// assert_eq!(p.value(), 0.8);
/// assert!(p.is_easy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct DifficultyIndex(f64);

impl DifficultyIndex {
    /// Creates a validated difficulty index.
    ///
    /// # Errors
    ///
    /// Returns [`MetadataError::IndexOutOfRange`] unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Self, MetadataError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Self(p))
        } else {
            Err(MetadataError::IndexOutOfRange {
                index: "difficulty",
                value: p,
            })
        }
    }

    /// Computes `P = R / N` from counts (§3.3-III).
    ///
    /// # Errors
    ///
    /// Returns [`MetadataError::IndexOutOfRange`] when `n == 0` or
    /// `r > n`.
    pub fn from_counts(r: usize, n: usize) -> Result<Self, MetadataError> {
        if n == 0 || r > n {
            return Err(MetadataError::IndexOutOfRange {
                index: "difficulty",
                value: if n == 0 {
                    f64::NAN
                } else {
                    r as f64 / n as f64
                },
            });
        }
        Self::new(r as f64 / n as f64)
    }

    /// The raw index in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Percentage form (`0`–`100`).
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Conventionally "easy": at least 70 % of students answer correctly.
    #[must_use]
    pub fn is_easy(self) -> bool {
        self.0 >= 0.7
    }

    /// Conventionally "hard": at most 30 % answer correctly.
    #[must_use]
    pub fn is_hard(self) -> bool {
        self.0 <= 0.3
    }
}

impl fmt::Display for DifficultyIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P={:.2}", self.0)
    }
}

impl TryFrom<f64> for DifficultyIndex {
    type Error = MetadataError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<DifficultyIndex> for f64 {
    fn from(index: DifficultyIndex) -> f64 {
        index.value()
    }
}

/// Item Discrimination Index `D ∈ [−1, 1]`; larger separates strong from
/// weak students better.
///
/// The signal thresholds of Table 3 (green ≥ 0.30, yellow 0.20–0.29,
/// red ≤ 0.19) live in `mine-analysis`; this type only guarantees range.
///
/// # Examples
///
/// ```
/// use mine_metadata::DiscriminationIndex;
///
/// // Paper §4.1.2, question no. 2: D = 0.91 − 0.36 = 0.55.
/// let d = DiscriminationIndex::new(0.55).unwrap();
/// assert_eq!(d.value(), 0.55);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct DiscriminationIndex(f64);

impl DiscriminationIndex {
    /// Creates a validated discrimination index.
    ///
    /// # Errors
    ///
    /// Returns [`MetadataError::IndexOutOfRange`] unless `−1 <= d <= 1`.
    pub fn new(d: f64) -> Result<Self, MetadataError> {
        if d.is_finite() && (-1.0..=1.0).contains(&d) {
            Ok(Self(d))
        } else {
            Err(MetadataError::IndexOutOfRange {
                index: "discrimination",
                value: d,
            })
        }
    }

    /// Computes `D = PH − PL` from the two group difficulties (§4.1.1,
    /// step 5).
    #[must_use]
    pub fn from_groups(ph: DifficultyIndex, pl: DifficultyIndex) -> Self {
        // Difference of two values in [0,1] is always in [-1,1].
        Self(ph.value() - pl.value())
    }

    /// The raw index in `[−1, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// A negative index means weak students outperform strong ones — the
    /// question is almost certainly defective.
    #[must_use]
    pub fn is_inverted(self) -> bool {
        self.0 < 0.0
    }
}

impl fmt::Display for DiscriminationIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D={:.2}", self.0)
    }
}

impl TryFrom<f64> for DiscriminationIndex {
    type Error = MetadataError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<DiscriminationIndex> for f64 {
    fn from(index: DiscriminationIndex) -> f64 {
        index.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_difficulty_example() {
        // §3.3-III: R=800, N=1000 → P = 0.8 (80 %).
        let p = DifficultyIndex::from_counts(800, 1000).unwrap();
        assert!((p.value() - 0.8).abs() < 1e-12);
        assert!((p.percent() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn difficulty_rejects_bad_inputs() {
        assert!(DifficultyIndex::new(-0.01).is_err());
        assert!(DifficultyIndex::new(1.01).is_err());
        assert!(DifficultyIndex::new(f64::NAN).is_err());
        assert!(DifficultyIndex::from_counts(5, 0).is_err());
        assert!(DifficultyIndex::from_counts(6, 5).is_err());
        assert!(DifficultyIndex::new(0.0).is_ok());
        assert!(DifficultyIndex::new(1.0).is_ok());
    }

    #[test]
    fn easy_and_hard_bands() {
        assert!(DifficultyIndex::new(0.8).unwrap().is_easy());
        assert!(!DifficultyIndex::new(0.69).unwrap().is_easy());
        assert!(DifficultyIndex::new(0.2).unwrap().is_hard());
        assert!(!DifficultyIndex::new(0.31).unwrap().is_hard());
    }

    #[test]
    fn paper_discrimination_example_no2() {
        // §4.1.2 worked example: PH = 10/11 ≈ 0.909, PL = 4/11 ≈ 0.364.
        let ph = DifficultyIndex::from_counts(10, 11).unwrap();
        let pl = DifficultyIndex::from_counts(4, 11).unwrap();
        let d = DiscriminationIndex::from_groups(ph, pl);
        assert!((d.value() - 0.5454545454545454).abs() < 1e-12);
        assert!(!d.is_inverted());
    }

    #[test]
    fn discrimination_rejects_out_of_range() {
        assert!(DiscriminationIndex::new(-1.01).is_err());
        assert!(DiscriminationIndex::new(1.01).is_err());
        assert!(DiscriminationIndex::new(f64::INFINITY).is_err());
        assert!(DiscriminationIndex::new(-1.0).is_ok());
        assert!(DiscriminationIndex::new(1.0).is_ok());
    }

    #[test]
    fn inverted_detection() {
        let ph = DifficultyIndex::new(0.2).unwrap();
        let pl = DifficultyIndex::new(0.6).unwrap();
        assert!(DiscriminationIndex::from_groups(ph, pl).is_inverted());
    }

    #[test]
    fn displays() {
        assert_eq!(DifficultyIndex::new(0.635).unwrap().to_string(), "P=0.64");
        assert_eq!(
            DiscriminationIndex::new(0.55).unwrap().to_string(),
            "D=0.55"
        );
    }

    #[test]
    fn serde_validates() {
        assert!(serde_json::from_str::<DifficultyIndex>("0.5").is_ok());
        assert!(serde_json::from_str::<DifficultyIndex>("1.5").is_err());
        assert!(serde_json::from_str::<DiscriminationIndex>("-0.2").is_ok());
        assert!(serde_json::from_str::<DiscriminationIndex>("-2.0").is_err());
    }
}
