//! The assembled MINE SCORM Meta-data tree (Figure 1).
//!
//! Figure 1 shows the proposed assessment tree with **ten sections**: the
//! five LOM-style descriptive categories (General, Lifecycle, Technical,
//! Educational, Rights) and the five assessment sections the paper adds
//! (Cognition, Question Style, Questionnaire, IndividualTest, Exam).
//!
//! [`MineMetadata`] is the in-memory form; [`MineMetadata::to_xml_element`]
//! / [`MineMetadata::from_xml_element`] bind it to the `mine:metadata` XML
//! vocabulary used inside SCORM packages, and
//! [`MineMetadata::render_tree`] regenerates the Figure 1 view as text.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use mine_core::{Answer, CognitionLevel, OptionKey, Subject};
use mine_xml::Element;

use crate::assessment::{
    CognitionMeta, DisplayOrder, ExamMeta, IndividualTestMeta, QuestionStyle, QuestionnaireMeta,
};
use crate::error::MetadataError;
use crate::indices::{DifficultyIndex, DiscriminationIndex};
use crate::lom::{
    Contributor, EducationalMeta, GeneralMeta, LifecycleMeta, RightsMeta, TechnicalMeta,
};

/// The complete MINE SCORM Meta-data record for one assessment object
/// (a problem, questionnaire, or exam).
///
/// # Examples
///
/// ```
/// use mine_core::CognitionLevel;
/// use mine_metadata::{CognitionMeta, MineMetadata, QuestionStyle};
///
/// let meta = MineMetadata::builder("meta-q7")
///     .title("Window scaling")
///     .subject("TCP")
///     .cognition(CognitionMeta::new(CognitionLevel::Comprehension))
///     .style(QuestionStyle::MultipleChoice)
///     .build();
/// assert_eq!(meta.general.identifier, "meta-q7");
/// assert!(meta.render_tree().contains("Cognition"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MineMetadata {
    /// LOM General.
    pub general: GeneralMeta,
    /// LOM Lifecycle.
    pub lifecycle: LifecycleMeta,
    /// LOM Technical.
    pub technical: TechnicalMeta,
    /// LOM Educational.
    pub educational: EducationalMeta,
    /// LOM Rights.
    pub rights: RightsMeta,
    /// §3.1 cognition level.
    pub cognition: Option<CognitionMeta>,
    /// §3.2 question style.
    pub style: Option<QuestionStyle>,
    /// §3.2-VI questionnaire settings.
    pub questionnaire: Option<QuestionnaireMeta>,
    /// §3.3 per-question record.
    pub individual_test: Option<IndividualTestMeta>,
    /// §3.4 per-exam record.
    pub exam: Option<ExamMeta>,
}

impl MineMetadata {
    /// Starts a builder with the given catalog identifier.
    #[must_use]
    pub fn builder(identifier: impl Into<String>) -> MineMetadataBuilder {
        MineMetadataBuilder {
            meta: MineMetadata {
                general: GeneralMeta::new(identifier),
                ..MineMetadata::default()
            },
        }
    }

    /// Renders the Figure 1 tree view of this record.
    ///
    /// Sections that are absent are rendered with `(empty)` so the ten
    /// section headings of the figure always appear.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str("MINE SCORM Meta-data\n");
        let line = |out: &mut String, last: bool, text: &str| {
            out.push_str(if last { "└── " } else { "├── " });
            out.push_str(text);
            out.push('\n');
        };
        line(
            &mut out,
            false,
            &format!(
                "General: {} ({})",
                self.general.title, self.general.identifier
            ),
        );
        line(
            &mut out,
            false,
            &format!(
                "Lifecycle: version {} [{}]",
                if self.lifecycle.version.is_empty() {
                    "-"
                } else {
                    &self.lifecycle.version
                },
                self.lifecycle.status
            ),
        );
        line(
            &mut out,
            false,
            &format!(
                "Technical: {} @ {}",
                self.technical.format, self.technical.location
            ),
        );
        line(
            &mut out,
            false,
            &format!("Educational: {}", self.educational.intended_user_role),
        );
        line(
            &mut out,
            false,
            &format!("Rights: cost={}", self.rights.cost),
        );
        line(
            &mut out,
            false,
            &match &self.cognition {
                Some(c) => format!("Cognition: {} ({})", c.level, c.level.letter()),
                None => "Cognition: (empty)".to_string(),
            },
        );
        line(
            &mut out,
            false,
            &match self.style {
                Some(style) => format!("Question Style: {}", style.keyword()),
                None => "Question Style: (empty)".to_string(),
            },
        );
        line(
            &mut out,
            false,
            &match &self.questionnaire {
                Some(q) => format!(
                    "Questionnaire: resumable={} order={}",
                    q.resumable,
                    q.display_type.keyword()
                ),
                None => "Questionnaire: (empty)".to_string(),
            },
        );
        line(
            &mut out,
            false,
            &match &self.individual_test {
                Some(t) => {
                    let p = t.difficulty.map_or("P=?".to_string(), |p| p.to_string());
                    let d = t
                        .discrimination
                        .map_or("D=?".to_string(), |d| d.to_string());
                    format!("IndividualTest: subject={} {p} {d}", t.subject)
                }
                None => "IndividualTest: (empty)".to_string(),
            },
        );
        line(
            &mut out,
            true,
            &match &self.exam {
                Some(e) => format!(
                    "Exam: test_time={:?} average_time={:?} ISI={:?}",
                    e.test_time, e.average_time, e.instructional_sensitivity
                ),
                None => "Exam: (empty)".to_string(),
            },
        );
        out
    }

    /// Serializes the record to its `mine:metadata` XML element.
    #[must_use]
    pub fn to_xml_element(&self) -> Element {
        let mut root = Element::new("mine:metadata");

        let mut general = Element::new("general")
            .with_child(Element::new("identifier").with_text(&self.general.identifier))
            .with_child(Element::new("title").with_text(&self.general.title))
            .with_child(Element::new("language").with_text(&self.general.language))
            .with_child(Element::new("description").with_text(&self.general.description));
        for keyword in &self.general.keywords {
            general.push(Element::new("keyword").with_text(keyword));
        }
        root.push(general);

        let mut lifecycle = Element::new("lifecycle")
            .with_child(Element::new("version").with_text(&self.lifecycle.version))
            .with_child(Element::new("status").with_text(&self.lifecycle.status));
        for contributor in &self.lifecycle.contributors {
            let mut el = Element::new("contribute")
                .with_attr("role", &contributor.role)
                .with_child(Element::new("name").with_text(&contributor.name));
            if let Some(date) = &contributor.date {
                el.push(Element::new("date").with_text(date));
            }
            lifecycle.push(el);
        }
        root.push(lifecycle);

        let mut technical = Element::new("technical")
            .with_child(Element::new("format").with_text(&self.technical.format))
            .with_child(Element::new("location").with_text(&self.technical.location));
        if let Some(size) = self.technical.size {
            technical.push(Element::new("size").with_text(size.to_string()));
        }
        root.push(technical);

        let mut educational = Element::new("educational")
            .with_child(
                Element::new("intendedEndUserRole").with_text(&self.educational.intended_user_role),
            )
            .with_child(Element::new("context").with_text(&self.educational.context));
        if let Some(time) = self.educational.typical_learning_time {
            educational.push(duration_element("typicalLearningTime", time));
        }
        root.push(educational);

        root.push(
            Element::new("rights")
                .with_child(Element::new("cost").with_text(self.rights.cost.to_string()))
                .with_child(Element::new("copyright").with_text(&self.rights.copyright)),
        );

        if let Some(cognition) = &self.cognition {
            root.push(
                Element::new("cognition")
                    .with_attr("level", cognition.level.letter().to_string())
                    .with_child(Element::new("name").with_text(cognition.level.name()))
                    .with_child(Element::new("objective").with_text(&cognition.objective)),
            );
        }

        if let Some(style) = self.style {
            root.push(Element::new("questionStyle").with_text(style.keyword()));
        }

        if let Some(questionnaire) = &self.questionnaire {
            root.push(
                Element::new("questionnaire")
                    .with_child(
                        Element::new("resumable").with_text(questionnaire.resumable.to_string()),
                    )
                    .with_child(
                        Element::new("displayType").with_text(questionnaire.display_type.keyword()),
                    ),
            );
        }

        if let Some(test) = &self.individual_test {
            let mut el = Element::new("individualTest")
                .with_child(Element::new("subject").with_text(test.subject.as_str()));
            if let Some(answer) = &test.answer {
                el.push(answer_element(answer));
            }
            if let Some(p) = test.difficulty {
                el.push(Element::new("itemDifficultyIndex").with_text(format_f64(p.value())));
            }
            if let Some(d) = test.discrimination {
                el.push(Element::new("itemDiscriminationIndex").with_text(format_f64(d.value())));
            }
            for note in &test.distraction {
                el.push(Element::new("distraction").with_text(note));
            }
            root.push(el);
        }

        if let Some(exam) = &self.exam {
            let mut el = Element::new("exam");
            if let Some(time) = exam.average_time {
                el.push(duration_element("averageTime", time));
            }
            if let Some(time) = exam.test_time {
                el.push(duration_element("testTime", time));
            }
            if let Some(isi) = exam.instructional_sensitivity {
                el.push(Element::new("instructionalSensitivityIndex").with_text(format_f64(isi)));
            }
            root.push(el);
        }

        root
    }

    /// Decodes a record from its `mine:metadata` XML element.
    ///
    /// # Errors
    ///
    /// Returns [`MetadataError`] when required sections are missing or
    /// values fail to decode.
    pub fn from_xml_element(element: &Element) -> Result<Self, MetadataError> {
        let general_el = require(element, "general")?;
        let general = GeneralMeta {
            identifier: child_text(general_el, "identifier"),
            title: child_text(general_el, "title"),
            language: child_text(general_el, "language"),
            description: child_text(general_el, "description"),
            keywords: general_el
                .children_named("keyword")
                .map(Element::text)
                .collect(),
        };

        let lifecycle = match element.child("lifecycle") {
            Some(el) => LifecycleMeta {
                version: child_text(el, "version"),
                status: child_text(el, "status"),
                contributors: el
                    .children_named("contribute")
                    .map(|c| Contributor {
                        role: c.attr("role").unwrap_or_default().to_string(),
                        name: child_text(c, "name"),
                        date: c.child_text("date"),
                    })
                    .collect(),
            },
            None => LifecycleMeta::default(),
        };

        let technical =
            match element.child("technical") {
                Some(el) => {
                    TechnicalMeta {
                        format: child_text(el, "format"),
                        location: child_text(el, "location"),
                        size: match el.child_text("size") {
                            Some(text) => Some(text.trim().parse().map_err(|_| {
                                MetadataError::InvalidValue {
                                    path: "technical/size".into(),
                                    found: text.clone(),
                                    expected: "unsigned integer",
                                }
                            })?),
                            None => None,
                        },
                    }
                }
                None => TechnicalMeta::default(),
            };

        let educational = match element.child("educational") {
            Some(el) => EducationalMeta {
                intended_user_role: child_text(el, "intendedEndUserRole"),
                context: child_text(el, "context"),
                typical_learning_time: el
                    .child("typicalLearningTime")
                    .map(|t| parse_duration(t, "educational/typicalLearningTime"))
                    .transpose()?,
            },
            None => EducationalMeta::default(),
        };

        let rights = match element.child("rights") {
            Some(el) => RightsMeta {
                cost: child_text(el, "cost").trim() == "true",
                copyright: child_text(el, "copyright"),
            },
            None => RightsMeta::default(),
        };

        let cognition = match element.child("cognition") {
            Some(el) => {
                let letter = el.attr("level").unwrap_or_default();
                let level = letter
                    .chars()
                    .next()
                    .ok_or_else(|| MetadataError::MissingElement {
                        path: "cognition@level".into(),
                    })
                    .and_then(|c| CognitionLevel::from_letter(c).map_err(MetadataError::from))?;
                Some(CognitionMeta {
                    level,
                    objective: child_text(el, "objective"),
                })
            }
            None => None,
        };

        let style = match element.child("questionStyle") {
            Some(el) => {
                let keyword = el.text();
                Some(QuestionStyle::from_keyword(&keyword).ok_or_else(|| {
                    MetadataError::InvalidValue {
                        path: "questionStyle".into(),
                        found: keyword.clone(),
                        expected: "a question style keyword",
                    }
                })?)
            }
            None => None,
        };

        let questionnaire = match element.child("questionnaire") {
            Some(el) => {
                let display = child_text(el, "displayType");
                Some(QuestionnaireMeta {
                    resumable: child_text(el, "resumable").trim() == "true",
                    display_type: DisplayOrder::from_keyword(&display).ok_or_else(|| {
                        MetadataError::InvalidValue {
                            path: "questionnaire/displayType".into(),
                            found: display.clone(),
                            expected: "fixed or random",
                        }
                    })?,
                })
            }
            None => None,
        };

        let individual_test = match element.child("individualTest") {
            Some(el) => Some(IndividualTestMeta {
                subject: Subject::new(child_text(el, "subject")),
                answer: el.child("answer").map(parse_answer).transpose()?,
                difficulty: el
                    .child("itemDifficultyIndex")
                    .map(|p| {
                        parse_f64(p, "individualTest/itemDifficultyIndex")
                            .and_then(DifficultyIndex::new)
                    })
                    .transpose()?,
                discrimination: el
                    .child("itemDiscriminationIndex")
                    .map(|d| {
                        parse_f64(d, "individualTest/itemDiscriminationIndex")
                            .and_then(DiscriminationIndex::new)
                    })
                    .transpose()?,
                distraction: el
                    .children_named("distraction")
                    .map(Element::text)
                    .collect(),
            }),
            None => None,
        };

        let exam = match element.child("exam") {
            Some(el) => Some(ExamMeta {
                average_time: el
                    .child("averageTime")
                    .map(|t| parse_duration(t, "exam/averageTime"))
                    .transpose()?,
                test_time: el
                    .child("testTime")
                    .map(|t| parse_duration(t, "exam/testTime"))
                    .transpose()?,
                instructional_sensitivity: el
                    .child("instructionalSensitivityIndex")
                    .map(|v| parse_f64(v, "exam/instructionalSensitivityIndex"))
                    .transpose()?,
            }),
            None => None,
        };

        Ok(MineMetadata {
            general,
            lifecycle,
            technical,
            educational,
            rights,
            cognition,
            style,
            questionnaire,
            individual_test,
            exam,
        })
    }

    /// Parses a record from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`MetadataError::Xml`] for malformed XML and other
    /// [`MetadataError`]s for schema problems.
    pub fn from_xml_str(text: &str) -> Result<Self, MetadataError> {
        let doc = mine_xml::parse_document(text)?;
        Self::from_xml_element(&doc.root)
    }
}

/// Builder for [`MineMetadata`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct MineMetadataBuilder {
    meta: MineMetadata,
}

impl MineMetadataBuilder {
    /// Sets the title.
    #[must_use]
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.meta.general.title = title.into();
        self
    }

    /// Sets the description.
    #[must_use]
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.meta.general.description = description.into();
        self
    }

    /// Sets the language code.
    #[must_use]
    pub fn language(mut self, language: impl Into<String>) -> Self {
        self.meta.general.language = language.into();
        self
    }

    /// Adds a search keyword.
    #[must_use]
    pub fn keyword(mut self, keyword: impl Into<String>) -> Self {
        self.meta.general.keywords.push(keyword.into());
        self
    }

    /// Adds a lifecycle contributor.
    #[must_use]
    pub fn contributor(mut self, contributor: Contributor) -> Self {
        self.meta.lifecycle.contributors.push(contributor);
        self
    }

    /// Sets the cognition section.
    #[must_use]
    pub fn cognition(mut self, cognition: impl Into<CognitionMeta>) -> Self {
        self.meta.cognition = Some(cognition.into());
        self
    }

    /// Sets the question style.
    #[must_use]
    pub fn style(mut self, style: QuestionStyle) -> Self {
        self.meta.style = Some(style);
        self
    }

    /// Sets the questionnaire section.
    #[must_use]
    pub fn questionnaire(mut self, questionnaire: QuestionnaireMeta) -> Self {
        self.meta.questionnaire = Some(questionnaire);
        self
    }

    /// Sets (creating if needed) the IndividualTest subject.
    #[must_use]
    pub fn subject(mut self, subject: impl Into<Subject>) -> Self {
        self.meta
            .individual_test
            .get_or_insert_with(IndividualTestMeta::default)
            .subject = subject.into();
        self
    }

    /// Sets the whole IndividualTest section.
    #[must_use]
    pub fn individual_test(mut self, test: IndividualTestMeta) -> Self {
        self.meta.individual_test = Some(test);
        self
    }

    /// Sets the Exam section.
    #[must_use]
    pub fn exam(mut self, exam: ExamMeta) -> Self {
        self.meta.exam = Some(exam);
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> MineMetadata {
        self.meta
    }
}

fn require<'a>(element: &'a Element, name: &str) -> Result<&'a Element, MetadataError> {
    element
        .child(name)
        .ok_or_else(|| MetadataError::MissingElement {
            path: name.to_string(),
        })
}

fn child_text(element: &Element, name: &str) -> String {
    element.child_text(name).unwrap_or_default()
}

/// Formats a float without trailing zeros noise, keeping round-trip
/// precision.
fn format_f64(value: f64) -> String {
    // `{}` on f64 prints the shortest representation that round-trips.
    format!("{value}")
}

fn parse_f64(element: &Element, path: &str) -> Result<f64, MetadataError> {
    let text = element.text();
    text.trim()
        .parse()
        .map_err(|_| MetadataError::InvalidValue {
            path: path.to_string(),
            found: text.clone(),
            expected: "floating point number",
        })
}

fn duration_element(name: &str, duration: Duration) -> Element {
    Element::new(name)
        .with_attr("unit", "s")
        .with_text(format_f64(duration.as_secs_f64()))
}

fn parse_duration(element: &Element, path: &str) -> Result<Duration, MetadataError> {
    let seconds = parse_f64(element, path)?;
    if seconds < 0.0 || !seconds.is_finite() {
        return Err(MetadataError::InvalidValue {
            path: path.to_string(),
            found: seconds.to_string(),
            expected: "non-negative seconds",
        });
    }
    Ok(Duration::from_secs_f64(seconds))
}

fn answer_element(answer: &Answer) -> Element {
    match answer {
        Answer::Choice(key) => Element::new("answer")
            .with_attr("kind", "choice")
            .with_text(key.letter().to_string()),
        Answer::MultiChoice(keys) => Element::new("answer")
            .with_attr("kind", "multi-choice")
            .with_text(keys.iter().map(|k| k.letter()).collect::<String>()),
        Answer::TrueFalse(value) => Element::new("answer")
            .with_attr("kind", "true-false")
            .with_text(value.to_string()),
        Answer::Text(text) => Element::new("answer")
            .with_attr("kind", "text")
            .with_text(text),
        Answer::Completion(blanks) => {
            let mut el = Element::new("answer").with_attr("kind", "completion");
            for blank in blanks {
                el.push(Element::new("blank").with_text(blank));
            }
            el
        }
        Answer::Match(pairs) => {
            let mut el = Element::new("answer").with_attr("kind", "match");
            for (left, right) in pairs.iter().enumerate() {
                el.push(
                    Element::new("pair")
                        .with_attr("left", left.to_string())
                        .with_attr("right", right.to_string()),
                );
            }
            el
        }
        Answer::Skipped => Element::new("answer").with_attr("kind", "skipped"),
    }
}

fn parse_answer(element: &Element) -> Result<Answer, MetadataError> {
    let kind = element.attr("kind").unwrap_or("text");
    let text = element.text();
    let invalid = |expected: &'static str| MetadataError::InvalidValue {
        path: "answer".into(),
        found: text.clone(),
        expected,
    };
    match kind {
        "choice" => {
            let key = text
                .trim()
                .parse::<OptionKey>()
                .map_err(MetadataError::from)?;
            Ok(Answer::Choice(key))
        }
        "multi-choice" => {
            let keys = text
                .trim()
                .chars()
                .map(OptionKey::from_letter)
                .collect::<Result<Vec<_>, _>>()
                .map_err(MetadataError::from)?;
            Ok(Answer::MultiChoice(keys))
        }
        "true-false" => match text.trim() {
            "true" => Ok(Answer::TrueFalse(true)),
            "false" => Ok(Answer::TrueFalse(false)),
            _ => Err(invalid("true or false")),
        },
        "text" => Ok(Answer::Text(text)),
        "completion" => Ok(Answer::Completion(
            element.children_named("blank").map(Element::text).collect(),
        )),
        "match" => {
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for pair in element.children_named("pair") {
                let left = pair
                    .attr("left")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| invalid("pair with left/right indices"))?;
                let right = pair
                    .attr("right")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| invalid("pair with left/right indices"))?;
                pairs.push((left, right));
            }
            pairs.sort_unstable();
            Ok(Answer::Match(pairs.into_iter().map(|(_, r)| r).collect()))
        }
        "skipped" => Ok(Answer::Skipped),
        _ => Err(invalid("a known answer kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_meta() -> MineMetadata {
        MineMetadata::builder("meta-q2")
            .title("Question no. 2")
            .description("Worked example from §4.1.2")
            .language("en")
            .keyword("tcp")
            .keyword("windows")
            .contributor(Contributor::new("author", "J. Hung"))
            .cognition(CognitionMeta::new(CognitionLevel::Comprehension).with_objective("explain"))
            .style(QuestionStyle::MultipleChoice)
            .questionnaire(QuestionnaireMeta {
                resumable: true,
                display_type: DisplayOrder::Random,
            })
            .individual_test(IndividualTestMeta {
                answer: Some(Answer::Choice(OptionKey::C)),
                subject: Subject::new("networking"),
                difficulty: Some(DifficultyIndex::new(0.635).unwrap()),
                discrimination: Some(DiscriminationIndex::new(0.55).unwrap()),
                distraction: vec!["B lures the low group".into()],
            })
            .exam(ExamMeta {
                average_time: Some(Duration::from_secs_f64(41.5)),
                test_time: Some(Duration::from_secs(3600)),
                instructional_sensitivity: Some(0.22),
            })
            .build()
    }

    #[test]
    fn builder_populates_sections() {
        let meta = full_meta();
        assert_eq!(meta.general.title, "Question no. 2");
        assert_eq!(meta.general.keywords.len(), 2);
        assert_eq!(
            meta.cognition.as_ref().unwrap().level,
            CognitionLevel::Comprehension
        );
        assert_eq!(meta.style, Some(QuestionStyle::MultipleChoice));
        assert!(meta.questionnaire.as_ref().unwrap().resumable);
    }

    #[test]
    fn xml_round_trip_full() {
        let meta = full_meta();
        let xml = meta.to_xml_element();
        let text = xml.to_xml_string();
        let back = MineMetadata::from_xml_str(&text).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn xml_round_trip_minimal() {
        let meta = MineMetadata::builder("m1").build();
        let back = MineMetadata::from_xml_element(&meta.to_xml_element()).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn xml_round_trip_every_answer_kind() {
        let answers = [
            Answer::Choice(OptionKey::B),
            Answer::MultiChoice(vec![OptionKey::A, OptionKey::D]),
            Answer::TrueFalse(false),
            Answer::Text("an essay answer".into()),
            Answer::Completion(vec!["alpha".into(), "beta".into()]),
            Answer::Match(vec![2, 0, 1]),
            Answer::Skipped,
        ];
        for answer in answers {
            let meta = MineMetadata::builder("m")
                .individual_test(IndividualTestMeta {
                    answer: Some(answer.clone()),
                    ..IndividualTestMeta::default()
                })
                .build();
            let back = MineMetadata::from_xml_element(&meta.to_xml_element()).unwrap();
            assert_eq!(
                back.individual_test.unwrap().answer,
                Some(answer.clone()),
                "answer {answer:?}"
            );
        }
    }

    #[test]
    fn missing_general_is_an_error() {
        let err = MineMetadata::from_xml_element(&Element::new("mine:metadata")).unwrap_err();
        assert!(matches!(err, MetadataError::MissingElement { .. }));
    }

    #[test]
    fn bad_cognition_letter_is_an_error() {
        let el = Element::new("mine:metadata")
            .with_child(Element::new("general"))
            .with_child(Element::new("cognition").with_attr("level", "Z"));
        assert!(MineMetadata::from_xml_element(&el).is_err());
    }

    #[test]
    fn bad_style_keyword_is_an_error() {
        let el = Element::new("mine:metadata")
            .with_child(Element::new("general"))
            .with_child(Element::new("questionStyle").with_text("guessing"));
        assert!(MineMetadata::from_xml_element(&el).is_err());
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let el = Element::new("mine:metadata")
            .with_child(Element::new("general"))
            .with_child(
                Element::new("individualTest")
                    .with_child(Element::new("itemDifficultyIndex").with_text("1.5")),
            );
        assert!(MineMetadata::from_xml_element(&el).is_err());
    }

    #[test]
    fn negative_duration_is_an_error() {
        let el = Element::new("mine:metadata")
            .with_child(Element::new("general"))
            .with_child(
                Element::new("exam").with_child(
                    Element::new("testTime")
                        .with_attr("unit", "s")
                        .with_text("-5"),
                ),
            );
        assert!(MineMetadata::from_xml_element(&el).is_err());
    }

    #[test]
    fn render_tree_lists_all_ten_sections() {
        let tree = full_meta().render_tree();
        for section in [
            "General",
            "Lifecycle",
            "Technical",
            "Educational",
            "Rights",
            "Cognition",
            "Question Style",
            "Questionnaire",
            "IndividualTest",
            "Exam",
        ] {
            assert!(
                tree.contains(section),
                "missing section {section} in:\n{tree}"
            );
        }
        // Exactly ten branches under the root.
        assert_eq!(tree.matches("── ").count(), 10);
    }

    #[test]
    fn render_tree_marks_empty_sections() {
        let tree = MineMetadata::builder("empty").build().render_tree();
        assert!(tree.contains("Cognition: (empty)"));
        assert!(tree.contains("Exam: (empty)"));
    }

    #[test]
    fn from_xml_str_propagates_parse_errors() {
        assert!(matches!(
            MineMetadata::from_xml_str("<broken").unwrap_err(),
            MetadataError::Xml(_)
        ));
    }
}
