//! Completeness validation for metadata records.
//!
//! §2.1 of the paper: "a good metadata need completeness, carefulness,
//! and flexibility". [`validate`] checks a [`MineMetadata`] record for
//! the gaps that break downstream workflows (searching, analysis,
//! SCORM exchange) and reports them as warnings or errors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assessment::QuestionStyle;
use crate::tree::MineMetadata;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Completeness {
    /// Nice-to-have field absent.
    Advice,
    /// Field absent that degrades search/analysis.
    Warning,
    /// Record unusable for its purpose.
    Error,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationIssue {
    /// How serious the finding is.
    pub severity: Completeness,
    /// Which field/section the finding concerns.
    pub field: String,
    /// Human-readable explanation.
    pub message: String,
}

impl ValidationIssue {
    fn new(severity: Completeness, field: &str, message: impl Into<String>) -> Self {
        Self {
            severity,
            field: field.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Completeness::Advice => "advice",
            Completeness::Warning => "warning",
            Completeness::Error => "error",
        };
        write!(f, "[{tag}] {}: {}", self.field, self.message)
    }
}

/// Validates a metadata record, returning all findings (empty = clean).
///
/// # Examples
///
/// ```
/// use mine_metadata::{validate, Completeness, MineMetadata};
///
/// let bare = MineMetadata::builder("m1").build();
/// let issues = validate(&bare);
/// assert!(issues.iter().any(|i| i.field == "general.title"));
/// assert!(!issues.iter().any(|i| i.severity == Completeness::Error));
/// ```
#[must_use]
pub fn validate(meta: &MineMetadata) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    if meta.general.identifier.trim().is_empty() {
        issues.push(ValidationIssue::new(
            Completeness::Error,
            "general.identifier",
            "records must carry a catalog identifier for repository exchange",
        ));
    }
    if meta.general.title.trim().is_empty() {
        issues.push(ValidationIssue::new(
            Completeness::Warning,
            "general.title",
            "untitled records are hard to find in the problem search",
        ));
    }
    if meta.general.keywords.is_empty() {
        issues.push(ValidationIssue::new(
            Completeness::Advice,
            "general.keywords",
            "keywords improve problem search recall",
        ));
    }

    match meta.style {
        Some(QuestionStyle::Questionnaire) if meta.questionnaire.is_none() => {
            issues.push(ValidationIssue::new(
                Completeness::Error,
                "questionnaire",
                "questionnaire-style records must define resumable and display type",
            ));
        }
        Some(style) if style.is_objective() => {
            let has_answer = meta
                .individual_test
                .as_ref()
                .is_some_and(|t| t.answer.is_some());
            if !has_answer {
                issues.push(ValidationIssue::new(
                    Completeness::Error,
                    "individualTest.answer",
                    "objective questions need a stored correct answer for auto-grading",
                ));
            }
        }
        _ => {}
    }

    if let Some(test) = &meta.individual_test {
        if test.subject.as_str().trim().is_empty() {
            issues.push(ValidationIssue::new(
                Completeness::Warning,
                "individualTest.subject",
                "the two-way specification table needs each question's subject",
            ));
        }
    }

    if meta.cognition.is_none() {
        issues.push(ValidationIssue::new(
            Completeness::Warning,
            "cognition",
            "without a cognition level the question cannot join the two-way table",
        ));
    }

    if let Some(exam) = &meta.exam {
        if let (Some(avg), Some(limit)) = (exam.average_time, exam.test_time) {
            if avg > limit {
                issues.push(ValidationIssue::new(
                    Completeness::Warning,
                    "exam.averageTime",
                    "average answering time exceeds the test time limit",
                ));
            }
        }
    }

    issues
}

/// Convenience: `true` when the record has no [`Completeness::Error`]
/// findings.
#[must_use]
pub fn is_usable(meta: &MineMetadata) -> bool {
    !validate(meta)
        .iter()
        .any(|issue| issue.severity == Completeness::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessment::{CognitionMeta, ExamMeta, IndividualTestMeta, QuestionnaireMeta};
    use mine_core::{Answer, CognitionLevel, OptionKey, Subject};
    use std::time::Duration;

    fn clean_choice_meta() -> MineMetadata {
        MineMetadata::builder("q1")
            .title("A fine question")
            .keyword("network")
            .cognition(CognitionMeta::new(CognitionLevel::Knowledge))
            .style(QuestionStyle::MultipleChoice)
            .individual_test(IndividualTestMeta {
                answer: Some(Answer::Choice(OptionKey::A)),
                subject: Subject::new("routing"),
                ..IndividualTestMeta::default()
            })
            .build()
    }

    #[test]
    fn clean_record_validates_clean() {
        assert!(validate(&clean_choice_meta()).is_empty());
        assert!(is_usable(&clean_choice_meta()));
    }

    #[test]
    fn empty_identifier_is_an_error() {
        let mut meta = clean_choice_meta();
        meta.general.identifier = "  ".into();
        let issues = validate(&meta);
        assert!(issues
            .iter()
            .any(|i| i.severity == Completeness::Error && i.field == "general.identifier"));
        assert!(!is_usable(&meta));
    }

    #[test]
    fn objective_style_without_answer_is_an_error() {
        let mut meta = clean_choice_meta();
        meta.individual_test.as_mut().unwrap().answer = None;
        assert!(!is_usable(&meta));
    }

    #[test]
    fn essay_without_answer_is_fine() {
        let mut meta = clean_choice_meta();
        meta.style = Some(QuestionStyle::Essay);
        meta.individual_test.as_mut().unwrap().answer = None;
        assert!(is_usable(&meta));
    }

    #[test]
    fn questionnaire_style_requires_section() {
        let mut meta = clean_choice_meta();
        meta.style = Some(QuestionStyle::Questionnaire);
        meta.questionnaire = None;
        assert!(!is_usable(&meta));
        meta.questionnaire = Some(QuestionnaireMeta::default());
        assert!(is_usable(&meta));
    }

    #[test]
    fn missing_cognition_warns() {
        let mut meta = clean_choice_meta();
        meta.cognition = None;
        let issues = validate(&meta);
        assert!(issues
            .iter()
            .any(|i| i.field == "cognition" && i.severity == Completeness::Warning));
        assert!(is_usable(&meta), "warning only, still usable");
    }

    #[test]
    fn average_time_over_limit_warns() {
        let mut meta = clean_choice_meta();
        meta.exam = Some(ExamMeta {
            average_time: Some(Duration::from_secs(4000)),
            test_time: Some(Duration::from_secs(3600)),
            instructional_sensitivity: None,
        });
        let issues = validate(&meta);
        assert!(issues.iter().any(|i| i.field == "exam.averageTime"));
    }

    #[test]
    fn issue_display_has_severity_tag() {
        let issue = ValidationIssue::new(Completeness::Warning, "f", "m");
        assert_eq!(issue.to_string(), "[warning] f: m");
    }
}
