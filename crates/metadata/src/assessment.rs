//! The assessment-specific metadata sections (§3.1–§3.4).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use mine_core::{Answer, CognitionLevel, Subject};

use crate::indices::{DifficultyIndex, DiscriminationIndex};

/// §3.1 — cognition-level metadata attached to a question.
///
/// Records which Bloom level the question targets, plus the instruction
/// objective it serves ("if the instruction objective is clear, it guides
/// teaching activities and evaluation precisely").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CognitionMeta {
    /// Targeted Bloom level.
    pub level: CognitionLevel,
    /// The instruction objective this question assesses.
    pub objective: String,
}

impl CognitionMeta {
    /// Creates cognition metadata for a level with no stated objective.
    #[must_use]
    pub fn new(level: CognitionLevel) -> Self {
        Self {
            level,
            objective: String::new(),
        }
    }

    /// Builder-style objective setter.
    #[must_use]
    pub fn with_objective(mut self, objective: impl Into<String>) -> Self {
        self.objective = objective.into();
        self
    }
}

impl From<CognitionLevel> for CognitionMeta {
    fn from(level: CognitionLevel) -> Self {
        Self::new(level)
    }
}

/// §3.2-VI-C — presentation order of questions in a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DisplayOrder {
    /// "Fixed Order — for tests with a fixed number and order of
    /// questions."
    #[default]
    Fixed,
    /// "Random Order — for tests with a random order."
    Random,
}

impl DisplayOrder {
    /// The wire keyword used in the XML binding.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            DisplayOrder::Fixed => "fixed",
            DisplayOrder::Random => "random",
        }
    }

    /// Parses the wire keyword.
    #[must_use]
    pub fn from_keyword(keyword: &str) -> Option<Self> {
        match keyword.trim().to_ascii_lowercase().as_str() {
            "fixed" => Some(DisplayOrder::Fixed),
            "random" => Some(DisplayOrder::Random),
            _ => None,
        }
    }
}

/// §3.2-VI — questionnaire metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QuestionnaireMeta {
    /// "True means resumed and false means paused at a later time" — can
    /// the learner leave and come back?
    pub resumable: bool,
    /// Fixed or random question order.
    pub display_type: DisplayOrder,
}

/// §3.2 — the style of a question.
///
/// Variants carry no content (the actual stem/options live in the item
/// bank); the metadata records *what kind* of interaction the question
/// is, which the authoring search and the two-way analysis both use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QuestionStyle {
    /// Open-ended essay or longer fill-in (§3.2-I).
    Essay,
    /// True/false judgement (§3.2-II).
    TrueFalse,
    /// Multiple choice (§3.2-III).
    MultipleChoice,
    /// Match items (§3.2-IV).
    Match,
    /// Fill-in-blank / cloze (§3.2-V).
    Completion,
    /// Questionnaire (§3.2-VI).
    Questionnaire,
}

impl QuestionStyle {
    /// All styles the paper names.
    pub const ALL: [QuestionStyle; 6] = [
        QuestionStyle::Essay,
        QuestionStyle::TrueFalse,
        QuestionStyle::MultipleChoice,
        QuestionStyle::Match,
        QuestionStyle::Completion,
        QuestionStyle::Questionnaire,
    ];

    /// The wire keyword used in the XML binding.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            QuestionStyle::Essay => "essay",
            QuestionStyle::TrueFalse => "true-false",
            QuestionStyle::MultipleChoice => "multiple-choice",
            QuestionStyle::Match => "match",
            QuestionStyle::Completion => "completion",
            QuestionStyle::Questionnaire => "questionnaire",
        }
    }

    /// Parses the wire keyword.
    #[must_use]
    pub fn from_keyword(keyword: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|style| style.keyword() == keyword.trim().to_ascii_lowercase())
    }

    /// Whether the style can be graded mechanically (no human marker).
    #[must_use]
    pub fn is_objective(self) -> bool {
        !matches!(self, QuestionStyle::Essay | QuestionStyle::Questionnaire)
    }
}

/// §3.3 — per-question assessment record ("IndividualTest").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct IndividualTestMeta {
    /// "Correct answer for explaining and query" (§3.3-I).
    pub answer: Option<Answer>,
    /// "Define each question a main subject" (§3.3-II).
    pub subject: Subject,
    /// Item Difficulty Index `P` from past administrations (§3.3-III).
    pub difficulty: Option<DifficultyIndex>,
    /// Item Discrimination Index `D` from past administrations (§3.3-IV).
    pub discrimination: Option<DiscriminationIndex>,
    /// "With the analysis, define students' distraction" — free-text notes
    /// about which wrong options distract whom (§3.3-V).
    pub distraction: Vec<String>,
}

/// §3.4 — per-exam assessment record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExamMeta {
    /// "Each people take different time answering questions, we use
    /// average time for operation" (§3.4-I).
    pub average_time: Option<Duration>,
    /// "A default time limit for testing" (§3.4-II).
    pub test_time: Option<Duration>,
    /// Instructional Sensitivity Index: post-teaching minus pre-teaching
    /// mean correct-rate (§3.4-III); `None` until both sittings exist.
    pub instructional_sensitivity: Option<f64>,
}

impl ExamMeta {
    /// Creates an exam record with a time limit.
    #[must_use]
    pub fn with_test_time(test_time: Duration) -> Self {
        Self {
            test_time: Some(test_time),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;

    #[test]
    fn cognition_meta_builder() {
        let meta = CognitionMeta::new(CognitionLevel::Analysis).with_objective("decompose a DFA");
        assert_eq!(meta.level, CognitionLevel::Analysis);
        assert_eq!(meta.objective, "decompose a DFA");
        let from: CognitionMeta = CognitionLevel::Synthesis.into();
        assert_eq!(from.level, CognitionLevel::Synthesis);
    }

    #[test]
    fn display_order_keywords_round_trip() {
        for order in [DisplayOrder::Fixed, DisplayOrder::Random] {
            assert_eq!(DisplayOrder::from_keyword(order.keyword()), Some(order));
        }
        assert_eq!(
            DisplayOrder::from_keyword(" RANDOM "),
            Some(DisplayOrder::Random)
        );
        assert_eq!(DisplayOrder::from_keyword("shuffled"), None);
        assert_eq!(DisplayOrder::default(), DisplayOrder::Fixed);
    }

    #[test]
    fn question_style_keywords_round_trip() {
        for style in QuestionStyle::ALL {
            assert_eq!(QuestionStyle::from_keyword(style.keyword()), Some(style));
        }
        assert_eq!(QuestionStyle::from_keyword("nope"), None);
    }

    #[test]
    fn objective_styles() {
        assert!(QuestionStyle::MultipleChoice.is_objective());
        assert!(QuestionStyle::TrueFalse.is_objective());
        assert!(QuestionStyle::Match.is_objective());
        assert!(QuestionStyle::Completion.is_objective());
        assert!(!QuestionStyle::Essay.is_objective());
        assert!(!QuestionStyle::Questionnaire.is_objective());
    }

    #[test]
    fn individual_test_meta_defaults() {
        let meta = IndividualTestMeta::default();
        assert!(meta.answer.is_none());
        assert!(meta.difficulty.is_none());
        assert!(meta.distraction.is_empty());
    }

    #[test]
    fn individual_test_meta_serde_round_trip() {
        let meta = IndividualTestMeta {
            answer: Some(Answer::Choice(OptionKey::C)),
            subject: Subject::new("congestion control"),
            difficulty: Some(DifficultyIndex::new(0.635).unwrap()),
            discrimination: Some(DiscriminationIndex::new(0.55).unwrap()),
            distraction: vec!["option B lures low group".into()],
        };
        let json = serde_json::to_string(&meta).unwrap();
        let back: IndividualTestMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn exam_meta_with_test_time() {
        let meta = ExamMeta::with_test_time(Duration::from_secs(3600));
        assert_eq!(meta.test_time, Some(Duration::from_secs(3600)));
        assert!(meta.average_time.is_none());
        assert!(meta.instructional_sensitivity.is_none());
    }
}
