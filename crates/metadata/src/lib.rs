//! The MINE SCORM assessment metadata model (paper §3, Figure 1).
//!
//! The paper's central observation is that mainstream e-learning metadata
//! (IEEE LTSC LOM, IMS, SCORM) describes learning *materials* well but
//! says little about *assessment*. It therefore proposes the **MINE SCORM
//! Meta-data Model**: a tree that keeps the familiar LOM-style descriptive
//! categories and adds four assessment-specific sections:
//!
//! 1. **Cognition level** (§3.1) — which Bloom cognitive level a question
//!    exercises,
//! 2. **Question style** (§3.2) — essay, true/false, multiple choice,
//!    match, completion, questionnaire (with resumability and display
//!    order),
//! 3. **IndividualTest** (§3.3) — answer, subject, Item Difficulty Index,
//!    Item Discrimination Index, distraction notes,
//! 4. **Exam** (§3.4) — average time, test time limit, Instructional
//!    Sensitivity Index.
//!
//! [`MineMetadata`] assembles the whole tree, binds to XML via
//! [`mine_xml`], renders the Figure 1 tree view, and validates
//! completeness.
//!
//! # Examples
//!
//! ```
//! use mine_core::CognitionLevel;
//! use mine_metadata::{CognitionMeta, MineMetadata};
//!
//! let meta = MineMetadata::builder("meta-q1")
//!     .title("Sliding window size")
//!     .cognition(CognitionMeta::new(CognitionLevel::Application))
//!     .build();
//! let xml = meta.to_xml_element();
//! let back = MineMetadata::from_xml_element(&xml)?;
//! assert_eq!(back, meta);
//! # Ok::<(), mine_metadata::MetadataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assessment;
pub mod error;
pub mod indices;
pub mod lom;
pub mod tree;
pub mod validation;

pub use assessment::{
    CognitionMeta, DisplayOrder, ExamMeta, IndividualTestMeta, QuestionStyle, QuestionnaireMeta,
};
pub use error::MetadataError;
pub use indices::{DifficultyIndex, DiscriminationIndex};
pub use lom::{
    Contributor, EducationalMeta, GeneralMeta, LifecycleMeta, RightsMeta, TechnicalMeta,
};
pub use tree::{MineMetadata, MineMetadataBuilder};
pub use validation::{validate, Completeness, ValidationIssue};
