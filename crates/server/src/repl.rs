//! Primary/follower replication: WAL shipping, read replicas, and
//! epoch-fenced failover over the [`mine_store::replicate`] protocol.
//!
//! # Topology
//!
//! One **primary** owns all writes. It exposes a replication listener
//! ([`ReplListener`]); each **follower** connects to it
//! ([`start_follower`]), bootstraps from a full [`ServerImage`]
//! snapshot, and then applies the primary's WAL records in strict
//! sequence order — through [`crate::journal::apply_event`], the same
//! function crash recovery uses, so a replica's registry is
//! byte-identical to what the primary would rebuild from the same log.
//! Followers serve every read route and refuse writes with
//! `421 Misdirected Request` naming the leader.
//!
//! # Durability modes
//!
//! With `AckMode::Leader` a write is acknowledged once the primary's
//! own WAL accepts it. With `AckMode::Quorum` the handler additionally
//! waits (bounded) for at least one follower to confirm the record is
//! locally durable; a timed-out wait proceeds anyway — the event is
//! already journaled, and failing the request *after* journaling would
//! make live behavior diverge from replay — but is counted in
//! `mine_repl_quorum_timeouts_total`.
//!
//! # Epoch fencing
//!
//! Failover is epoch-fenced either way it is triggered: `mine promote`
//! (supervised) and the follower-side failure detector
//! ([`FailoverConfig`], `--auto-failover`) both run the same sequence —
//! stop following, bump the durable epoch (see
//! [`mine_store::EventStore::set_epoch`]) past the old leader's, start
//! serving writes. The epoch fences every path a deposed primary could
//! sneak stale state through: a follower refuses a `Welcome` from a
//! lower-epoch leader, stops applying a stream the moment its own
//! durable epoch moves past the stream's, and a primary that sees a
//! higher-epoch `Hello` adopts that epoch durably and demotes itself. A
//! deposed primary restarted with `--replica-of` adopts the higher
//! epoch from the new leader's `Welcome` the same way.
//!
//! # Fault injection
//!
//! When a [`FaultPlan`] is configured (`MINE_FAULT_PLAN`), the
//! primary's shipping loop consults it before every streamed frame —
//! bootstrap snapshot, records, heartbeats — so a seeded chaos schedule
//! can drop, duplicate, delay, or fail sends deterministically. The
//! follower's integrity rules ([`StreamCursor`], CRC framing) turn
//! every injected fault into a typed error and a clean re-sync.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Number, Value};

use mine_store::replicate::{read_message, write_message, Message};
use mine_store::{FaultPlan, NetAction, ReplError, StreamCursor};

use crate::client::{backoff_delay, HttpClient, RetryPolicy};
use crate::journal::{apply_event, Journal, ServerImage, SessionEvent};
use crate::metrics::Metrics;
use crate::router::Router;

/// Socket read timeout on both sides of the stream: long enough for
/// heartbeats (sent every [`HEARTBEAT_INTERVAL`]) to keep the
/// connection warm, short enough that stop flags are observed promptly.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// How often an idle primary sends `Heartbeat` to each follower.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// First ceiling of the follower's reconnect backoff; doubles per
/// consecutive failure with full jitter (see [`backoff_delay`]).
const RECONNECT_BASE: Duration = Duration::from_millis(250);

/// Hard cap on one reconnect pause: a follower never sits out longer
/// than this once its primary is back.
const RECONNECT_CAP: Duration = Duration::from_secs(2);

/// I/O timeout for one failure-detector probe of a peer's `/healthz`.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

/// Default leader-silence timeout for `--auto-failover` without an
/// explicit value (six missed heartbeats).
pub const DEFAULT_FAILOVER_TIMEOUT: Duration = Duration::from_millis(3_000);

/// Configuration of the follower-side failure detector
/// (`--auto-failover`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Leader silence after which the follower suspects a dead primary.
    /// The *effective* timeout adds a deterministic per-node jitter of
    /// up to 25% (derived from the node's advertised address), so two
    /// followers never run the succession survey in lockstep.
    pub timeout: Duration,
    /// Client-facing (HTTP) addresses of the *other* nodes, surveyed
    /// before promoting. List each peer exactly as it advertises itself
    /// (its `--addr`): the address doubles as the node id in the
    /// deterministic succession tie-break.
    pub peers: Vec<String>,
}

/// Where this node stands in the replication topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Owns writes, ships its WAL to followers.
    Primary,
    /// Mirrors a primary; serves reads, redirects writes.
    Follower,
    /// Mid-promotion: no longer following, not yet serving writes.
    Candidate,
}

impl Role {
    /// Stable label (`/healthz`, metrics).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Candidate => "candidate",
        }
    }

    /// Gauge encoding: 0 primary, 1 follower, 2 candidate.
    #[must_use]
    pub fn gauge(self) -> u64 {
        match self {
            Role::Primary => 0,
            Role::Follower => 1,
            Role::Candidate => 2,
        }
    }

    fn from_gauge(gauge: u64) -> Self {
        match gauge {
            0 => Role::Primary,
            1 => Role::Follower,
            _ => Role::Candidate,
        }
    }
}

/// When a write is acknowledged to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Once the primary's own WAL accepts the record.
    Leader,
    /// Additionally wait (bounded) for one follower's durable ack.
    Quorum,
}

impl AckMode {
    /// Parses the CLI spelling: `leader`, `quorum`, or the
    /// `ack=`-prefixed forms used by `--replicate`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.strip_prefix("ack=").unwrap_or(text) {
            "leader" => Ok(AckMode::Leader),
            "quorum" => Ok(AckMode::Quorum),
            other => Err(format!(
                "unknown ack mode {other:?} (expected ack=leader | ack=quorum)"
            )),
        }
    }
}

/// One connected follower, as the primary's hub sees it.
#[derive(Debug)]
struct FollowerConn {
    id: u64,
    /// Pre-encoded wire frames queued for this follower's writer.
    sender: channel::Sender<Vec<u8>>,
    /// Highest sequence this follower has confirmed durable.
    acked: Arc<AtomicU64>,
}

/// The primary's fan-out point: every connected follower's frame queue
/// plus the ack bookkeeping quorum waits block on.
#[derive(Debug, Default)]
pub struct Hub {
    conns: Mutex<Vec<FollowerConn>>,
    next_id: AtomicU64,
    /// Paired with `ack_signal`; quorum waiters sleep on it until an
    /// ack-reader thread advances some follower's `acked` and notifies.
    ack_lock: Mutex<()>,
    ack_signal: Condvar,
}

impl Hub {
    fn register(&self, sender: channel::Sender<Vec<u8>>, acked: Arc<AtomicU64>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .expect("hub mutex")
            .push(FollowerConn { id, sender, acked });
        id
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .expect("hub mutex")
            .retain(|conn| conn.id != id);
        // A quorum waiter counting on this follower must re-evaluate.
        self.ack_signal.notify_all();
    }

    /// Queues one encoded frame for every follower. Dead senders (their
    /// connection thread has exited) are pruned.
    fn publish(&self, frame: &[u8]) {
        self.conns
            .lock()
            .expect("hub mutex")
            .retain(|conn| conn.sender.send(frame.to_vec()).is_ok());
    }

    /// Followers currently connected.
    #[must_use]
    pub fn count(&self) -> usize {
        self.conns.lock().expect("hub mutex").len()
    }

    /// The slowest connected follower's acked sequence (`None` with no
    /// followers).
    #[must_use]
    pub fn min_acked(&self) -> Option<u64> {
        self.conns
            .lock()
            .expect("hub mutex")
            .iter()
            .map(|conn| conn.acked.load(Ordering::Acquire))
            .min()
    }

    fn any_acked(&self, seq: u64) -> bool {
        self.conns
            .lock()
            .expect("hub mutex")
            .iter()
            .any(|conn| conn.acked.load(Ordering::Acquire) >= seq)
    }

    /// Called by ack readers after advancing a follower's `acked`.
    fn notify(&self) {
        self.ack_signal.notify_all();
    }

    /// Blocks until some follower has acked `seq` or `timeout` passes.
    /// Returns whether the quorum was reached.
    fn wait_for_ack(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.ack_lock.lock().expect("ack mutex");
        loop {
            if self.any_acked(seq) {
                return true;
            }
            if self.count() == 0 {
                // Every follower disconnected mid-wait; nothing left to
                // wait for.
                return false;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let (next, _timed_out) = self
                .ack_signal
                .wait_timeout(guard, remaining)
                .expect("ack mutex");
            guard = next;
        }
    }
}

/// Shared replication state, owned by [`crate::router::ServerState`].
///
/// The durable truth — epoch and applied position — lives in the
/// journal's [`mine_store::EventStore`]; this struct holds the volatile
/// side: role, leader coordinates, the ack mode, and the primary's
/// fan-out hub.
#[derive(Debug)]
pub struct ReplState {
    /// Role as a gauge (see [`Role::gauge`]) so reads are lock-free.
    role: AtomicU64,
    /// The leader's client-facing address (follower-side; from
    /// `Welcome::advertise`). Handed to redirected writers.
    leader_addr: Mutex<Option<String>>,
    /// The leader's last advertised head sequence (follower-side).
    leader_head: AtomicU64,
    /// Our own client-facing address, advertised to followers.
    advertise: Mutex<String>,
    /// When writes are acknowledged.
    ack_mode: AckMode,
    /// Ceiling on one quorum wait.
    quorum_timeout: Duration,
    hub: Hub,
    /// Serializes seq assignment with hub enqueue so followers receive
    /// records in exactly WAL order (see [`Self::append_and_publish`]).
    order: Mutex<()>,
    /// Tells the follower puller to exit (promotion, shutdown).
    stop: AtomicBool,
    /// The seeded fault schedule shared with the store's disk seam; the
    /// shipper consults it before every streamed frame. `None` in
    /// production.
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// When the follower last heard anything from its leader (any
    /// frame counts: snapshot, record, heartbeat). The failure detector
    /// measures leader silence from here.
    leader_contact: Mutex<Option<Instant>>,
    /// The failure detector's configuration; `None` keeps failover
    /// supervised (`mine promote` only).
    failover: Mutex<Option<FailoverConfig>>,
    /// Set by the scrubber after quarantining corrupt sealed segments:
    /// tells the puller to break its live stream and re-bootstrap from
    /// the leader's snapshot (the repair path). The count is how many
    /// segments the re-bootstrap repairs.
    resync: AtomicBool,
    /// Quarantined segments awaiting repair; folded into
    /// `mine_repair_segments_total` once a bootstrap completes.
    repair_pending: AtomicU64,
}

impl ReplState {
    /// Fresh state for a node starting in `role`.
    #[must_use]
    pub fn new(role: Role, ack_mode: AckMode) -> Self {
        Self {
            role: AtomicU64::new(role.gauge()),
            leader_addr: Mutex::new(None),
            leader_head: AtomicU64::new(0),
            advertise: Mutex::new(String::new()),
            ack_mode,
            quorum_timeout: Duration::from_secs(2),
            hub: Hub::default(),
            order: Mutex::new(()),
            stop: AtomicBool::new(false),
            fault_plan: Mutex::new(None),
            leader_contact: Mutex::new(None),
            failover: Mutex::new(None),
            resync: AtomicBool::new(false),
            repair_pending: AtomicU64::new(0),
        }
    }

    /// Asks the puller to abandon its live stream and re-bootstrap from
    /// the leader (called by the scrubber after quarantining `segments`
    /// corrupt sealed segments). The bootstrap snapshot replaces the
    /// whole local log — quarantined evidence files survive, the
    /// divergent or rotted history does not.
    pub fn request_resync(&self, segments: u64) {
        self.repair_pending.fetch_add(segments, Ordering::AcqRel);
        self.resync.store(true, Ordering::Release);
    }

    /// Whether a resync has been requested and not yet completed.
    #[must_use]
    pub fn resync_requested(&self) -> bool {
        self.resync.load(Ordering::Acquire)
    }

    /// Marks the requested resync complete (a bootstrap snapshot was
    /// installed); returns how many quarantined segments it repaired.
    pub fn resync_complete(&self) -> u64 {
        self.resync.store(false, Ordering::Release);
        self.repair_pending.swap(0, Ordering::AcqRel)
    }

    /// Installs a seeded fault schedule for the shipping loop to
    /// consult (share the same plan with
    /// [`mine_store::StoreOptions::fault_plan`] so one spec drives both
    /// seams).
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault_plan.lock().expect("fault plan") = Some(plan);
    }

    /// The installed fault schedule, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.lock().expect("fault plan").clone()
    }

    /// Records that the leader was just heard from (resets the failure
    /// detector's silence clock).
    pub fn note_leader_contact(&self) {
        *self.leader_contact.lock().expect("leader contact") = Some(Instant::now());
    }

    /// How long the leader has been silent (`None` before any contact).
    #[must_use]
    pub fn leader_contact_age(&self) -> Option<Duration> {
        self.leader_contact
            .lock()
            .expect("leader contact")
            .map(|at| at.elapsed())
    }

    /// Arms the failure detector.
    pub fn set_auto_failover(&self, config: FailoverConfig) {
        *self.failover.lock().expect("failover config") = Some(config);
    }

    /// The failure detector's configuration, when armed.
    #[must_use]
    pub fn failover(&self) -> Option<FailoverConfig> {
        self.failover.lock().expect("failover config").clone()
    }

    /// The jittered detection timeout this node actually applies:
    /// `timeout` plus up to 25% more, derived deterministically from
    /// the advertised address so each node waits a different — but
    /// replayable — amount.
    #[must_use]
    pub fn effective_failover_timeout(&self, config: &FailoverConfig) -> Duration {
        let mut hasher = DefaultHasher::new();
        self.advertise().hash(&mut hasher);
        let quarter = u64::try_from(config.timeout.as_millis()).unwrap_or(u64::MAX) / 4;
        let jitter = if quarter == 0 {
            0
        } else {
            hasher.finish() % (quarter + 1)
        };
        config.timeout + Duration::from_millis(jitter)
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> Role {
        Role::from_gauge(self.role.load(Ordering::Acquire))
    }

    /// Flips the role.
    pub fn set_role(&self, role: Role) {
        self.role.store(role.gauge(), Ordering::Release);
    }

    /// The leader's client-facing address, when known.
    #[must_use]
    pub fn leader_addr(&self) -> Option<String> {
        self.leader_addr.lock().expect("leader addr").clone()
    }

    /// Records the leader's client-facing address (what redirects
    /// name).
    pub fn set_leader_addr(&self, addr: String) {
        *self.leader_addr.lock().expect("leader addr") = Some(addr);
    }

    /// The leader's last advertised head sequence.
    #[must_use]
    pub fn leader_head(&self) -> u64 {
        self.leader_head.load(Ordering::Acquire)
    }

    fn set_leader_head(&self, head: u64) {
        self.leader_head.store(head, Ordering::Release);
    }

    /// Publishes our client-facing address (what followers' redirects
    /// will name).
    pub fn set_advertise(&self, addr: String) {
        *self.advertise.lock().expect("advertise") = addr;
    }

    fn advertise(&self) -> String {
        self.advertise.lock().expect("advertise").clone()
    }

    /// The primary's follower hub.
    #[must_use]
    pub fn hub(&self) -> &Hub {
        &self.hub
    }

    /// Signals the follower puller to exit at its next poll.
    pub fn stop_puller(&self) {
        self.stop.store(true, Ordering::Release);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Journals `payload` and ships the record to every follower as one
    /// atomic step, then — under `AckMode::Quorum` — waits (bounded) for
    /// one durable ack. The `order` lock makes seq assignment and hub
    /// enqueue a single critical section: without it two concurrent
    /// handlers could append seqs N and N+1 but enqueue them reversed,
    /// and followers would see a gap and force a full re-bootstrap. The
    /// quorum wait happens *outside* the lock (it can block for up to
    /// [`Self::quorum_timeout`]). The record is already durable before
    /// the wait, so a timeout degrades to leader-ack (counted) rather
    /// than failing the request — failing *after* journaling would make
    /// live behavior diverge from replay.
    ///
    /// # Errors
    ///
    /// Returns [`mine_store::StoreError`] when the local append fails;
    /// nothing is shipped in that case.
    pub fn append_and_publish(
        &self,
        journal: &Journal,
        payload: &[u8],
        metrics: &Metrics,
    ) -> Result<u64, mine_store::StoreError> {
        let seq = {
            let _order = self.order.lock().expect("publish order");
            let seq = journal.append_raw(payload)?;
            let frame = Message::Record {
                seq,
                payload: payload.to_vec(),
            }
            .encode();
            self.hub.publish(&frame);
            seq
        };
        if self.ack_mode == AckMode::Quorum
            && self.hub.count() > 0
            && !self.hub.wait_for_ack(seq, self.quorum_timeout)
        {
            metrics.quorum_timeout();
        }
        Ok(seq)
    }
}

/// A running replication listener (the primary's shipping side).
#[derive(Debug)]
pub struct ReplListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ReplListener {
    /// Binds `addr` and starts accepting follower connections in a
    /// background thread. Each connection is served on its own thread:
    /// handshake, bootstrap snapshot, then the live record stream.
    ///
    /// The listener also runs on followers — it rejects every `Hello`
    /// with "not a primary" until a promotion flips the role, at which
    /// point the same listener starts shipping.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the address cannot be bound.
    pub fn start(addr: &str, router: Router) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = router.clone();
                    std::thread::spawn(move || {
                        if let Err(err) = serve_follower(stream, &router) {
                            eprintln!("[mine-repl] follower connection ended: {err}");
                        }
                    });
                }
            })
        };
        Ok(Self {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the acceptor. Connections already
    /// being served wind down on their own socket errors.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn repl_io(err: mine_store::StoreError) -> ReplError {
    ReplError::Io(std::io::Error::other(err.to_string()))
}

fn is_timeout(err: &ReplError) -> bool {
    matches!(
        err,
        ReplError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// Serves one follower connection on the primary: handshake, bootstrap
/// snapshot captured under the journal's write gate, then the live
/// stream (records from the hub, heartbeats when idle), with a
/// companion thread draining the follower's acks.
fn serve_follower(stream: TcpStream, router: &Router) -> Result<(), ReplError> {
    let state = router.state();
    let (Some(repl), Some(journal)) = (state.repl.as_deref(), state.journal.as_ref()) else {
        return Ok(()); // replication not configured; drop the connection
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    let (follower_epoch, _follower_applied) = match read_message(&mut reader)? {
        Message::Hello {
            epoch,
            last_applied,
        } => (epoch, last_applied),
        other => {
            return Err(ReplError::Frame {
                reason: format!("expected Hello, got {other:?}"),
            })
        }
    };
    let local_epoch = journal.store().epoch();
    if repl.role() != Role::Primary {
        write_message(
            &mut writer,
            &Message::Reject {
                reason: format!("not a primary (role is {})", repl.role().label()),
            },
        )?;
        writer.flush()?;
        return Ok(());
    }
    if state.storage.is_degraded() {
        // A degraded primary cannot journal new writes, so it must not
        // keep followers warm either: refusing the stream silences its
        // heartbeats and lets the followers' failure detector promote
        // past it.
        write_message(
            &mut writer,
            &Message::Reject {
                reason: "storage degraded: not shipping".to_string(),
            },
        )?;
        writer.flush()?;
        return Ok(());
    }
    if follower_epoch > local_epoch {
        // The connecting node has seen a newer epoch than ours: *we*
        // are the deposed primary. Adopt the higher epoch durably and
        // demote — a fenced leader must not keep taking writes — then
        // refuse to ship anything.
        {
            let _gate = journal.gate_write();
            if follower_epoch > journal.store().epoch()
                && journal.store().set_epoch(follower_epoch).is_ok()
            {
                repl.set_role(Role::Follower);
                repl.note_leader_contact();
                eprintln!(
                    "[mine-repl] observed epoch {follower_epoch} ahead of local \
                     {local_epoch}: demoted to follower"
                );
            }
        }
        write_message(
            &mut writer,
            &Message::Reject {
                reason: format!(
                    "stale leader: your epoch {follower_epoch} is ahead of our {local_epoch}"
                ),
            },
        )?;
        writer.flush()?;
        return Ok(());
    }
    write_message(
        &mut writer,
        &Message::Welcome {
            epoch: local_epoch,
            advertise: repl.advertise(),
        },
    )?;
    writer.flush()?;

    // Bootstrap: the image capture and the hub registration happen
    // under the same exclusive gate, so no record journaled after the
    // capture can miss this follower's queue — the stream continues at
    // exactly `last_seq + 1`.
    let (snapshot_frame, last_seq, receiver, acked, id) = {
        let _gate = journal.gate_write();
        let image = ServerImage::capture(&state.registry, &state.finished, &state.adaptive);
        let payload = serde_json::to_string(&image)
            .map_err(|err| ReplError::Frame {
                reason: format!("image failed to serialize: {err}"),
            })?
            .into_bytes();
        let last_seq = journal.store().next_seq() - 1;
        let (sender, receiver) = channel::unbounded::<Vec<u8>>();
        let acked = Arc::new(AtomicU64::new(last_seq));
        let id = repl.hub().register(sender, Arc::clone(&acked));
        let frame = Message::Snapshot { last_seq, payload }.encode();
        (frame, last_seq, receiver, acked, id)
    };
    let outcome = ship(
        router,
        &stream,
        &mut reader,
        &mut writer,
        &receiver,
        &acked,
        last_seq,
        snapshot_frame,
    );
    repl.hub().deregister(id);
    outcome
}

/// The shipping loop body of one follower connection: writes the
/// bootstrap frame, then drains the hub queue (heartbeating when idle)
/// while a companion thread folds in the follower's acks.
#[allow(clippy::too_many_arguments)]
fn ship(
    router: &Router,
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    receiver: &channel::Receiver<Vec<u8>>,
    acked: &Arc<AtomicU64>,
    last_seq: u64,
    snapshot_frame: Vec<u8>,
) -> Result<(), ReplError> {
    let state = router.state();
    let repl = state.repl.as_deref().expect("checked by caller");
    let journal = state.journal.as_ref().expect("checked by caller");
    let plan = repl.fault_plan();
    let plan = plan.as_deref();
    faulty_write(plan, writer, &snapshot_frame)?;

    // Ack reader: folds the follower's cumulative acks into the hub's
    // bookkeeping so quorum waits can observe them.
    let ack_thread = {
        let mut reader = BufReader::new(reader.get_ref().try_clone()?);
        let acked = Arc::clone(acked);
        let router = router.clone();
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            loop {
                match read_message(&mut reader) {
                    Ok(Message::Ack { seq }) => {
                        acked.fetch_max(seq, Ordering::AcqRel);
                        if let Some(repl) = router.state().repl.as_deref() {
                            repl.hub().notify();
                        }
                    }
                    Ok(_) => {} // followers only send acks; ignore noise
                    Err(err) if is_timeout(&err) => {
                        if flag.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(_) => break, // socket gone; writer will notice too
                }
            }
        });
        (handle, done)
    };

    let mut streamed = last_seq;
    let result = loop {
        if repl.role() != Role::Primary {
            break Ok(()); // deposed mid-stream: stop shipping
        }
        if state.storage.is_degraded() {
            // Stop heartbeating the moment the WAL refuses writes: to
            // the followers' failure detector a degraded primary is a
            // failed primary, and silence is what makes them promote.
            break Ok(());
        }
        match receiver.recv_timeout(HEARTBEAT_INTERVAL) {
            Ok(frame) => {
                if let Err(err) = faulty_write(plan, writer, &frame) {
                    break Err(ReplError::Io(err));
                }
                // Frames carry monotonically increasing records.
                streamed += 1;
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                let heartbeat = Message::Heartbeat {
                    epoch: journal.store().epoch(),
                    head_seq: journal.store().next_seq() - 1,
                }
                .encode();
                if let Err(err) = faulty_write(plan, writer, &heartbeat) {
                    break Err(ReplError::Io(err));
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => break Ok(()),
        }
    };
    let _ = streamed;
    ack_thread.1.store(true, Ordering::Release);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.0.join();
    result
}

/// Sends one pre-encoded frame through the fault plan's network seam.
/// With no plan this is a plain write+flush; with one, the frame can be
/// silently dropped, duplicated, delayed, or turned into an I/O error —
/// always deterministically for a given seed and frame count.
fn faulty_write(
    plan: Option<&FaultPlan>,
    writer: &mut BufWriter<TcpStream>,
    frame: &[u8],
) -> std::io::Result<()> {
    let Some(plan) = plan else {
        writer.write_all(frame)?;
        return writer.flush();
    };
    match plan.net_action() {
        NetAction::Deliver => {}
        NetAction::Drop => return Ok(()),
        NetAction::DeliverTwice => writer.write_all(frame)?,
        NetAction::DelayThenDeliver(by) => std::thread::sleep(by),
        NetAction::Fail => {
            return Err(std::io::Error::other(
                "injected network fault (partition window)",
            ))
        }
    }
    writer.write_all(frame)?;
    writer.flush()
}

/// A running follower puller.
#[derive(Debug)]
pub struct FollowerPuller {
    handle: Option<JoinHandle<()>>,
}

impl FollowerPuller {
    /// Waits for the puller thread to exit (call
    /// [`ReplState::stop_puller`] first; the thread polls the flag at
    /// least every [`SOCKET_TIMEOUT`]).
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Starts the follower side: a background thread that connects to the
/// primary's replication listener at `primary_addr`, bootstraps, and
/// applies the live stream, reconnecting with exponential backoff and
/// full jitter until stopped. Each reconnect pause is sliced so the
/// failure detector (when armed) keeps running even while the leader's
/// socket refuses connections outright.
#[must_use]
pub fn start_follower(primary_addr: String, router: Router) -> FollowerPuller {
    let handle = std::thread::spawn(move || {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base: RECONNECT_BASE,
            cap: RECONNECT_CAP,
        };
        let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
        let mut attempt: u32 = 0;
        {
            // Arm the silence clock: a follower that never reaches its
            // leader at all must still be able to suspect it.
            let repl = router.state().repl.as_deref().expect("repl configured");
            repl.note_leader_contact();
        }
        loop {
            {
                let repl = router.state().repl.as_deref().expect("repl configured");
                if repl.stopped() || repl.role() != Role::Follower {
                    return;
                }
            }
            let session_start = Instant::now();
            match follow_once(&primary_addr, &router) {
                Ok(()) => return, // deliberate stop
                Err(err) => {
                    let state = router.state();
                    let repl = state.repl.as_deref().expect("repl configured");
                    if repl.stopped() || repl.role() != Role::Follower {
                        return;
                    }
                    state.metrics.repl_reconnect();
                    eprintln!("[mine-repl] follower: {err}; reconnecting");
                    if session_start.elapsed() > SOCKET_TIMEOUT {
                        // The session lived long enough to have streamed:
                        // this is a fresh outage, not the same one — start
                        // the backoff ladder over.
                        attempt = 0;
                    }
                }
            }
            let delay = backoff_delay(&policy, attempt, &mut rng);
            attempt = attempt.saturating_add(1);
            // Sleep in slices so suspicion (and stop flags) are checked
            // even while the leader's address is unreachable.
            let deadline = Instant::now() + delay;
            loop {
                maybe_auto_promote(&router);
                {
                    let repl = router.state().repl.as_deref().expect("repl configured");
                    if repl.stopped() || repl.role() != Role::Follower {
                        return;
                    }
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                std::thread::sleep(remaining.min(Duration::from_millis(100)));
            }
        }
    });
    FollowerPuller {
        handle: Some(handle),
    }
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let mut last = std::io::Error::new(
        std::io::ErrorKind::InvalidInput,
        format!("no addresses resolved for {addr}"),
    );
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, SOCKET_TIMEOUT) {
            Ok(stream) => return Ok(stream),
            Err(err) => last = err,
        }
    }
    Err(last)
}

/// One full follower session: handshake, bootstrap, live stream. An
/// `Ok` return means the puller was told to stop; any error means
/// "reconnect after backoff".
fn follow_once(primary_addr: &str, router: &Router) -> Result<(), ReplError> {
    let state = router.state();
    let repl = state.repl.as_deref().expect("repl configured");
    let journal = state.journal.as_ref().expect("follower has a journal");
    let store = journal.store();

    let stream = connect(primary_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    write_message(
        &mut writer,
        &Message::Hello {
            epoch: store.epoch(),
            last_applied: store.next_seq() - 1,
        },
    )?;
    writer.flush()?;

    let leader_epoch = match read_and_poll(&mut reader, router, false)? {
        Some(Message::Welcome { epoch, advertise }) => {
            let local = store.epoch();
            if epoch < local {
                // A deposed primary is still answering its old port.
                return Err(ReplError::StaleEpoch {
                    remote: epoch,
                    local,
                });
            }
            if epoch > local {
                // Legitimate failover happened while we were away:
                // adopt the new epoch durably. This is also how a
                // deposed primary restarted with `--replica-of`
                // demotes itself.
                store.set_epoch(epoch).map_err(repl_io)?;
            }
            if !advertise.is_empty() {
                repl.set_leader_addr(advertise);
            }
            epoch
        }
        Some(Message::Reject { reason }) => return Err(ReplError::Rejected { reason }),
        Some(other) => {
            return Err(ReplError::Frame {
                reason: format!("expected Welcome, got {other:?}"),
            })
        }
        None => return Ok(()), // stopped while waiting
    };

    let Some(Message::Snapshot { last_seq, payload }) = read_and_poll(&mut reader, router, false)?
    else {
        return Err(ReplError::Frame {
            reason: "expected a bootstrap Snapshot".to_string(),
        });
    };
    let text = std::str::from_utf8(&payload).map_err(|err| ReplError::Frame {
        reason: format!("bootstrap image is not UTF-8: {err}"),
    })?;
    let image: ServerImage = serde_json::from_str(text).map_err(|err| ReplError::Frame {
        reason: format!("bootstrap image failed to decode: {err}"),
    })?;
    {
        // Install under the exclusive gate: readers see either the old
        // state or the complete bootstrap, never a half-restored mix.
        let _gate = journal.gate_write();
        journal
            .install_snapshot(&payload, last_seq)
            .map_err(repl_io)?;
        state.registry.clear();
        state.finished.clear();
        state.stream.clear();
        state.adaptive.clear();
        image
            .restore(
                &state.registry,
                &state.finished,
                &state.stream,
                &state.adaptive,
            )
            .map_err(|reason| ReplError::Frame { reason })?;
    }
    write_message(&mut writer, &Message::Ack { seq: last_seq })?;
    writer.flush()?;
    repl.set_leader_head(last_seq.max(repl.leader_head()));
    // The bootstrap replaced the whole local log with the leader's
    // authoritative image: any quarantined segments are now repaired.
    let repaired = repl.resync_complete();
    if repaired > 0 {
        for _ in 0..repaired {
            state.metrics.repair_segment();
        }
        eprintln!("[mine-repl] repaired {repaired} quarantined segment(s) via re-bootstrap");
    }

    let mut cursor = StreamCursor::new(leader_epoch, last_seq + 1);
    loop {
        let Some(message) = read_and_poll(&mut reader, router, true)? else {
            return Ok(()); // stopped
        };
        match message {
            Message::Record { seq, payload } => {
                // Promotion fencing: the instant our durable epoch moves
                // past the stream's, this stream is a deposed leader's.
                let local = store.epoch();
                if local > cursor.epoch() {
                    return Err(ReplError::StaleEpoch {
                        remote: cursor.epoch(),
                        local,
                    });
                }
                cursor.admit(seq)?;
                {
                    let _gate = journal.gate_read();
                    let local_seq = journal.append_raw(&payload).map_err(repl_io)?;
                    if local_seq != seq {
                        return Err(ReplError::Frame {
                            reason: format!(
                                "local log diverged: appended seq {local_seq}, stream said {seq}"
                            ),
                        });
                    }
                    let text = std::str::from_utf8(&payload).map_err(|err| ReplError::Frame {
                        reason: format!("record seq {seq} is not UTF-8: {err}"),
                    })?;
                    let event: SessionEvent =
                        serde_json::from_str(text).map_err(|err| ReplError::Frame {
                            reason: format!("record seq {seq} failed to decode: {err}"),
                        })?;
                    // Deterministic rejections replay identically on
                    // every replica; nothing to do with the note.
                    let _note = apply_event(
                        &state.repository,
                        &state.registry,
                        &state.finished,
                        &state.stream,
                        &state.adaptive,
                        event,
                    );
                }
                write_message(&mut writer, &Message::Ack { seq })?;
                writer.flush()?;
                repl.set_leader_head(seq.max(repl.leader_head()));
                router.maybe_compact();
            }
            Message::Heartbeat { epoch, head_seq } => {
                cursor.accept_epoch(epoch)?;
                if epoch > store.epoch() {
                    store.set_epoch(epoch).map_err(repl_io)?;
                }
                repl.set_leader_head(head_seq);
            }
            other => {
                return Err(ReplError::Frame {
                    reason: format!("unexpected message mid-stream: {other:?}"),
                })
            }
        }
    }
}

/// Reads one message, treating socket timeouts as stop-flag polls and
/// failure-detector ticks. Every received frame — snapshot, record,
/// heartbeat — counts as leader contact; every timeout lets the
/// detector decide whether the leader has been silent too long (which
/// covers the half-open case: a connection that stays up but carries
/// nothing). Returns `None` when the puller was told to stop.
///
/// When `interruptible` (the live record loop, not the handshake), a
/// pending resync request breaks the stream with an error so the
/// reconnect path re-bootstraps from the leader's snapshot.
fn read_and_poll(
    reader: &mut BufReader<TcpStream>,
    router: &Router,
    interruptible: bool,
) -> Result<Option<Message>, ReplError> {
    let state = router.state();
    let repl = state.repl.as_deref().expect("repl configured");
    loop {
        if repl.stopped() || repl.role() != Role::Follower {
            return Ok(None);
        }
        if interruptible && repl.resync_requested() {
            return Err(ReplError::Frame {
                reason: "resync requested: re-bootstrapping to repair quarantined segments"
                    .to_string(),
            });
        }
        match read_message(reader) {
            Ok(message) => {
                repl.note_leader_contact();
                return Ok(Some(message));
            }
            Err(err) if is_timeout(&err) => {
                maybe_auto_promote(router);
                continue;
            }
            Err(err) => return Err(err),
        }
    }
}

/// One failure-detector tick: when the detector is armed and the leader
/// has been silent past the jittered timeout, survey the peers and —
/// if no live primary exists and no better-positioned follower does
/// either — promote through the same epoch-fenced path as
/// `mine promote`, then ask the peers to stand down behind the new
/// epoch.
///
/// Succession is deterministic: the candidate with the highest
/// `last_applied_seq` wins, ties broken by the lexicographically
/// greatest advertised address. A peer that cannot be reached cannot
/// veto the promotion — it is assumed dead, exactly like the leader.
fn maybe_auto_promote(router: &Router) {
    let state = router.state();
    let (Some(repl), Some(journal)) = (state.repl.as_deref(), state.journal.as_ref()) else {
        return;
    };
    if repl.stopped() || repl.role() != Role::Follower {
        return;
    }
    let Some(config) = repl.failover() else {
        return;
    };
    let Some(age) = repl.leader_contact_age() else {
        return;
    };
    if age < repl.effective_failover_timeout(&config) {
        return;
    }
    if state.storage.is_degraded() {
        // A node whose own WAL refuses writes must never promote
        // itself: it could not journal a single write as leader.
        return;
    }
    state.metrics.suspicion();
    let our_seq = journal.store().next_seq() - 1;
    let our_id = repl.advertise();
    for peer in &config.peers {
        let Some(probe) = probe_peer(peer) else {
            continue; // unreachable peers cannot veto
        };
        let (role, peer_seq) = (probe.role, probe.last_applied_seq);
        if role == "primary" {
            if probe.storage_degraded {
                // A degraded primary is a failed primary to the
                // detector: it is shedding writes and not shipping, so
                // it neither counts as live leadership nor vetoes the
                // succession — promote past it.
                continue;
            }
            // A live primary exists (we were partitioned from it, or a
            // sibling already won): adopt it and re-arm the detector.
            repl.set_leader_addr(peer.clone());
            repl.note_leader_contact();
            return;
        }
        if (peer_seq, peer.as_str()) > (our_seq, our_id.as_str()) {
            // A better-positioned candidate will get there; give the
            // detector another full timeout before re-surveying.
            repl.note_leader_contact();
            return;
        }
    }
    match router.promote_follower() {
        Ok(epoch) => {
            state.metrics.failover();
            eprintln!(
                "[mine-repl] leader silent for {}ms: promoted to primary at epoch {epoch}",
                age.as_millis()
            );
            for peer in &config.peers {
                demote_peer(peer, epoch, &our_id);
            }
        }
        Err(reason) => {
            eprintln!("[mine-repl] auto-failover promotion failed: {reason}");
        }
    }
}

/// What one `/healthz` probe of a peer reported.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PeerProbe {
    role: String,
    last_applied_seq: u64,
    /// Whether the peer's WAL is refusing writes (serving degraded
    /// read-only). Absent in the body — old peers — reads as healthy.
    storage_degraded: bool,
}

/// Asks a peer's `/healthz` for its role, applied position, and storage
/// health. `None` when the peer is unreachable or answers nonsense.
fn probe_peer(addr: &str) -> Option<PeerProbe> {
    let mut client = HttpClient::with_timeout(addr, PROBE_TIMEOUT).ok()?;
    let response = client.get("/healthz").ok()?;
    let body: Value = response.json().ok()?;
    let role = body.get("role").and_then(Value::as_str)?.to_string();
    let last_applied_seq = match body.get("last_applied_seq") {
        Some(Value::Number(Number::PosInt(n))) => *n,
        _ => return None,
    };
    let storage_degraded = body
        .get("storage")
        .and_then(Value::as_str)
        .is_some_and(|storage| storage == "degraded");
    Some(PeerProbe {
        role,
        last_applied_seq,
        storage_degraded,
    })
}

/// Best-effort notification that a new epoch has a leader: tells `peer`
/// to fence itself behind `epoch` and redirect writers to `leader`.
/// Failures are fine — a dead or partitioned peer learns the same thing
/// from the `Hello`/`Welcome` epoch exchange when it comes back.
fn demote_peer(peer: &str, epoch: u64, leader: &str) {
    let Ok(mut client) = HttpClient::with_timeout(peer, PROBE_TIMEOUT) else {
        return;
    };
    let body = format!("{{\"epoch\":{epoch},\"leader\":\"{leader}\"}}");
    let _ = client.post("/admin/demote", &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_gauges_round_trip() {
        for role in [Role::Primary, Role::Follower, Role::Candidate] {
            assert_eq!(Role::from_gauge(role.gauge()), role);
        }
        assert_eq!(Role::Primary.label(), "primary");
        assert_eq!(Role::Follower.label(), "follower");
        assert_eq!(Role::Candidate.label(), "candidate");
    }

    #[test]
    fn ack_mode_parses_cli_spellings() {
        assert_eq!(AckMode::parse("leader").unwrap(), AckMode::Leader);
        assert_eq!(AckMode::parse("quorum").unwrap(), AckMode::Quorum);
        assert_eq!(AckMode::parse("ack=quorum").unwrap(), AckMode::Quorum);
        assert_eq!(AckMode::parse("ack=leader").unwrap(), AckMode::Leader);
        assert!(AckMode::parse("ack=all").is_err());
    }

    #[test]
    fn hub_tracks_registration_acks_and_quorum() {
        let hub = Hub::default();
        assert_eq!(hub.count(), 0);
        assert_eq!(hub.min_acked(), None);
        // A quorum wait with no followers returns immediately.
        assert!(!hub.wait_for_ack(5, Duration::from_secs(5)));

        let (sender, receiver) = channel::unbounded();
        let acked = Arc::new(AtomicU64::new(10));
        let id = hub.register(sender, Arc::clone(&acked));
        assert_eq!(hub.count(), 1);
        assert_eq!(hub.min_acked(), Some(10));
        assert!(hub.wait_for_ack(10, Duration::from_millis(10)));
        assert!(!hub.wait_for_ack(11, Duration::from_millis(10)));

        hub.publish(b"frame");
        assert_eq!(receiver.try_recv().unwrap(), b"frame".to_vec());

        acked.store(11, Ordering::Release);
        hub.notify();
        assert!(hub.wait_for_ack(11, Duration::from_millis(10)));

        hub.deregister(id);
        assert_eq!(hub.count(), 0);
        // A dropped receiver prunes its sender on the next publish.
        let (sender, receiver) = channel::unbounded();
        hub.register(sender, Arc::new(AtomicU64::new(0)));
        drop(receiver);
        hub.publish(b"gone");
        assert_eq!(hub.count(), 0);
    }

    #[test]
    fn repl_state_defaults_and_transitions() {
        let repl = ReplState::new(Role::Follower, AckMode::Leader);
        assert_eq!(repl.role(), Role::Follower);
        assert_eq!(repl.leader_addr(), None);
        assert!(!repl.stopped());
        repl.set_leader_addr("127.0.0.1:7400".to_string());
        assert_eq!(repl.leader_addr().as_deref(), Some("127.0.0.1:7400"));
        repl.set_role(Role::Candidate);
        assert_eq!(repl.role(), Role::Candidate);
        repl.stop_puller();
        assert!(repl.stopped());
        repl.set_leader_head(42);
        assert_eq!(repl.leader_head(), 42);
    }

    #[test]
    fn leader_contact_clock_starts_unset_and_measures_silence() {
        let repl = ReplState::new(Role::Follower, AckMode::Leader);
        assert_eq!(repl.leader_contact_age(), None);
        repl.note_leader_contact();
        let age = repl.leader_contact_age().expect("contact noted");
        assert!(age < Duration::from_secs(5), "{age:?}");
    }

    #[test]
    fn failover_config_is_stored_and_cloned_out() {
        let repl = ReplState::new(Role::Follower, AckMode::Leader);
        assert_eq!(repl.failover(), None);
        let config = FailoverConfig {
            timeout: Duration::from_millis(1_500),
            peers: vec!["127.0.0.1:7400".to_string(), "127.0.0.1:7401".to_string()],
        };
        repl.set_auto_failover(config.clone());
        assert_eq!(repl.failover(), Some(config));
    }

    #[test]
    fn effective_failover_timeout_is_jittered_deterministically_per_node() {
        let config = FailoverConfig {
            timeout: Duration::from_millis(2_000),
            peers: Vec::new(),
        };
        let node = |addr: &str| {
            let repl = ReplState::new(Role::Follower, AckMode::Leader);
            repl.set_advertise(addr.to_string());
            repl
        };
        let a1 = node("127.0.0.1:7400").effective_failover_timeout(&config);
        let a2 = node("127.0.0.1:7400").effective_failover_timeout(&config);
        // Deterministic per node id: the same address always draws the
        // same jitter, so a seeded scenario replays identically.
        assert_eq!(a1, a2);
        // Bounded: base ≤ effective ≤ base + 25%.
        assert!(a1 >= config.timeout, "{a1:?}");
        assert!(a1 <= config.timeout + Duration::from_millis(500), "{a1:?}");
        // Different nodes (usually) draw different jitter; at minimum
        // the jitter never exceeds its window for any of them.
        for port in 7400..7420 {
            let t = node(&format!("127.0.0.1:{port}")).effective_failover_timeout(&config);
            assert!(t >= config.timeout && t <= config.timeout + Duration::from_millis(500));
        }
    }

    #[test]
    fn probe_peer_returns_none_for_unreachable_or_non_json_peers() {
        // Unreachable: nothing listens on this freshly-released port.
        let released = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        assert_eq!(probe_peer(&released), None);
    }
}
