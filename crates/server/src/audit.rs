//! Offline invariant checking over journal directories (`mine audit`).
//!
//! After a chaos run — injected disk faults, killed primaries,
//! automatic failovers — this module answers the question the scenario
//! scripts need answered mechanically: *is the surviving history
//! actually coherent?* It checks three invariant families:
//!
//! 1. **Per-node integrity.** Each directory must open as a valid
//!    [`EventStore`]: CRC-clean frames, contiguous sequence numbers
//!    after the newest snapshot, a parseable durable epoch ≥
//!    [`mine_store::INITIAL_EPOCH`], and every record payload decoding
//!    as a [`SessionEvent`]. A torn *final* record is a repair, not a
//!    violation — it is the expected artifact of a crash mid-append,
//!    and an un-synced tail record was never acknowledged under quorum.
//!
//! 2. **Cross-node acked-prefix containment.** Any sequence number
//!    present on two nodes must carry byte-identical payloads. Together
//!    with per-node contiguity this is exactly the replication
//!    guarantee: one node's log is a prefix of the other's (modulo
//!    snapshot-covered prefixes), so no acknowledged write can exist in
//!    two divergent versions.
//!
//! 3. **Replay equality.** Given the item database, each node's state
//!    is rebuilt through [`open_journaled_state`] — the same code path
//!    crash recovery and replica bootstrap use — and captured as a
//!    canonical [`ServerImage`]. Nodes at the same head sequence must
//!    produce byte-identical images; a single node is replayed twice to
//!    prove replay itself is deterministic.
//!
//! The audit never mutates the directories it is pointed at: each one
//! is copied to a scratch directory first, because opening a store
//! repairs (truncates) torn tails in place.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mine_itembank::Repository;
use mine_store::{EventStore, StoreOptions, INITIAL_EPOCH};
use serde::{Serialize, Value};

use crate::journal::{open_journaled_state, ServerImage, SessionEvent};

/// What the audit found in one journal directory.
#[derive(Debug)]
pub struct NodeAudit {
    /// The directory audited (the original, not the scratch copy).
    pub dir: PathBuf,
    /// The node's durable epoch.
    pub epoch: u64,
    /// Highest sequence the newest snapshot covers (0 without one).
    pub snapshot_seq: u64,
    /// Highest sequence on the node (snapshot or tail record).
    pub head_seq: u64,
    /// Tail records recovered after the snapshot.
    pub events: usize,
    /// Repairs a recovery would perform (torn tails truncated). These
    /// are expected crash artifacts, not violations.
    pub repairs: Vec<String>,
    /// Invariant violations found on this node alone.
    pub violations: Vec<String>,
}

/// The full audit outcome across every directory.
#[derive(Debug)]
pub struct AuditReport {
    /// Per-node findings, in the order the directories were given.
    pub nodes: Vec<NodeAudit>,
    /// Violations of cross-node invariants (acked-prefix containment).
    pub cross_violations: Vec<String>,
    /// Violations of replay equality (divergent rebuilt state).
    pub replay_violations: Vec<String>,
}

impl AuditReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cross_violations.is_empty()
            && self.replay_violations.is_empty()
            && self.nodes.iter().all(|node| node.violations.is_empty())
    }

    /// Every violation message, prefixed with where it was found.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut all = Vec::new();
        for node in &self.nodes {
            for violation in &node.violations {
                all.push(format!("{}: {violation}", node.dir.display()));
            }
        }
        for violation in &self.cross_violations {
            all.push(format!("cross-node: {violation}"));
        }
        for violation in &self.replay_violations {
            all.push(format!("replay: {violation}"));
        }
        all
    }

    /// The machine-readable form of the report (`mine audit --json`):
    /// the overall verdict, per-node head positions and repairs, and
    /// every violation family.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let nodes = Value::Array(
            self.nodes
                .iter()
                .map(|node| {
                    Value::Object(vec![
                        (
                            "dir".to_string(),
                            Value::String(node.dir.display().to_string()),
                        ),
                        ("epoch".to_string(), node.epoch.to_value()),
                        ("snapshot_seq".to_string(), node.snapshot_seq.to_value()),
                        ("head_seq".to_string(), node.head_seq.to_value()),
                        ("events".to_string(), (node.events as u64).to_value()),
                        ("repairs".to_string(), string_array(&node.repairs)),
                        ("violations".to_string(), string_array(&node.violations)),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("clean".to_string(), Value::Bool(self.is_clean())),
            ("nodes".to_string(), nodes),
            (
                "cross_violations".to_string(),
                string_array(&self.cross_violations),
            ),
            (
                "replay_violations".to_string(),
                string_array(&self.replay_violations),
            ),
            ("violations".to_string(), string_array(&self.violations())),
        ])
    }

    /// Human-readable report: one block per node, then the verdict.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            out.push_str(&format!(
                "node {}: epoch {}, snapshot through {}, head {}, {} tail event(s)\n",
                node.dir.display(),
                node.epoch,
                node.snapshot_seq,
                node.head_seq,
                node.events,
            ));
            for repair in &node.repairs {
                out.push_str(&format!("  repaired: {repair}\n"));
            }
            for violation in &node.violations {
                out.push_str(&format!("  VIOLATION: {violation}\n"));
            }
        }
        for violation in &self.cross_violations {
            out.push_str(&format!("VIOLATION (cross-node): {violation}\n"));
        }
        for violation in &self.replay_violations {
            out.push_str(&format!("VIOLATION (replay): {violation}\n"));
        }
        if self.is_clean() {
            out.push_str("audit: clean\n");
        } else {
            out.push_str(&format!(
                "audit: {} violation(s)\n",
                self.violations().len()
            ));
        }
        out
    }
}

/// Renders a list of messages as a JSON string array.
fn string_array(items: &[String]) -> Value {
    Value::Array(
        items
            .iter()
            .map(|item| Value::String(item.clone()))
            .collect(),
    )
}

/// Copies the regular files of a flat journal directory into `scratch`
/// so the audit can open (and thereby repair) a throwaway copy.
fn copy_dir(from: &Path, scratch: &Path) -> Result<(), String> {
    std::fs::create_dir_all(scratch)
        .map_err(|err| format!("creating scratch {}: {err}", scratch.display()))?;
    let entries =
        std::fs::read_dir(from).map_err(|err| format!("reading {}: {err}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|err| format!("reading {}: {err}", from.display()))?;
        let path = entry.path();
        if path.is_file() {
            let to = scratch.join(entry.file_name());
            std::fs::copy(&path, &to)
                .map_err(|err| format!("copying {}: {err}", path.display()))?;
        }
    }
    Ok(())
}

/// The per-record payloads of one node, keyed by sequence number,
/// gathered for the cross-node comparison.
struct NodeRecords {
    snapshot_seq: u64,
    head_seq: u64,
    payloads: BTreeMap<u64, Vec<u8>>,
}

/// Audits one copied directory, returning the findings plus the record
/// map the cross-node pass needs (`None` when the history would not
/// even open).
fn audit_node(original: &Path, scratch: &Path) -> (NodeAudit, Option<NodeRecords>) {
    let mut node = NodeAudit {
        dir: original.to_path_buf(),
        epoch: 0,
        snapshot_seq: 0,
        head_seq: 0,
        events: 0,
        repairs: Vec::new(),
        violations: Vec::new(),
    };
    let (store, recovered) = match EventStore::open(scratch, StoreOptions::default()) {
        Ok(opened) => opened,
        Err(err) => {
            node.violations
                .push(format!("history failed to open: {err}"));
            return (node, None);
        }
    };
    node.repairs = recovered.warnings.clone();
    node.epoch = store.epoch();
    if node.epoch < INITIAL_EPOCH {
        node.violations.push(format!(
            "epoch {} is below the initial epoch {INITIAL_EPOCH}",
            node.epoch
        ));
    }
    node.snapshot_seq = recovered.snapshot.as_ref().map_or(0, |s| s.last_seq);
    node.head_seq = store.next_seq() - 1;
    node.events = recovered.events.len();
    if let Some(snapshot) = &recovered.snapshot {
        if let Err(err) = decode_image(&snapshot.payload) {
            node.violations
                .push(format!("snapshot through {}: {err}", snapshot.last_seq));
        }
    }
    let mut payloads = BTreeMap::new();
    for record in &recovered.events {
        if let Err(err) = decode_event(&record.payload) {
            node.violations
                .push(format!("record seq {}: {err}", record.seq));
        }
        payloads.insert(record.seq, record.payload.clone());
    }
    let records = NodeRecords {
        snapshot_seq: node.snapshot_seq,
        head_seq: node.head_seq,
        payloads,
    };
    (node, Some(records))
}

fn decode_event(payload: &[u8]) -> Result<SessionEvent, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|err| format!("payload failed to decode: {err}"))
}

fn decode_image(payload: &[u8]) -> Result<ServerImage, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|err| format!("payload failed to decode: {err}"))
}

/// Checks acked-prefix containment between every node pair: over the
/// range both nodes hold as tail records, payloads must be
/// byte-identical. (Per-node contiguity is already enforced by
/// [`EventStore::open`], so overlap equality makes the shorter log a
/// literal prefix of the longer.)
fn cross_check(nodes: &[(usize, &Path, NodeRecords)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (i, (_, dir_a, a)) in nodes.iter().enumerate() {
        for (_, dir_b, b) in nodes.iter().skip(i + 1) {
            let lo = (a.snapshot_seq + 1).max(b.snapshot_seq + 1);
            let hi = a.head_seq.min(b.head_seq);
            for seq in lo..=hi {
                match (a.payloads.get(&seq), b.payloads.get(&seq)) {
                    (Some(pa), Some(pb)) if pa != pb => violations.push(format!(
                        "seq {seq} diverges between {} and {}",
                        dir_a.display(),
                        dir_b.display()
                    )),
                    (Some(_), Some(_)) => {}
                    // One side holds the seq only inside its snapshot:
                    // nothing record-wise to compare.
                    _ => {}
                }
            }
        }
    }
    violations
}

/// Rebuilds one node's state from its (scratch) journal and captures
/// the canonical image JSON.
fn replay_image(repository: Repository, scratch: &Path) -> Result<String, String> {
    let (state, _report) =
        open_journaled_state(repository, scratch, StoreOptions::default(), u64::MAX)?;
    let image = ServerImage::capture(&state.registry, &state.finished, &state.adaptive);
    serde_json::to_string(&image).map_err(|err| format!("image failed to serialize: {err}"))
}

/// Audits `dirs` against the three invariant families (see the module
/// docs). `repository` supplies a fresh item database per replay; pass
/// `None` to skip the replay-equality pass (the CLI's `--db` flag).
///
/// # Errors
///
/// Returns a message only for *audit-infrastructure* failures (scratch
/// copies, repository loading); invariant breaches are reported inside
/// the returned [`AuditReport`], never as an `Err`.
pub fn audit_dirs(
    dirs: &[PathBuf],
    repository: Option<&dyn Fn() -> Result<Repository, String>>,
) -> Result<AuditReport, String> {
    if dirs.is_empty() {
        return Err("audit needs at least one directory".to_string());
    }
    let scratch_base = std::env::temp_dir().join(format!("mine-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch_base);
    let result = audit_dirs_in(dirs, repository, &scratch_base);
    let _ = std::fs::remove_dir_all(&scratch_base);
    result
}

fn audit_dirs_in(
    dirs: &[PathBuf],
    repository: Option<&dyn Fn() -> Result<Repository, String>>,
    scratch_base: &Path,
) -> Result<AuditReport, String> {
    let mut nodes = Vec::new();
    let mut records = Vec::new();
    let mut scratches = Vec::new();
    for (index, dir) in dirs.iter().enumerate() {
        let scratch = scratch_base.join(format!("node-{index}"));
        copy_dir(dir, &scratch)?;
        let (node, node_records) = audit_node(dir, &scratch);
        if let Some(node_records) = node_records {
            records.push((index, dir.as_path(), node_records));
        }
        nodes.push(node);
        scratches.push(scratch);
    }
    let cross_violations = cross_check(&records);

    let mut replay_violations = Vec::new();
    if let Some(repository) = repository {
        // Replay every openable node; nodes at the same head must agree
        // byte-for-byte. A lone node is replayed twice so determinism
        // of replay itself is still exercised.
        let mut by_head: BTreeMap<u64, Vec<(usize, String)>> = BTreeMap::new();
        for (index, _, node_records) in &records {
            match replay_image(repository()?, &scratches[*index]) {
                Ok(image) => by_head
                    .entry(node_records.head_seq)
                    .or_default()
                    .push((*index, image)),
                Err(err) => replay_violations.push(format!(
                    "{} failed to replay: {err}",
                    dirs[*index].display()
                )),
            }
        }
        for (head, images) in &by_head {
            if images.len() == 1 {
                let (index, first) = &images[0];
                match replay_image(repository()?, &scratches[*index]) {
                    Ok(second) if &second == first => {}
                    Ok(_) => replay_violations.push(format!(
                        "{} replays non-deterministically at head {head}",
                        dirs[*index].display()
                    )),
                    Err(err) => replay_violations.push(format!(
                        "{} failed second replay: {err}",
                        dirs[*index].display()
                    )),
                }
                continue;
            }
            let (first_index, first) = &images[0];
            for (index, image) in &images[1..] {
                if image != first {
                    replay_violations.push(format!(
                        "state diverges at head {head}: {} and {} rebuild different images",
                        dirs[*first_index].display(),
                        dirs[*index].display()
                    ));
                }
            }
        }
    }

    Ok(AuditReport {
        nodes,
        cross_violations,
        replay_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use mine_itembank::{Exam, Problem};
    use std::io::Write;

    fn repository() -> Repository {
        let repo = Repository::new();
        repo.insert_problem(Problem::true_false("q1", "1 + 1 = 2", true).unwrap())
            .unwrap();
        repo.insert_exam(
            Exam::builder("quiz")
                .unwrap()
                .entry("q1".parse().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        repo
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mine-audit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn journal_events(dir: &Path, payloads: &[&str]) {
        let (journal, _) = Journal::open(dir, StoreOptions::default(), u64::MAX).unwrap();
        for payload in payloads {
            journal.append_raw(payload.as_bytes()).unwrap();
        }
        journal.sync().unwrap();
    }

    /// A real, replayable `Created` payload (hand-written JSON would
    /// guess at the serde enum encoding).
    fn created_event(student: &str, seed: u64) -> String {
        serde_json::to_string(&SessionEvent::Created {
            exam: "quiz".parse().unwrap(),
            student: student.parse().unwrap(),
            options: mine_delivery::DeliveryOptions {
                seed,
                resumable: true,
                time_accommodation: 1.0,
            },
        })
        .unwrap()
    }

    #[test]
    fn clean_identical_nodes_audit_clean() {
        let a = temp_dir("clean-a");
        let b = temp_dir("clean-b");
        journal_events(&a, &[&created_event("s1", 7), &created_event("s2", 8)]);
        journal_events(&b, &[&created_event("s1", 7), &created_event("s2", 8)]);
        let repo: &dyn Fn() -> Result<Repository, String> = &|| Ok(repository());
        let report = audit_dirs(&[a.clone(), b.clone()], Some(repo)).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.nodes[0].head_seq, 2);
        assert!(report.render().contains("audit: clean"));
        let value = report.to_value();
        assert_eq!(value.get("clean"), Some(&Value::Bool(true)));
        assert_eq!(
            value.get("nodes").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
        let first = &value.get("nodes").and_then(Value::as_array).unwrap()[0];
        assert_eq!(first.get("head_seq"), Some(&2u64.to_value()));
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn a_lagging_prefix_is_contained_but_divergence_is_not() {
        // b holds a strict prefix of a: clean.
        let a = temp_dir("prefix-a");
        let b = temp_dir("prefix-b");
        journal_events(&a, &[&created_event("s1", 7), &created_event("s2", 8)]);
        journal_events(&b, &[&created_event("s1", 7)]);
        let report = audit_dirs(&[a.clone(), b.clone()], None).unwrap();
        assert!(report.is_clean(), "{}", report.render());

        // c diverges from a at seq 1: a violation naming the seq.
        let c = temp_dir("prefix-c");
        journal_events(&c, &[&created_event("s2", 8)]);
        let report = audit_dirs(&[a.clone(), c.clone()], None).unwrap();
        assert!(!report.is_clean());
        assert!(
            report.cross_violations[0].contains("seq 1 diverges"),
            "{:?}",
            report.cross_violations
        );
        for dir in [a, b, c] {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_tails_are_repairs_and_the_original_is_untouched() {
        let dir = temp_dir("torn");
        journal_events(&dir, &[&created_event("s1", 7)]);
        // Tear the tail: append half a frame to the newest segment.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|ext| ext == "log"))
            .unwrap();
        let before = std::fs::metadata(&segment).unwrap().len();
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&segment)
            .unwrap();
        file.write_all(&[0x55; 7]).unwrap();
        drop(file);

        let report = audit_dirs(std::slice::from_ref(&dir), None).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.nodes[0].repairs.len(), 1, "{}", report.render());
        // The audit repaired its scratch copy, not the original.
        assert_eq!(std::fs::metadata(&segment).unwrap().len(), before + 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_payloads_and_corrupt_epochs_are_violations() {
        let dir = temp_dir("garbage");
        journal_events(&dir, &["this is not a session event"]);
        std::fs::write(dir.join("epoch"), "0").unwrap();
        let report = audit_dirs(std::slice::from_ref(&dir), None).unwrap();
        assert!(!report.is_clean());
        let rendered = report.render();
        assert!(rendered.contains("record seq 1"), "{rendered}");
        assert!(rendered.contains("below the initial epoch"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_equality_detects_matching_and_single_node_determinism() {
        let dir = temp_dir("replay");
        journal_events(&dir, &[&created_event("s1", 7)]);
        let repo: &dyn Fn() -> Result<Repository, String> = &|| Ok(repository());
        let report = audit_dirs(std::slice::from_ref(&dir), Some(repo)).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
