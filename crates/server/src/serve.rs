//! The TCP face of the service: a loopback `std::net::TcpListener`, an
//! acceptor thread, and a fixed pool of worker threads.
//!
//! No async runtime is available in the sanctioned dependency set, so
//! concurrency is plain threads: the acceptor pushes accepted
//! connections into a crossbeam channel and each worker drains it,
//! serving one keep-alive connection at a time.
//!
//! The acceptor is also the admission-control edge (see
//! [`crate::overload`]): connections past the configured queue depth,
//! or past a peer's token bucket, are turned away immediately with
//! `503 + Retry-After` — before any request byte is read, so nothing is
//! ever shed mid-session. Admitted connections run under deadlines: an
//! idle timeout between requests, a header+body read budget per request
//! (which defeats slow-loris and byte-dribbling clients), and a write
//! timeout, so no client can pin a worker forever.

use std::io::{BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::drain::{pause_and_snapshot, DrainReport, DrainState};
use crate::http::{parse_request_with, ParseLimits, Response};
use crate::overload::{self, OverloadOptions, PeerLimiter};
use crate::router::Router;

/// How the server is run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7400` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; `0` auto-detects from the CPU count.
    pub threads: usize,
    /// Idle timeout between requests on a keep-alive connection.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one full request (head + body),
    /// armed at its first byte. A client dribbling bytes slower than
    /// this is answered `408` and disconnected.
    pub request_budget: Duration,
    /// Size caps on the request head and body.
    pub limits: ParseLimits,
    /// Admission control: accept-queue depth, per-peer rate limit, shed
    /// `Retry-After`.
    pub overload: OverloadOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_budget: Duration::from_secs(10),
            limits: ParseLimits::default(),
            overload: OverloadOptions::default(),
        }
    }
}

/// Per-connection knobs, copied out of [`ServeOptions`] for the
/// workers.
#[derive(Debug, Clone, Copy)]
struct ConnOptions {
    idle_timeout: Duration,
    write_timeout: Duration,
    request_budget: Duration,
    limits: ParseLimits,
}

/// A running server: worker pool + acceptor, stoppable from any thread.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    router: Router,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads, returning
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the address cannot be bound.
    pub fn start(router: Router, options: &ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = if options.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get().max(4))
        } else {
            options.threads
        };
        let conn_options = ConnOptions {
            idle_timeout: options.read_timeout,
            write_timeout: options.write_timeout,
            request_budget: options.request_budget,
            limits: options.limits,
        };

        let (sender, receiver) = channel::unbounded::<TcpStream>();
        let workers = (0..threads)
            .map(|_| {
                let receiver = receiver.clone();
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match receiver.recv_timeout(Duration::from_millis(50)) {
                            Ok(stream) => {
                                router.state().metrics.queue_exit();
                                serve_connection(&router, stream, &conn_options);
                            }
                            Err(_) => continue,
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let router = router.clone();
            // The queue bound and the rate limiter live in the single
            // acceptor thread: one clock reading per accept drives every
            // bucket, and single-producer depth accounting cannot
            // overshoot the cap.
            let mut limiter = options.overload.rate_limit.map(PeerLimiter::new);
            let queue_cap = options.overload.queue_depth.max(1) as u64;
            let shed_secs = options.overload.shed_retry_after_secs.max(1);
            let write_timeout = options.write_timeout;
            let epoch = Instant::now();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let metrics = &router.state().metrics;
                    if let Some(limiter) = limiter.as_mut() {
                        let now = u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
                        if let Ok(peer) = stream.peer_addr() {
                            if let Err(wait) = limiter.admit(peer.ip(), now) {
                                let secs = overload::retry_after_secs(wait);
                                metrics.rate_limited(secs);
                                shed_connection(stream, "rate limited", secs, write_timeout);
                                continue;
                            }
                        }
                    }
                    if metrics.queue_depth() >= queue_cap {
                        metrics.shed(shed_secs);
                        shed_connection(stream, "over capacity", shed_secs, write_timeout);
                        continue;
                    }
                    metrics.queue_enter();
                    // A send only fails when every worker has gone,
                    // which only happens at shutdown.
                    if sender.send(stream).is_err() {
                        metrics.queue_exit();
                        break;
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            shutdown,
            router,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router this server serves (state access for drain and
    /// tests).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Flips the service into drain mode: `/healthz` answers
    /// `503 {"status":"draining"}`, every other route is shed with
    /// `503 + Retry-After`, in-flight requests run to completion, and
    /// workers close keep-alive connections after their current
    /// exchange. The listener keeps accepting so load balancers can
    /// still observe `/healthz` and `/metrics`.
    ///
    /// Idempotent; called from a signal handler's watcher thread or a
    /// test.
    pub fn begin_drain(&self) {
        let state = self.router.state();
        state.lifecycle.begin_drain();
        state
            .metrics
            .set_drain_state(DrainState::Draining.as_gauge());
    }

    /// Drains and stops the server: begins drain, waits up to
    /// `deadline` for in-flight requests and queued connections to
    /// finish, pauses every still-active session through the journaled
    /// `Paused` event, writes a final snapshot, and joins every thread.
    ///
    /// `drained_cleanly` in the report says whether the deadline was
    /// met; the pause + snapshot are consistent either way (they run
    /// under the journal's exclusive write gate — see [`crate::drain`]).
    #[must_use]
    pub fn drain(self, deadline: Duration) -> DrainReport {
        self.begin_drain();
        let state = self.router.state();
        let started = Instant::now();
        let drained_cleanly = loop {
            if state.metrics.inflight() == 0 && state.metrics.queue_depth() == 0 {
                break true;
            }
            if started.elapsed() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let mut report = pause_and_snapshot(state);
        report.drained_cleanly = drained_cleanly;
        state.lifecycle.mark_stopped();
        state
            .metrics
            .set_drain_state(DrainState::Stopped.as_gauge());
        self.shutdown();
        report
    }

    /// Signals shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the acceptor exits (i.e. until shutdown or a fatal
    /// listener error). Used by `mine serve`.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Answers a connection the acceptor refused to admit: `503 +
/// Retry-After`, then close. No request byte is read, upholding the
/// shed-at-the-edge invariant.
fn shed_connection(
    stream: TcpStream,
    reason: &str,
    retry_after_secs: u64,
    write_timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = Response::shed(reason, retry_after_secs).write_to(&stream, false);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A [`Read`] over a [`TcpStream`] that enforces the per-request read
/// budget: the deadline arms at the first byte of a request and every
/// subsequent socket read gets `min(remaining budget, idle timeout)` as
/// its timeout, so a byte-dribbling client is cut off deterministically
/// instead of resetting the idle timer with each byte.
#[derive(Debug)]
struct BudgetReader {
    stream: TcpStream,
    idle_timeout: Duration,
    budget: Duration,
    /// Armed at the first byte of the request being read; `None` while
    /// idle between requests.
    deadline: Option<Instant>,
}

impl BudgetReader {
    fn new(stream: TcpStream, idle_timeout: Duration, budget: Duration) -> Self {
        let _ = stream.set_read_timeout(Some(idle_timeout));
        Self {
            stream,
            idle_timeout,
            budget,
            deadline: None,
        }
    }

    /// Resets for the next request on the keep-alive connection: fresh
    /// budget, idle timeout back on the socket.
    fn rearm(&mut self) {
        if self.deadline.take().is_some() {
            let _ = self.stream.set_read_timeout(Some(self.idle_timeout));
        }
    }
}

impl Read for BudgetReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::ErrorKind::TimedOut.into());
            }
            let _ = self
                .stream
                .set_read_timeout(Some(remaining.min(self.idle_timeout)));
        }
        let n = self.stream.read(buf)?;
        if self.deadline.is_none() && n > 0 {
            self.deadline = Some(Instant::now() + self.budget);
        }
        Ok(n)
    }
}

/// Serves one keep-alive connection until close, error, or timeout.
fn serve_connection(router: &Router, stream: TcpStream, options: &ConnOptions) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(BudgetReader::new(
        stream,
        options.idle_timeout,
        options.request_budget,
    ));
    let mut writer = BufWriter::new(write_half);
    let state = router.state();
    loop {
        reader.get_mut().rearm();
        match parse_request_with(&mut reader, &options.limits) {
            Ok(Some(request)) => {
                // Draining closes the connection after this exchange so
                // the worker frees up; the in-flight request itself
                // always completes.
                let keep_alive = !request.wants_close() && !state.lifecycle.is_draining();
                state.metrics.inflight_enter();
                let response = router.handle(&request);
                let written = response.write_to(&mut writer, keep_alive);
                state.metrics.inflight_exit();
                if written.is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(parse_error) => {
                // 400/408/413 are answered properly before closing —
                // never a silent drop.
                let body = format!("{{\"error\":{:?}}}", parse_error.message);
                let _ = Response::json(parse_error.status, body).write_to(&mut writer, false);
                return;
            }
        }
    }
}
