//! The TCP face of the service: a loopback `std::net::TcpListener`, an
//! acceptor thread, and a fixed pool of worker threads.
//!
//! No async runtime is available in the sanctioned dependency set, so
//! concurrency is plain threads: the acceptor pushes accepted
//! connections into a crossbeam channel and each worker drains it,
//! serving one keep-alive connection at a time. Connections carry a
//! read timeout so an idle client cannot pin a worker forever.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;

use crate::http::{parse_request, Response};
use crate::router::Router;

/// How the server is run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7400` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; `0` auto-detects from the CPU count.
    pub threads: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server: worker pool + acceptor, stoppable from any thread.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads, returning
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the address cannot be bound.
    pub fn start(router: Router, options: &ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = if options.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get().max(4))
        } else {
            options.threads
        };

        let (sender, receiver) = channel::unbounded::<TcpStream>();
        let workers = (0..threads)
            .map(|_| {
                let receiver = receiver.clone();
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = options.read_timeout;
                std::thread::spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match receiver.recv_timeout(Duration::from_millis(50)) {
                            Ok(stream) => serve_connection(&router, stream, read_timeout),
                            Err(_) => continue,
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A send only fails when every worker has gone,
                        // which only happens at shutdown.
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the acceptor exits (i.e. until shutdown or a fatal
    /// listener error). Used by `mine serve`.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves one keep-alive connection until close, error, or timeout.
fn serve_connection(router: &Router, stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match parse_request(&mut reader) {
            Ok(Some(request)) => {
                let keep_alive = !request.wants_close();
                let response = router.handle(&request);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(parse_error) => {
                let body = format!("{{\"error\":{:?}}}", parse_error.message);
                let _ = Response::json(parse_error.status, body).write_to(&mut writer, false);
                return;
            }
        }
    }
}
