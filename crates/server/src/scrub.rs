//! Online anti-entropy: the background scrubber and the peer repair
//! path.
//!
//! Every [`Scrubber`] pass re-verifies the CRCs and framing of the
//! sealed WAL segments and the latest snapshot
//! ([`mine_store::scrub_dir`]), publishes the per-window range hashes
//! into the node's in-memory [`IntegrityTable`], and acts on what it
//! finds:
//!
//! - **Local rot** (a sealed segment whose CRCs or sequence run no
//!   longer verify): the segment is quarantined — renamed to
//!   `*.log.quarantine`, never deleted, so the evidence survives — and
//!   repaired. A follower repairs by re-bootstrapping from its leader's
//!   snapshot (the existing shipping path; the install wipes `wal-*.log`
//!   but not quarantine files). A primary repairs from its own live
//!   in-memory state by writing a fresh compacting snapshot — the state
//!   every acked write already reached.
//! - **Silent divergence** (every CRC intact, but a follower's range
//!   hashes disagree with its leader's inside the acked prefix): the
//!   overlapping segments are quarantined and the same re-bootstrap
//!   repair runs. The comparison is epoch-fenced — a leader whose
//!   `/admin/ranges` carries an older epoch is a deposed primary, and
//!   its hashes are ignored so repair can never resurrect a divergent
//!   suffix.
//!
//! The scrubber is also the **injection seam** for scheduled bit rot
//! (`MINE_FAULT_PLAN=disk.bitrot@SEQ:BYTES`): scheduled flips are
//! struck before the scan, modelling damage that happened at rest.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Number, Value};

use mine_store::{
    diverging_windows, inject_bitrot, scrub_dir, RangeHash, ScrubReport, RANGE_WINDOW,
};

use crate::client::HttpClient;
use crate::journal::{Journal, ServerImage};
use crate::repl::Role;
use crate::router::Router;

/// Default pass cadence for `mine serve` (override with
/// `--scrub-interval <ms>`; `0` disables the scrubber).
pub const DEFAULT_SCRUB_INTERVAL: Duration = Duration::from_secs(5);

/// I/O timeout for one `/admin/ranges` fetch from the leader.
const RANGES_TIMEOUT: Duration = Duration::from_millis(500);

/// The most recent scrub pass's findings, shared so `/healthz`
/// consumers, tests, and the repair path read one consistent view.
#[derive(Debug, Default)]
pub struct IntegrityTable {
    latest: parking_lot::Mutex<Option<ScrubReport>>,
}

impl IntegrityTable {
    /// Publishes a completed pass.
    pub fn publish(&self, report: ScrubReport) {
        *self.latest.lock() = Some(report);
    }

    /// The most recent pass, if one has completed.
    #[must_use]
    pub fn latest(&self) -> Option<ScrubReport> {
        self.latest.lock().clone()
    }
}

/// A running background scrubber.
#[derive(Debug)]
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Starts a scrub pass every `interval` in a background thread.
    /// The interval is the pass *cadence*, which doubles as the IO
    /// budget: one directory scan per interval, nothing in between.
    #[must_use]
    pub fn start(router: Router, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                // Sleep in slices so shutdown is prompt even with a
                // long cadence.
                let deadline = Instant::now() + interval;
                loop {
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    std::thread::sleep(remaining.min(Duration::from_millis(50)));
                }
                scrub_pass(&router);
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the scrubber and joins its thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One full scrub pass over the node's journal directory. Public so
/// tests (and `mine scrub` through the offline path) can drive a pass
/// synchronously instead of waiting out the cadence.
pub fn scrub_pass(router: &Router) {
    let state = router.state();
    let Some(journal) = &state.journal else {
        return; // memory-only node: nothing durable to scrub
    };
    let store = journal.store();

    // Injection seam: strike any scheduled bit rot before scanning, so
    // the very pass that "caused" the damage is the one that must
    // detect it.
    if let Some(plan) = store.fault_plan() {
        let _gate = journal.gate_read();
        match inject_bitrot(store.dir(), Some(&store.active_segment()), &plan) {
            Ok(struck) if !struck.is_empty() => {
                eprintln!("[mine-scrub] injected bit rot into records {struck:?}");
            }
            Ok(_) => {}
            Err(err) => eprintln!("[mine-scrub] bit-rot injection failed: {err}"),
        }
    }

    let report = {
        // The read gate admits handlers but excludes the compactor, so
        // segments cannot vanish mid-scan; the active segment is
        // excluded from verification by construction.
        let _gate = journal.gate_read();
        match scrub_dir(store.dir(), Some(&store.active_segment())) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("[mine-scrub] pass failed: {err}");
                return;
            }
        }
    };
    state.metrics.scrub_pass();

    let corrupt: Vec<u64> = report
        .corrupt_segments()
        .iter()
        .map(|segment| segment.first_seq)
        .collect();
    for segment in report.corrupt_segments() {
        eprintln!(
            "[mine-scrub] corrupt sealed segment {}: {}",
            segment.file,
            segment.corrupt.as_deref().unwrap_or("unknown damage")
        );
    }
    if let Some(snapshot) = &report.snapshot {
        if let Some(reason) = &snapshot.corrupt {
            eprintln!(
                "[mine-scrub] snapshot {} failed verification: {reason}",
                snapshot.file
            );
        }
    }

    // Silent divergence: a follower compares its range hashes against
    // its leader's, bounded to the acked prefix and epoch-fenced.
    let mut divergent: Vec<u64> = Vec::new();
    if let Some(repl) = &state.repl {
        if repl.role() == Role::Follower && !report.ranges.is_empty() {
            if let Some(leader) = repl.leader_addr() {
                if let Some(remote) = fetch_ranges(&leader) {
                    let local_epoch = store.epoch();
                    if remote.epoch < local_epoch {
                        // A deposed primary is still answering: its
                        // hashes describe a fenced-off history and must
                        // never drive a repair.
                        eprintln!(
                            "[mine-scrub] ignoring ranges from {leader}: epoch {} behind local {}",
                            remote.epoch, local_epoch
                        );
                    } else {
                        let acked = (store.next_seq() - 1).min(remote.head_seq);
                        let windows = diverging_windows(&report.ranges, &remote.ranges, acked);
                        if !windows.is_empty() {
                            divergent = segments_for_windows(&report, &windows);
                            eprintln!(
                                "[mine-scrub] range hashes diverge from {leader} in windows \
                                 {windows:?} (acked prefix {acked})"
                            );
                        }
                    }
                }
            }
        }
    }

    let mut damaged: BTreeSet<u64> = corrupt.into_iter().collect();
    damaged.extend(divergent);
    if !damaged.is_empty() {
        state.metrics.scrub_corruption(damaged.len() as u64);
        let mut quarantined: u64 = 0;
        {
            let _gate = journal.gate_read();
            for first_seq in &damaged {
                match store.quarantine_segment(*first_seq) {
                    Ok(path) => {
                        quarantined += 1;
                        eprintln!("[mine-scrub] quarantined {}", path.display());
                    }
                    Err(err) => {
                        eprintln!("[mine-scrub] quarantine of segment {first_seq} failed: {err}");
                    }
                }
            }
        }
        if quarantined > 0 {
            repair(router, journal, quarantined);
        }
    }

    state.integrity.publish(report);
}

/// Repairs `quarantined` segments: a follower asks its puller to break
/// the live stream and re-bootstrap from the leader's snapshot (the
/// install replaces every `wal-*.log`, leaving the quarantine files as
/// evidence); a primary re-seals its history from its own live state —
/// the state every acked write already reached — by writing a fresh
/// compacting snapshot.
fn repair(router: &Router, journal: &Journal, quarantined: u64) {
    let state = router.state();
    if let Some(repl) = &state.repl {
        if repl.role() == Role::Follower {
            repl.request_resync(quarantined);
            eprintln!("[mine-scrub] requested re-bootstrap from the leader to repair");
            return;
        }
    }
    // Primary (or standalone): self-repair by compaction.
    let _gate = journal.gate_write();
    let image = ServerImage::capture(&state.registry, &state.finished, &state.adaptive);
    match journal.write_snapshot(&image) {
        Ok(()) => {
            for _ in 0..quarantined {
                state.metrics.repair_segment();
            }
            eprintln!(
                "[mine-scrub] re-sealed history from live state ({quarantined} segment(s) repaired)"
            );
        }
        Err(err) => {
            // The log is short a quarantined segment; recovery now leans
            // on the previous snapshot. Keep trying each pass.
            eprintln!("[mine-scrub] self-repair snapshot failed: {err}");
        }
    }
}

/// What a peer's `/admin/ranges` reported.
#[derive(Debug)]
struct RemoteRanges {
    epoch: u64,
    head_seq: u64,
    ranges: Vec<RangeHash>,
}

/// Fetches and decodes a peer's integrity table. `None` when the peer
/// is unreachable or answers nonsense (both mean "skip this pass").
fn fetch_ranges(addr: &str) -> Option<RemoteRanges> {
    let mut client = HttpClient::with_timeout(addr, RANGES_TIMEOUT).ok()?;
    let response = client.get("/admin/ranges").ok()?;
    let body: Value = response.json().ok()?;
    let epoch = as_u64(body.get("epoch")?)?;
    let head_seq = as_u64(body.get("head_seq")?)?;
    let Value::Array(entries) = body.get("ranges")? else {
        return None;
    };
    let mut ranges = Vec::with_capacity(entries.len());
    for entry in entries {
        ranges.push(RangeHash {
            first_seq: as_u64(entry.get("first_seq")?)?,
            last_seq: as_u64(entry.get("last_seq")?)?,
            count: as_u64(entry.get("count")?)?,
            hash: as_u64(entry.get("hash")?)?,
        });
    }
    Some(RemoteRanges {
        epoch,
        head_seq,
        ranges,
    })
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Number(Number::PosInt(n)) => Some(*n),
        _ => None,
    }
}

/// Maps diverging window indices back to the sealed segments whose
/// records fall inside them (a window can span segments and vice
/// versa). Returns the segments' first sequence numbers.
fn segments_for_windows(report: &ScrubReport, windows: &[u64]) -> Vec<u64> {
    let mut hits = BTreeSet::new();
    for window in windows {
        let window_first = window * RANGE_WINDOW + 1;
        let window_last = (window + 1) * RANGE_WINDOW;
        for segment in &report.segments {
            if segment.records == 0 {
                continue;
            }
            let last = segment.first_seq + segment.records - 1;
            if segment.first_seq <= window_last && last >= window_first {
                hits.insert(segment.first_seq);
            }
        }
    }
    hits.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_table_publishes_latest_pass() {
        let table = IntegrityTable::default();
        assert!(table.latest().is_none());
        table.publish(ScrubReport::default());
        assert!(table.latest().is_some());
    }

    #[test]
    fn windows_map_back_to_overlapping_segments() {
        let segment = |first_seq: u64, records: u64| mine_store::SegmentReport {
            file: format!("wal-{first_seq:020}.log"),
            first_seq,
            records,
            bytes: 0,
            corrupt: None,
        };
        let report = ScrubReport {
            // Window 0 covers seqs 1..=1024; window 1 covers 1025..=2048.
            segments: vec![segment(1, 1000), segment(1001, 500), segment(1501, 1000)],
            ranges: Vec::new(),
            snapshot: None,
        };
        // Window 0 overlaps the first two segments.
        assert_eq!(segments_for_windows(&report, &[0]), vec![1, 1001]);
        // Window 1 overlaps the last two.
        assert_eq!(segments_for_windows(&report, &[1]), vec![1001, 1501]);
        // Both windows: all three, deduplicated.
        assert_eq!(segments_for_windows(&report, &[0, 1]), vec![1, 1001, 1501]);
    }

    #[test]
    fn as_u64_rejects_non_numbers() {
        assert_eq!(as_u64(&Value::String("7".to_string())), None);
        assert_eq!(as_u64(&Value::Number(Number::PosInt(7))), Some(7));
    }
}
