//! Admission control for the delivery service: the bounded accept
//! queue's arithmetic and per-peer token-bucket rate limiting.
//!
//! Overload policy in one sentence: **shed at the edge, never
//! mid-session** — a connection is either turned away at accept time
//! with a deterministic `503 + Retry-After` (before any request byte is
//! read, so nothing the learner did is half-applied), or it is admitted
//! and its requests run to completion under the usual WAL-first
//! journaling.
//!
//! The token bucket is pure arithmetic over an injected clock (a
//! monotonic microsecond counter), so refill behaviour is unit-testable
//! without wall time and the acceptor can drive every bucket from one
//! `Instant` read per accept.

use std::collections::HashMap;
use std::net::IpAddr;

/// One million micro-tokens per token: refill math stays in integers.
const MICRO: u64 = 1_000_000;

/// Per-peer token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admissions per second per peer IP.
    pub per_second: u64,
    /// Burst size: how many admissions a quiet peer can make at once.
    pub burst: u64,
}

impl RateLimit {
    /// A limit of `per_second` with a burst of the same size (minimum 1
    /// each).
    #[must_use]
    pub fn per_second(per_second: u64) -> Self {
        Self {
            per_second: per_second.max(1),
            burst: per_second.max(1),
        }
    }

    /// Parses `RPS` or `RPS:BURST` (both positive integers).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed part.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (rps, burst) = match text.split_once(':') {
            Some((rps, burst)) => (rps, Some(burst)),
            None => (text, None),
        };
        let per_second: u64 = rps
            .parse()
            .map_err(|_| format!("rate limit needs a positive integer RPS, got {rps:?}"))?;
        if per_second == 0 {
            return Err("rate limit RPS must be at least 1".to_string());
        }
        let burst = match burst {
            None => per_second,
            Some(burst) => {
                let burst: u64 = burst
                    .parse()
                    .map_err(|_| format!("rate limit burst must be an integer, got {burst:?}"))?;
                if burst == 0 {
                    return Err("rate limit burst must be at least 1".to_string());
                }
                burst
            }
        };
        Ok(Self { per_second, burst })
    }
}

/// A classic token bucket over an injected microsecond clock.
///
/// The bucket holds up to `burst` tokens (scaled to micro-tokens
/// internally) and refills at `per_second` tokens per second. Every
/// admission costs one token; an empty bucket reports how long until
/// the next token exists, which becomes the `Retry-After` the shed
/// response advertises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    limit: RateLimit,
    /// Available micro-tokens.
    available: u64,
    /// Clock reading at the last refill, in microseconds.
    refilled_at: u64,
}

impl TokenBucket {
    /// A full bucket observed at clock reading `now_micros`.
    #[must_use]
    pub fn new(limit: RateLimit, now_micros: u64) -> Self {
        Self {
            limit,
            available: limit.burst.saturating_mul(MICRO),
            refilled_at: now_micros,
        }
    }

    /// Credits tokens for the time elapsed since the last refill. The
    /// clock is monotonic by contract; a reading that goes backwards
    /// credits nothing.
    fn refill(&mut self, now_micros: u64) {
        let elapsed = now_micros.saturating_sub(self.refilled_at);
        self.refilled_at = now_micros;
        // elapsed µs × tokens/s = micro-tokens; widen to avoid overflow.
        let credit = u64::try_from(
            (u128::from(elapsed) * u128::from(self.limit.per_second)).min(u128::from(u64::MAX)),
        )
        .unwrap_or(u64::MAX);
        self.available = self
            .available
            .saturating_add(credit)
            .min(self.limit.burst.saturating_mul(MICRO));
    }

    /// Takes one token, or reports how many microseconds until one will
    /// have accumulated.
    ///
    /// # Errors
    ///
    /// Returns `Err(wait_micros)` when the bucket is empty.
    pub fn try_take(&mut self, now_micros: u64) -> Result<(), u64> {
        self.refill(now_micros);
        if self.available >= MICRO {
            self.available -= MICRO;
            return Ok(());
        }
        let deficit = MICRO - self.available;
        // deficit micro-tokens ÷ tokens/s = microseconds, rounded up so
        // a client honoring the wait is never early.
        let wait = u128::from(deficit).div_ceil(u128::from(self.limit.per_second));
        Err(u64::try_from(wait).unwrap_or(u64::MAX))
    }

    /// Whether the bucket is back at full burst (used to prune idle
    /// peers).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.available >= self.limit.burst.saturating_mul(MICRO)
    }

    /// Tokens currently available (floor).
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.available / MICRO
    }
}

/// How often (in admissions) the limiter sweeps idle peers out of its
/// map, bounding memory under address churn.
const PRUNE_EVERY: u64 = 1024;

/// Per-peer-IP admission limiting: one [`TokenBucket`] per source
/// address, pruned when idle.
///
/// The acceptor is single-threaded, so this needs no interior locking —
/// it is owned by the accept loop and driven with one clock reading per
/// connection.
#[derive(Debug)]
pub struct PeerLimiter {
    limit: RateLimit,
    buckets: HashMap<IpAddr, TokenBucket>,
    admissions: u64,
}

impl PeerLimiter {
    /// A limiter applying `limit` to every peer independently.
    #[must_use]
    pub fn new(limit: RateLimit) -> Self {
        Self {
            limit,
            buckets: HashMap::new(),
            admissions: 0,
        }
    }

    /// Admits or sheds one connection from `peer` at clock reading
    /// `now_micros`.
    ///
    /// # Errors
    ///
    /// Returns `Err(wait_micros)` when the peer's bucket is empty.
    pub fn admit(&mut self, peer: IpAddr, now_micros: u64) -> Result<(), u64> {
        self.admissions = self.admissions.wrapping_add(1);
        if self.admissions.is_multiple_of(PRUNE_EVERY) {
            // A full bucket means the peer has been idle long enough to
            // have fully recovered; dropping it loses no state (a fresh
            // bucket starts full).
            self.buckets.retain(|_, bucket| {
                bucket.refill(now_micros);
                !bucket.is_full()
            });
        }
        self.buckets
            .entry(peer)
            .or_insert_with(|| TokenBucket::new(self.limit, now_micros))
            .try_take(now_micros)
    }

    /// Number of peers currently tracked.
    #[must_use]
    pub fn tracked_peers(&self) -> usize {
        self.buckets.len()
    }
}

/// Rounds a microsecond wait up to the whole seconds a `Retry-After`
/// header can carry (minimum 1 — zero would invite an immediate retry
/// of a request that was just shed).
#[must_use]
pub fn retry_after_secs(wait_micros: u64) -> u64 {
    wait_micros.div_ceil(MICRO).max(1)
}

/// Admission-control knobs for [`crate::ServeOptions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadOptions {
    /// Maximum connections waiting for a worker before new ones are
    /// shed with `503 + Retry-After`.
    pub queue_depth: usize,
    /// Per-peer-IP token-bucket limit; `None` disables rate limiting.
    pub rate_limit: Option<RateLimit>,
    /// `Retry-After` seconds advertised when the accept queue is full
    /// or the server is draining.
    pub shed_retry_after_secs: u64,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        Self {
            queue_depth: 1024,
            rate_limit: None,
            shed_retry_after_secs: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: RateLimit = RateLimit {
        per_second: 10,
        burst: 3,
    };

    #[test]
    fn bucket_spends_burst_then_sheds_with_exact_wait() {
        let mut bucket = TokenBucket::new(LIMIT, 0);
        assert_eq!(bucket.tokens(), 3);
        for _ in 0..3 {
            bucket.try_take(0).unwrap();
        }
        // Empty at t=0: the next token exists after 1/10 s.
        let wait = bucket.try_take(0).unwrap_err();
        assert_eq!(wait, 100_000);
        // 40 ms later 0.4 tokens have accrued; 60 ms to go.
        let wait = bucket.try_take(40_000).unwrap_err();
        assert_eq!(wait, 60_000);
        // At exactly 100 ms the token is there.
        bucket.try_take(100_000).unwrap();
    }

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let mut bucket = TokenBucket::new(LIMIT, 0);
        for _ in 0..3 {
            bucket.try_take(0).unwrap();
        }
        // 250 ms → 2.5 tokens accrued.
        bucket.refill(250_000);
        assert_eq!(bucket.tokens(), 2);
        // A long idle period caps at burst, not beyond.
        bucket.refill(10 * MICRO);
        assert_eq!(bucket.tokens(), 3);
        assert!(bucket.is_full());
    }

    #[test]
    fn bucket_tolerates_clock_stalls_and_huge_gaps() {
        let mut bucket = TokenBucket::new(LIMIT, 500);
        bucket.try_take(500).unwrap();
        // A stalled (or backwards) clock credits nothing and must not
        // underflow.
        bucket.try_take(400).unwrap();
        bucket.try_take(400).unwrap();
        assert!(bucket.try_take(400).is_err());
        // An absurd gap saturates instead of overflowing.
        bucket.try_take(u64::MAX).unwrap();
    }

    #[test]
    fn refill_granularity_is_sub_token() {
        // 1 token/s, burst 1: after 999 999 µs still empty, at 1 s full.
        let mut bucket = TokenBucket::new(RateLimit::per_second(1), 0);
        bucket.try_take(0).unwrap();
        assert_eq!(bucket.try_take(999_999).unwrap_err(), 1);
        bucket.try_take(1_000_000).unwrap();
    }

    #[test]
    fn limiter_isolates_peers_and_prunes_idle_ones() {
        let mut limiter = PeerLimiter::new(RateLimit {
            per_second: 1_000,
            burst: 1,
        });
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        limiter.admit(a, 0).unwrap();
        // Peer a is exhausted; peer b is untouched.
        assert!(limiter.admit(a, 0).is_err());
        limiter.admit(b, 0).unwrap();
        assert_eq!(limiter.tracked_peers(), 2);
        // Drive enough admissions (well past each bucket's refill
        // horizon) to cross a prune boundary: idle full buckets go.
        let c: IpAddr = "10.0.0.3".parse().unwrap();
        let mut now = 10 * MICRO;
        for _ in 0..PRUNE_EVERY {
            now += 10 * MICRO;
            let _ = limiter.admit(c, now);
        }
        assert!(limiter.tracked_peers() <= 2, "{}", limiter.tracked_peers());
    }

    #[test]
    fn retry_after_rounds_up_and_never_advertises_zero() {
        assert_eq!(retry_after_secs(1), 1);
        assert_eq!(retry_after_secs(999_999), 1);
        assert_eq!(retry_after_secs(1_000_000), 1);
        assert_eq!(retry_after_secs(1_000_001), 2);
        assert_eq!(retry_after_secs(0), 1);
    }

    #[test]
    fn rate_limit_parses_rps_and_burst() {
        assert_eq!(
            RateLimit::parse("50").unwrap(),
            RateLimit {
                per_second: 50,
                burst: 50
            }
        );
        assert_eq!(
            RateLimit::parse("50:200").unwrap(),
            RateLimit {
                per_second: 50,
                burst: 200
            }
        );
        assert!(RateLimit::parse("0").is_err());
        assert!(RateLimit::parse("50:0").is_err());
        assert!(RateLimit::parse("fast").is_err());
        assert!(RateLimit::parse("50:many").is_err());
    }
}
