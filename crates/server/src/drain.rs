//! Graceful shutdown for the delivery service: the drain state machine
//! and the final pause-and-snapshot pass.
//!
//! # The drain state machine
//!
//! ```text
//! Running ──begin_drain()──▶ Draining ──finish_drain()──▶ Stopped
//! ```
//!
//! * **Running** — normal service.
//! * **Draining** — `/healthz` answers `503 {"status":"draining"}` so
//!   load balancers rotate traffic away; every request except
//!   `/healthz` and `/metrics` is shed with `503 + Retry-After`;
//!   requests already being handled run to completion; workers close
//!   keep-alive connections after the in-flight exchange.
//! * **Stopped** — in-flight work has ended (or the drain deadline
//!   expired), every still-active session has been paused through the
//!   journaled `Paused` event, a final snapshot has been written, and
//!   the listener threads are joining.
//!
//! Correctness does not depend on the deadline: the final snapshot is
//! captured under the journal's exclusive write gate, so even a
//! straggling request that outlives the deadline either lands wholly
//! before the snapshot or wholly after it in the WAL — a restarted
//! server replays it either way. The deadline only bounds how long
//! shutdown *waits* for stragglers before moving on.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use mine_delivery::SessionState;

use crate::journal::{Journal, ServerImage, SessionEvent};
use crate::router::ServerState;

/// Where the server is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainState {
    /// Serving normally.
    Running,
    /// Shedding new work, finishing in-flight requests.
    Draining,
    /// Drained (or deadline-expired), final snapshot written.
    Stopped,
}

impl DrainState {
    /// Stable label (`/healthz` body and the `mine_drain_state` gauge
    /// legend).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DrainState::Running => "ok",
            DrainState::Draining => "draining",
            DrainState::Stopped => "stopped",
        }
    }

    /// Numeric encoding for the Prometheus gauge (0 = running,
    /// 1 = draining, 2 = stopped).
    #[must_use]
    pub fn as_gauge(self) -> u64 {
        match self {
            DrainState::Running => 0,
            DrainState::Draining => 1,
            DrainState::Stopped => 2,
        }
    }
}

/// The shared lifecycle flag: handlers read it on every request, the
/// drain coordinator (signal handler, test, or `Server::drain`)
/// advances it. Cloning shares the same state.
#[derive(Debug, Clone, Default)]
pub struct Lifecycle {
    state: Arc<AtomicU8>,
    /// `Retry-After` seconds advertised on drain-shed responses.
    retry_after_secs: Arc<AtomicU64>,
}

impl Lifecycle {
    /// A fresh lifecycle in [`DrainState::Running`].
    #[must_use]
    pub fn new() -> Self {
        let lifecycle = Self::default();
        lifecycle.retry_after_secs.store(5, Ordering::Relaxed);
        lifecycle
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> DrainState {
        match self.state.load(Ordering::Acquire) {
            0 => DrainState::Running,
            1 => DrainState::Draining,
            _ => DrainState::Stopped,
        }
    }

    /// Whether new work should be shed.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != 0
    }

    /// Enters [`DrainState::Draining`] (idempotent; never goes
    /// backwards).
    pub fn begin_drain(&self) {
        let _ = self
            .state
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Enters [`DrainState::Stopped`].
    pub fn mark_stopped(&self) {
        self.state.store(2, Ordering::Release);
    }

    /// The `Retry-After` to advertise while draining.
    #[must_use]
    pub fn retry_after_secs(&self) -> u64 {
        self.retry_after_secs.load(Ordering::Relaxed)
    }

    /// Configures the drain `Retry-After` (e.g. from `ServeOptions`).
    pub fn set_retry_after_secs(&self, secs: u64) {
        self.retry_after_secs.store(secs.max(1), Ordering::Relaxed);
    }
}

/// What the final drain pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every in-flight request finished before the deadline
    /// (`false` means the deadline expired with work still running —
    /// the pause/snapshot below are still consistent, see module docs).
    pub drained_cleanly: bool,
    /// Active sessions paused (and journaled `Paused`) by the pass.
    pub sessions_paused: usize,
    /// Sessions that were already paused and just carried into the
    /// snapshot.
    pub sessions_already_paused: usize,
    /// Whether a final compacting snapshot was written (always `false`
    /// for a journal-less server, which has nothing to persist).
    pub snapshot_written: bool,
    /// Non-fatal problems encountered (a session that refused to pause,
    /// a snapshot write failure). Empty on a clean drain.
    pub notes: Vec<String>,
}

/// Pauses every still-active session through the journaled `Paused`
/// event and writes a final compacting snapshot.
///
/// Pausing goes through exactly the code path the `POST
/// /sessions/{id}/pause` handler uses — WAL-first append under the
/// journal read gate, then the in-memory mutation under the session's
/// own lock — so a recovered server cannot tell a drain-pause from a
/// learner-pause. Non-resumable sessions refuse to pause; that is
/// recorded as a note and the session is still captured live in the
/// snapshot (recovery restores it mid-flight, exactly like a crash).
pub fn pause_and_snapshot(state: &ServerState) -> DrainReport {
    let mut report = DrainReport {
        drained_cleanly: true,
        ..DrainReport::default()
    };
    let journal = state.journal.as_ref();

    for (session, _) in state.registry.capture() {
        match session.state() {
            SessionState::Paused => {
                report.sessions_already_paused += 1;
                continue;
            }
            SessionState::Finished => continue,
            SessionState::Active => {}
        }
        let id = session.id().as_str().to_string();
        let _gate = journal.map(Journal::gate_read);
        let outcome = state.registry.with(&id, |slot| {
            // Re-check under the slot lock: a straggling handler may
            // have paused or finished the session since the capture.
            if slot.session.state() != SessionState::Active {
                return Ok(false);
            }
            if let Some(journal) = journal {
                journal
                    .append(&SessionEvent::Paused {
                        session: id.clone(),
                    })
                    .map_err(|err| format!("journal append failed: {err}"))?;
            }
            let checkpoint = slot
                .session
                .pause()
                .map_err(|err| format!("refused to pause: {err}"))?;
            slot.checkpoint = Some(checkpoint);
            Ok::<bool, String>(true)
        });
        match outcome {
            Ok(Ok(true)) => report.sessions_paused += 1,
            Ok(Ok(false)) => {}
            Ok(Err(note)) => report.notes.push(format!("session {id}: {note}")),
            Err(err) => report.notes.push(format!("session {id}: {err}")),
        }
    }

    if let Some(journal) = journal {
        // The exclusive gate waits out any mutating handler that is
        // mid-request, making the captured image consistent with the
        // log even when the drain deadline expired with work running.
        let _gate = journal.gate_write();
        let image = ServerImage::capture(&state.registry, &state.finished, &state.adaptive);
        match journal.write_snapshot(&image) {
            Ok(()) => {
                report.snapshot_written = true;
                if let Err(err) = journal.sync() {
                    report.notes.push(format!("final sync failed: {err}"));
                }
            }
            Err(err) => report.notes.push(format!("final snapshot failed: {err}")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_advances_and_never_retreats() {
        let lifecycle = Lifecycle::new();
        assert_eq!(lifecycle.state(), DrainState::Running);
        assert!(!lifecycle.is_draining());
        lifecycle.begin_drain();
        assert_eq!(lifecycle.state(), DrainState::Draining);
        assert!(lifecycle.is_draining());
        // Idempotent.
        lifecycle.begin_drain();
        assert_eq!(lifecycle.state(), DrainState::Draining);
        lifecycle.mark_stopped();
        assert_eq!(lifecycle.state(), DrainState::Stopped);
        // begin_drain cannot resurrect a stopped server.
        lifecycle.begin_drain();
        assert_eq!(lifecycle.state(), DrainState::Stopped);
    }

    #[test]
    fn lifecycle_clones_share_state() {
        let lifecycle = Lifecycle::new();
        let observer = lifecycle.clone();
        lifecycle.begin_drain();
        assert!(observer.is_draining());
        assert_eq!(observer.retry_after_secs(), 5);
        lifecycle.set_retry_after_secs(0);
        // Zero would invite an immediate hammering retry; clamped to 1.
        assert_eq!(observer.retry_after_secs(), 1);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(DrainState::Running.as_gauge(), 0);
        assert_eq!(DrainState::Draining.as_gauge(), 1);
        assert_eq!(DrainState::Stopped.as_gauge(), 2);
        assert_eq!(DrainState::Draining.label(), "draining");
    }
}
