//! Lock-free service metrics: request counters, a latency histogram,
//! and session gauges, all plain atomics so the hot path never blocks.
//!
//! `GET /metrics` renders a [`MetricsSnapshot`] as JSON — request
//! counts per route, response counts per status class, a fixed-bucket
//! latency histogram in microseconds, and active/started/finished
//! session gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Serialize, Value};

/// The routes the service distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /sessions`.
    SessionStart,
    /// `GET /sessions/{id}`.
    SessionStatus,
    /// `POST /sessions/{id}/answers`.
    Answer,
    /// `POST /sessions/{id}/pause`.
    Pause,
    /// `POST /sessions/{id}/resume`.
    Resume,
    /// `POST /sessions/{id}/finish`.
    Finish,
    /// `GET /exams/{id}/analysis`.
    Analysis,
    /// `POST /admin/promote`.
    Promote,
    /// `POST /admin/demote`.
    Demote,
    /// `GET /admin/ranges`.
    AdminRanges,
    /// A write redirected away from a follower with `421`.
    Redirected,
    /// A request shed at the routing layer (server draining).
    Shed,
    /// Anything that did not match a route.
    Unmatched,
}

impl Route {
    /// All distinguishable routes, in render order.
    pub const ALL: [Route; 15] = [
        Route::Healthz,
        Route::Metrics,
        Route::SessionStart,
        Route::SessionStatus,
        Route::Answer,
        Route::Pause,
        Route::Resume,
        Route::Finish,
        Route::Analysis,
        Route::Promote,
        Route::Demote,
        Route::AdminRanges,
        Route::Redirected,
        Route::Shed,
        Route::Unmatched,
    ];

    /// Stable metric label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::SessionStart => "session_start",
            Route::SessionStatus => "session_status",
            Route::Answer => "answer",
            Route::Pause => "pause",
            Route::Resume => "resume",
            Route::Finish => "finish",
            Route::Analysis => "analysis",
            Route::Promote => "promote",
            Route::Demote => "demote",
            Route::AdminRanges => "admin_ranges",
            Route::Redirected => "redirected",
            Route::Shed => "shed",
            Route::Unmatched => "unmatched",
        }
    }

    fn index(self) -> usize {
        Route::ALL.iter().position(|r| *r == self).expect("listed")
    }
}

/// Upper bounds (inclusive, microseconds) of the latency buckets; the
/// final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 8] = [100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Index of the histogram bucket a `us`-microsecond observation lands
/// in (the last index is the overflow bucket).
fn bucket_index(us: u64) -> usize {
    LATENCY_BUCKETS_US
        .iter()
        .position(|&bound| us <= bound)
        .unwrap_or(LATENCY_BUCKETS_US.len())
}

/// Shared metric counters. Cheap to update from any worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; Route::ALL.len()],
    /// Responses by status class: 2xx, 4xx, 5xx.
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    sessions_started: AtomicU64,
    sessions_finished: AtomicU64,
    /// Connections/requests shed because the accept queue was full or
    /// the server was draining.
    shed_total: AtomicU64,
    /// Connections shed by the per-peer token bucket.
    rate_limited_total: AtomicU64,
    /// Connections accepted and waiting for a worker, right now.
    queue_depth: AtomicU64,
    /// Requests currently being handled (parsed → response written).
    inflight_requests: AtomicU64,
    /// Drain state gauge: 0 running, 1 draining, 2 stopped.
    drain_state: AtomicU64,
    /// The `Retry-After` seconds most recently advertised on a shed
    /// response (0 = nothing shed yet).
    retry_after_secs: AtomicU64,
    /// Replication role gauge: 0 primary, 1 follower, 2 candidate.
    repl_role: AtomicU64,
    /// Durable replication epoch.
    repl_epoch: AtomicU64,
    /// Highest journal sequence applied locally.
    repl_last_applied_seq: AtomicU64,
    /// Replication lag in records: a primary reports its head minus its
    /// slowest follower's ack, a follower its leader's advertised head
    /// minus its own applied seq.
    repl_lag: AtomicU64,
    /// Followers currently streaming from this node.
    repl_followers: AtomicU64,
    /// Quorum-ack waits that timed out (the write proceeded leader-only).
    repl_quorum_timeouts_total: AtomicU64,
    /// Writes refused with `421` and redirected to the leader.
    redirected_total: AtomicU64,
    /// Unsupervised promotions performed by the failure detector.
    repl_failovers_total: AtomicU64,
    /// Times the failure detector suspected the leader (missed
    /// heartbeats past the timeout); a suspicion may or may not end in
    /// a promotion.
    repl_suspicions_total: AtomicU64,
    /// Follower reconnection attempts after a broken stream.
    repl_reconnects_total: AtomicU64,
    /// Microseconds since the follower last heard from its leader
    /// (refreshed by the metrics handler; 0 on a primary).
    repl_heartbeat_age_us: AtomicU64,
    /// Batch-mode analysis wall time, cold (cache miss → full
    /// pipeline) vs hit.
    analysis_cold_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    analysis_cold_sum_us: AtomicU64,
    analysis_cold_count: AtomicU64,
    analysis_hit_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    analysis_hit_sum_us: AtomicU64,
    analysis_hit_count: AtomicU64,
    /// Streaming-mode analysis wall time (report assembled from the
    /// engine's running counters, no record replay).
    analysis_streaming_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    analysis_streaming_sum_us: AtomicU64,
    analysis_streaming_count: AtomicU64,
    /// Per-finish streaming engine updates (counter doubles as the
    /// histogram count).
    streaming_update_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    streaming_update_sum_us: AtomicU64,
    streaming_update_count: AtomicU64,
    /// Work-stealing pool gauges, refreshed from [`mine_pool::stats`]
    /// by the metrics handler like the replication gauges.
    pool_workers: AtomicU64,
    pool_steals_total: AtomicU64,
    /// Adaptive (CAT) sitting lifecycle counters.
    adaptive_sessions_started: AtomicU64,
    adaptive_sessions_finished: AtomicU64,
    /// Adaptive steps (answer → re-estimate → next-item selection); the
    /// counter doubles as the histogram count.
    adaptive_steps_total: AtomicU64,
    adaptive_step_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    adaptive_step_sum_us: AtomicU64,
    /// Completed anti-entropy scrub passes.
    scrub_passes_total: AtomicU64,
    /// Sealed segments a scrub pass found corrupt (CRC/framing/sequence
    /// damage or range-hash divergence from the leader).
    scrub_corrupt_segments_total: AtomicU64,
    /// Segments quarantined and re-fetched from a healthy peer.
    repair_segments_total: AtomicU64,
    /// Storage health gauge: 1 while the local WAL refuses writes
    /// (degraded read-only serving), 0 while healthy.
    storage_degraded: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(&self, route: Route, status: u16, latency: Duration) {
        self.requests[route.index()].fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => self.status_2xx.fetch_add(1, Ordering::Relaxed),
            500..=599 => self.status_5xx.fetch_add(1, Ordering::Relaxed),
            _ => self.status_4xx.fetch_add(1, Ordering::Relaxed),
        };
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency_buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session start.
    pub fn session_started(&self) {
        self.sessions_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session finish.
    pub fn session_finished(&self) {
        self.sessions_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shed connection/request, recording the `Retry-After`
    /// it was sent away with.
    pub fn shed(&self, retry_after_secs: u64) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        self.retry_after_secs
            .store(retry_after_secs, Ordering::Relaxed);
    }

    /// Counts one rate-limited connection, recording its `Retry-After`.
    pub fn rate_limited(&self, retry_after_secs: u64) {
        self.rate_limited_total.fetch_add(1, Ordering::Relaxed);
        self.retry_after_secs
            .store(retry_after_secs, Ordering::Relaxed);
    }

    /// A connection entered the accept queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker took a connection off the accept queue.
    pub fn queue_exit(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current accept-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A request started being handled.
    pub fn inflight_enter(&self) {
        self.inflight_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A request finished (response written or connection gone).
    pub fn inflight_exit(&self) {
        self.inflight_requests.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being handled.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight_requests.load(Ordering::Relaxed)
    }

    /// Publishes the drain-state gauge (see
    /// [`crate::drain::DrainState::as_gauge`]).
    pub fn set_drain_state(&self, gauge: u64) {
        self.drain_state.store(gauge, Ordering::Relaxed);
    }

    /// Publishes the replication gauges in one call (refreshed by the
    /// metrics handler from the live replication state).
    pub fn set_repl(&self, role: u64, epoch: u64, last_applied: u64, lag: u64, followers: u64) {
        self.repl_role.store(role, Ordering::Relaxed);
        self.repl_epoch.store(epoch, Ordering::Relaxed);
        self.repl_last_applied_seq
            .store(last_applied, Ordering::Relaxed);
        self.repl_lag.store(lag, Ordering::Relaxed);
        self.repl_followers.store(followers, Ordering::Relaxed);
    }

    /// Counts one quorum-ack wait that timed out.
    pub fn quorum_timeout(&self) {
        self.repl_quorum_timeouts_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write redirected to the leader with `421`.
    pub fn redirected(&self) {
        self.redirected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one unsupervised promotion by the failure detector.
    pub fn failover(&self) {
        self.repl_failovers_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one leader suspicion (heartbeat silence past the
    /// detection timeout).
    pub fn suspicion(&self) {
        self.repl_suspicions_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one follower reconnection attempt.
    pub fn repl_reconnect(&self) {
        self.repl_reconnects_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes how long ago the follower last heard from its leader
    /// (microseconds; 0 on a primary).
    pub fn set_repl_heartbeat_age(&self, age_us: u64) {
        self.repl_heartbeat_age_us.store(age_us, Ordering::Relaxed);
    }

    /// Records one batch-mode analysis: `cache_hit` distinguishes a
    /// cached report from a cold run of the full pipeline.
    pub fn record_analysis(&self, cache_hit: bool, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = bucket_index(us);
        let (buckets, sum, count) = if cache_hit {
            (
                &self.analysis_hit_buckets,
                &self.analysis_hit_sum_us,
                &self.analysis_hit_count,
            )
        } else {
            (
                &self.analysis_cold_buckets,
                &self.analysis_cold_sum_us,
                &self.analysis_cold_count,
            )
        };
        buckets[bucket].fetch_add(1, Ordering::Relaxed);
        sum.fetch_add(us, Ordering::Relaxed);
        count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming-mode analysis read (report assembled from
    /// the engine's counters).
    pub fn record_streaming_analysis(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.analysis_streaming_buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.analysis_streaming_sum_us
            .fetch_add(us, Ordering::Relaxed);
        self.analysis_streaming_count
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one finish-time streaming engine update.
    pub fn record_streaming_update(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.streaming_update_buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.streaming_update_sum_us
            .fetch_add(us, Ordering::Relaxed);
        self.streaming_update_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an adaptive sitting start.
    pub fn adaptive_session_started(&self) {
        self.adaptive_sessions_started
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an adaptive sitting finish.
    pub fn adaptive_session_closed(&self) {
        self.adaptive_sessions_finished
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one adaptive step: grade, ability re-estimate, and
    /// next-item selection for a single answer.
    pub fn record_adaptive_step(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.adaptive_step_buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.adaptive_step_sum_us.fetch_add(us, Ordering::Relaxed);
        self.adaptive_steps_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed scrub pass.
    pub fn scrub_pass(&self) {
        self.scrub_passes_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `segments` sealed segments found corrupt by a scrub pass.
    pub fn scrub_corruption(&self, segments: u64) {
        self.scrub_corrupt_segments_total
            .fetch_add(segments, Ordering::Relaxed);
    }

    /// Counts one segment quarantined and repaired from a peer.
    pub fn repair_segment(&self) {
        self.repair_segments_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the storage health gauge: `true` while the WAL is
    /// refusing writes and the node serves degraded (read-only).
    pub fn set_storage_degraded(&self, degraded: bool) {
        self.storage_degraded
            .store(u64::from(degraded), Ordering::Relaxed);
    }

    /// Publishes the work-stealing pool gauges (refreshed by the
    /// metrics handler from [`mine_pool::stats`]).
    pub fn set_pool(&self, workers: u64, steals: u64) {
        self.pool_workers.store(workers, Ordering::Relaxed);
        self.pool_steals_total.store(steals, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for rendering.
    #[must_use]
    pub fn snapshot(&self, active_sessions: usize, adaptive_active: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: Route::ALL
                .iter()
                .map(|route| {
                    (
                        route.label(),
                        self.requests[route.index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            status_2xx: self.status_2xx.load(Ordering::Relaxed),
            status_4xx: self.status_4xx.load(Ordering::Relaxed),
            status_5xx: self.status_5xx.load(Ordering::Relaxed),
            latency_buckets: self
                .latency_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_count: self.latency_count.load(Ordering::Relaxed),
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            sessions_finished: self.sessions_finished.load(Ordering::Relaxed),
            active_sessions,
            shed_total: self.shed_total.load(Ordering::Relaxed),
            rate_limited_total: self.rate_limited_total.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            inflight_requests: self.inflight_requests.load(Ordering::Relaxed),
            drain_state: self.drain_state.load(Ordering::Relaxed),
            retry_after_secs: self.retry_after_secs.load(Ordering::Relaxed),
            repl_role: self.repl_role.load(Ordering::Relaxed),
            repl_epoch: self.repl_epoch.load(Ordering::Relaxed),
            repl_last_applied_seq: self.repl_last_applied_seq.load(Ordering::Relaxed),
            repl_lag: self.repl_lag.load(Ordering::Relaxed),
            repl_followers: self.repl_followers.load(Ordering::Relaxed),
            repl_quorum_timeouts_total: self.repl_quorum_timeouts_total.load(Ordering::Relaxed),
            redirected_total: self.redirected_total.load(Ordering::Relaxed),
            repl_failovers_total: self.repl_failovers_total.load(Ordering::Relaxed),
            repl_suspicions_total: self.repl_suspicions_total.load(Ordering::Relaxed),
            repl_reconnects_total: self.repl_reconnects_total.load(Ordering::Relaxed),
            repl_heartbeat_age_us: self.repl_heartbeat_age_us.load(Ordering::Relaxed),
            analysis_cold_buckets: self
                .analysis_cold_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            analysis_cold_sum_us: self.analysis_cold_sum_us.load(Ordering::Relaxed),
            analysis_cold_count: self.analysis_cold_count.load(Ordering::Relaxed),
            analysis_hit_buckets: self
                .analysis_hit_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            analysis_hit_sum_us: self.analysis_hit_sum_us.load(Ordering::Relaxed),
            analysis_hit_count: self.analysis_hit_count.load(Ordering::Relaxed),
            analysis_streaming_buckets: self
                .analysis_streaming_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            analysis_streaming_sum_us: self.analysis_streaming_sum_us.load(Ordering::Relaxed),
            analysis_streaming_count: self.analysis_streaming_count.load(Ordering::Relaxed),
            streaming_update_buckets: self
                .streaming_update_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            streaming_update_sum_us: self.streaming_update_sum_us.load(Ordering::Relaxed),
            streaming_updates_total: self.streaming_update_count.load(Ordering::Relaxed),
            pool_workers: self.pool_workers.load(Ordering::Relaxed),
            pool_steals_total: self.pool_steals_total.load(Ordering::Relaxed),
            adaptive_sessions_started: self.adaptive_sessions_started.load(Ordering::Relaxed),
            adaptive_sessions_finished: self.adaptive_sessions_finished.load(Ordering::Relaxed),
            adaptive_sessions_active: adaptive_active,
            adaptive_steps_total: self.adaptive_steps_total.load(Ordering::Relaxed),
            adaptive_step_buckets: self
                .adaptive_step_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            adaptive_step_sum_us: self.adaptive_step_sum_us.load(Ordering::Relaxed),
            scrub_passes_total: self.scrub_passes_total.load(Ordering::Relaxed),
            scrub_corrupt_segments_total: self.scrub_corrupt_segments_total.load(Ordering::Relaxed),
            repair_segments_total: self.repair_segments_total.load(Ordering::Relaxed),
            storage_degraded: self.storage_degraded.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of every counter, renderable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests served per route label.
    pub requests: Vec<(&'static str, u64)>,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 5xx responses.
    pub status_5xx: u64,
    /// Latency histogram counts; index i ≤ `LATENCY_BUCKETS_US[i]` µs,
    /// last entry is the overflow bucket.
    pub latency_buckets: Vec<u64>,
    /// Sum of request latencies in microseconds.
    pub latency_sum_us: u64,
    /// Number of latency observations.
    pub latency_count: u64,
    /// Sessions ever started.
    pub sessions_started: u64,
    /// Sessions ever finished.
    pub sessions_finished: u64,
    /// Sessions currently resident in the registry.
    pub active_sessions: usize,
    /// Connections/requests shed (full queue or draining).
    pub shed_total: u64,
    /// Connections shed by per-peer rate limiting.
    pub rate_limited_total: u64,
    /// Accept-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Requests being handled at snapshot time.
    pub inflight_requests: u64,
    /// Drain state: 0 running, 1 draining, 2 stopped.
    pub drain_state: u64,
    /// Last advertised `Retry-After` seconds (0 = never shed).
    pub retry_after_secs: u64,
    /// Replication role: 0 primary, 1 follower, 2 candidate.
    pub repl_role: u64,
    /// Durable replication epoch.
    pub repl_epoch: u64,
    /// Highest journal sequence applied locally.
    pub repl_last_applied_seq: u64,
    /// Replication lag in records (see [`Metrics::set_repl`]).
    pub repl_lag: u64,
    /// Followers currently streaming from this node.
    pub repl_followers: u64,
    /// Quorum-ack waits that timed out.
    pub repl_quorum_timeouts_total: u64,
    /// Writes refused with `421` and pointed at the leader.
    pub redirected_total: u64,
    /// Unsupervised promotions performed by the failure detector.
    pub repl_failovers_total: u64,
    /// Leader suspicions raised by the failure detector.
    pub repl_suspicions_total: u64,
    /// Follower reconnection attempts after a broken stream.
    pub repl_reconnects_total: u64,
    /// Microseconds since the follower last heard from its leader
    /// (0 on a primary).
    pub repl_heartbeat_age_us: u64,
    /// Cold-analysis duration histogram (same bucket bounds as
    /// [`LATENCY_BUCKETS_US`], last entry is the overflow bucket).
    pub analysis_cold_buckets: Vec<u64>,
    /// Sum of cold-analysis durations in microseconds.
    pub analysis_cold_sum_us: u64,
    /// Number of cold analyses.
    pub analysis_cold_count: u64,
    /// Cache-hit analysis duration histogram.
    pub analysis_hit_buckets: Vec<u64>,
    /// Sum of cache-hit analysis durations in microseconds.
    pub analysis_hit_sum_us: u64,
    /// Number of cache-hit analyses.
    pub analysis_hit_count: u64,
    /// Streaming-mode analysis duration histogram.
    pub analysis_streaming_buckets: Vec<u64>,
    /// Sum of streaming-mode analysis durations in microseconds.
    pub analysis_streaming_sum_us: u64,
    /// Number of streaming-mode analyses.
    pub analysis_streaming_count: u64,
    /// Finish-time streaming update duration histogram.
    pub streaming_update_buckets: Vec<u64>,
    /// Sum of streaming update durations in microseconds.
    pub streaming_update_sum_us: u64,
    /// Finish-time streaming engine updates ever applied.
    pub streaming_updates_total: u64,
    /// Worker threads spawned by the work-stealing pool.
    pub pool_workers: u64,
    /// Tasks executed by a worker other than the one that queued them.
    pub pool_steals_total: u64,
    /// Adaptive (CAT) sittings ever started.
    pub adaptive_sessions_started: u64,
    /// Adaptive sittings ever finished.
    pub adaptive_sessions_finished: u64,
    /// Adaptive sittings currently resident in the registry.
    pub adaptive_sessions_active: usize,
    /// Adaptive steps ever served (doubles as the histogram count).
    pub adaptive_steps_total: u64,
    /// Adaptive step duration histogram (same bucket bounds as
    /// [`LATENCY_BUCKETS_US`], last entry is the overflow bucket).
    pub adaptive_step_buckets: Vec<u64>,
    /// Sum of adaptive step durations in microseconds.
    pub adaptive_step_sum_us: u64,
    /// Completed anti-entropy scrub passes.
    pub scrub_passes_total: u64,
    /// Sealed segments found corrupt by scrub passes.
    pub scrub_corrupt_segments_total: u64,
    /// Segments quarantined and repaired from a healthy peer.
    pub repair_segments_total: u64,
    /// Storage health: 1 degraded (read-only), 0 healthy.
    pub storage_degraded: u64,
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let requests = Value::Object(
            self.requests
                .iter()
                .map(|(label, count)| ((*label).to_string(), count.to_value()))
                .collect(),
        );
        let histogram = |bucket_counts: &[u64], sum_us: u64, count: u64| {
            let buckets = Value::Array(
                bucket_counts
                    .iter()
                    .enumerate()
                    .map(|(i, count)| {
                        let le = LATENCY_BUCKETS_US
                            .get(i)
                            .map_or_else(|| "+inf".to_string(), u64::to_string);
                        Value::Object(vec![
                            ("le_us".to_string(), Value::String(le)),
                            ("count".to_string(), count.to_value()),
                        ])
                    })
                    .collect(),
            );
            Value::Object(vec![
                ("buckets".to_string(), buckets),
                ("sum".to_string(), sum_us.to_value()),
                ("count".to_string(), count.to_value()),
            ])
        };
        Value::Object(vec![
            ("requests".to_string(), requests),
            ("status_2xx".to_string(), self.status_2xx.to_value()),
            ("status_4xx".to_string(), self.status_4xx.to_value()),
            ("status_5xx".to_string(), self.status_5xx.to_value()),
            (
                "latency_us".to_string(),
                histogram(
                    &self.latency_buckets,
                    self.latency_sum_us,
                    self.latency_count,
                ),
            ),
            (
                "analysis_duration_us".to_string(),
                Value::Object(vec![
                    (
                        "cold".to_string(),
                        histogram(
                            &self.analysis_cold_buckets,
                            self.analysis_cold_sum_us,
                            self.analysis_cold_count,
                        ),
                    ),
                    (
                        "hit".to_string(),
                        histogram(
                            &self.analysis_hit_buckets,
                            self.analysis_hit_sum_us,
                            self.analysis_hit_count,
                        ),
                    ),
                    (
                        "streaming".to_string(),
                        histogram(
                            &self.analysis_streaming_buckets,
                            self.analysis_streaming_sum_us,
                            self.analysis_streaming_count,
                        ),
                    ),
                ]),
            ),
            (
                "streaming_update_us".to_string(),
                histogram(
                    &self.streaming_update_buckets,
                    self.streaming_update_sum_us,
                    self.streaming_updates_total,
                ),
            ),
            (
                "streaming_updates_total".to_string(),
                self.streaming_updates_total.to_value(),
            ),
            ("pool_workers".to_string(), self.pool_workers.to_value()),
            (
                "pool_steals_total".to_string(),
                self.pool_steals_total.to_value(),
            ),
            (
                "adaptive_step_us".to_string(),
                histogram(
                    &self.adaptive_step_buckets,
                    self.adaptive_step_sum_us,
                    self.adaptive_steps_total,
                ),
            ),
            (
                "adaptive_steps_total".to_string(),
                self.adaptive_steps_total.to_value(),
            ),
            (
                "adaptive_sessions_started".to_string(),
                self.adaptive_sessions_started.to_value(),
            ),
            (
                "adaptive_sessions_finished".to_string(),
                self.adaptive_sessions_finished.to_value(),
            ),
            (
                "adaptive_sessions_active".to_string(),
                (self.adaptive_sessions_active as u64).to_value(),
            ),
            (
                "sessions_started".to_string(),
                self.sessions_started.to_value(),
            ),
            (
                "sessions_finished".to_string(),
                self.sessions_finished.to_value(),
            ),
            (
                "active_sessions".to_string(),
                (self.active_sessions as u64).to_value(),
            ),
            ("shed_total".to_string(), self.shed_total.to_value()),
            (
                "rate_limited_total".to_string(),
                self.rate_limited_total.to_value(),
            ),
            ("queue_depth".to_string(), self.queue_depth.to_value()),
            (
                "inflight_requests".to_string(),
                self.inflight_requests.to_value(),
            ),
            ("drain_state".to_string(), self.drain_state.to_value()),
            (
                "retry_after_secs".to_string(),
                self.retry_after_secs.to_value(),
            ),
            ("repl_role".to_string(), self.repl_role.to_value()),
            ("repl_epoch".to_string(), self.repl_epoch.to_value()),
            (
                "repl_last_applied_seq".to_string(),
                self.repl_last_applied_seq.to_value(),
            ),
            ("repl_lag".to_string(), self.repl_lag.to_value()),
            ("repl_followers".to_string(), self.repl_followers.to_value()),
            (
                "repl_quorum_timeouts_total".to_string(),
                self.repl_quorum_timeouts_total.to_value(),
            ),
            (
                "redirected_total".to_string(),
                self.redirected_total.to_value(),
            ),
            (
                "repl_failovers_total".to_string(),
                self.repl_failovers_total.to_value(),
            ),
            (
                "repl_suspicions_total".to_string(),
                self.repl_suspicions_total.to_value(),
            ),
            (
                "repl_reconnects_total".to_string(),
                self.repl_reconnects_total.to_value(),
            ),
            (
                "repl_heartbeat_age_us".to_string(),
                self.repl_heartbeat_age_us.to_value(),
            ),
            (
                "scrub_passes_total".to_string(),
                self.scrub_passes_total.to_value(),
            ),
            (
                "scrub_corrupt_segments_total".to_string(),
                self.scrub_corrupt_segments_total.to_value(),
            ),
            (
                "repair_segments_total".to_string(),
                self.repair_segments_total.to_value(),
            ),
            (
                "storage_degraded".to_string(),
                self.storage_degraded.to_value(),
            ),
        ])
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` lines, one sample per line, histogram
    /// buckets with *cumulative* counts and `le` bounds in seconds.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP mine_requests_total Requests served, by route.\n");
        out.push_str("# TYPE mine_requests_total counter\n");
        for (label, count) in &self.requests {
            out.push_str(&format!(
                "mine_requests_total{{route=\"{label}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP mine_responses_total Responses sent, by status class.\n");
        out.push_str("# TYPE mine_responses_total counter\n");
        for (class, count) in [
            ("2xx", self.status_2xx),
            ("4xx", self.status_4xx),
            ("5xx", self.status_5xx),
        ] {
            out.push_str(&format!(
                "mine_responses_total{{class=\"{class}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP mine_request_duration_seconds Request latency.\n");
        out.push_str("# TYPE mine_request_duration_seconds histogram\n");
        // The internal buckets hold per-bucket counts; Prometheus
        // histogram buckets are cumulative.
        let mut cumulative = 0_u64;
        for (i, count) in self.latency_buckets.iter().enumerate() {
            cumulative += count;
            let le = LATENCY_BUCKETS_US.get(i).map_or_else(
                || "+Inf".to_string(),
                |&us| format!("{}", us as f64 / 1_000_000.0),
            );
            out.push_str(&format!(
                "mine_request_duration_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "mine_request_duration_seconds_sum {}\n",
            self.latency_sum_us as f64 / 1_000_000.0
        ));
        out.push_str(&format!(
            "mine_request_duration_seconds_count {}\n",
            self.latency_count
        ));

        out.push_str(
            "# HELP mine_analysis_duration_seconds Analysis wall time by mode (batch runs carry the cache outcome).\n",
        );
        out.push_str("# TYPE mine_analysis_duration_seconds histogram\n");
        for (labels, buckets, sum_us, count) in [
            (
                "mode=\"batch\",cache=\"cold\"",
                &self.analysis_cold_buckets,
                self.analysis_cold_sum_us,
                self.analysis_cold_count,
            ),
            (
                "mode=\"batch\",cache=\"hit\"",
                &self.analysis_hit_buckets,
                self.analysis_hit_sum_us,
                self.analysis_hit_count,
            ),
            (
                "mode=\"streaming\"",
                &self.analysis_streaming_buckets,
                self.analysis_streaming_sum_us,
                self.analysis_streaming_count,
            ),
        ] {
            let mut cumulative = 0_u64;
            for (i, bucket_count) in buckets.iter().enumerate() {
                cumulative += bucket_count;
                let le = LATENCY_BUCKETS_US.get(i).map_or_else(
                    || "+Inf".to_string(),
                    |&us| format!("{}", us as f64 / 1_000_000.0),
                );
                out.push_str(&format!(
                    "mine_analysis_duration_seconds_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "mine_analysis_duration_seconds_sum{{{labels}}} {}\n",
                sum_us as f64 / 1_000_000.0
            ));
            out.push_str(&format!(
                "mine_analysis_duration_seconds_count{{{labels}}} {count}\n"
            ));
        }

        out.push_str(
            "# HELP mine_streaming_update_seconds Finish-time streaming statistics update.\n",
        );
        out.push_str("# TYPE mine_streaming_update_seconds histogram\n");
        let mut cumulative = 0_u64;
        for (i, bucket_count) in self.streaming_update_buckets.iter().enumerate() {
            cumulative += bucket_count;
            let le = LATENCY_BUCKETS_US.get(i).map_or_else(
                || "+Inf".to_string(),
                |&us| format!("{}", us as f64 / 1_000_000.0),
            );
            out.push_str(&format!(
                "mine_streaming_update_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "mine_streaming_update_seconds_sum {}\n",
            self.streaming_update_sum_us as f64 / 1_000_000.0
        ));
        out.push_str(&format!(
            "mine_streaming_update_seconds_count {}\n",
            self.streaming_updates_total
        ));
        out.push_str(
            "# HELP mine_streaming_updates_total Finish-time streaming engine updates applied.\n",
        );
        out.push_str("# TYPE mine_streaming_updates_total counter\n");
        out.push_str(&format!(
            "mine_streaming_updates_total {}\n",
            self.streaming_updates_total
        ));

        out.push_str(
            "# HELP mine_adaptive_step_seconds Adaptive step: grade, re-estimate, next item.\n",
        );
        out.push_str("# TYPE mine_adaptive_step_seconds histogram\n");
        let mut cumulative = 0_u64;
        for (i, bucket_count) in self.adaptive_step_buckets.iter().enumerate() {
            cumulative += bucket_count;
            let le = LATENCY_BUCKETS_US.get(i).map_or_else(
                || "+Inf".to_string(),
                |&us| format!("{}", us as f64 / 1_000_000.0),
            );
            out.push_str(&format!(
                "mine_adaptive_step_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "mine_adaptive_step_seconds_sum {}\n",
            self.adaptive_step_sum_us as f64 / 1_000_000.0
        ));
        out.push_str(&format!(
            "mine_adaptive_step_seconds_count {}\n",
            self.adaptive_steps_total
        ));
        out.push_str("# HELP mine_adaptive_steps_total Adaptive steps ever served.\n");
        out.push_str("# TYPE mine_adaptive_steps_total counter\n");
        out.push_str(&format!(
            "mine_adaptive_steps_total {}\n",
            self.adaptive_steps_total
        ));

        for (name, help, value) in [
            (
                "mine_sessions_started_total",
                "Sessions ever started.",
                self.sessions_started,
            ),
            (
                "mine_sessions_finished_total",
                "Sessions ever finished.",
                self.sessions_finished,
            ),
            (
                "mine_adaptive_sessions_started_total",
                "Adaptive (CAT) sittings ever started.",
                self.adaptive_sessions_started,
            ),
            (
                "mine_adaptive_sessions_finished_total",
                "Adaptive (CAT) sittings ever finished.",
                self.adaptive_sessions_finished,
            ),
            (
                "mine_shed_total",
                "Connections and requests shed with 503 (full queue or draining).",
                self.shed_total,
            ),
            (
                "mine_rate_limited_total",
                "Connections shed by per-peer token-bucket rate limiting.",
                self.rate_limited_total,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, help, value) in [
            (
                "mine_active_sessions",
                "Sessions currently resident in the registry.",
                self.active_sessions as u64,
            ),
            (
                "mine_adaptive_sessions_active",
                "Adaptive (CAT) sittings currently resident in the registry.",
                self.adaptive_sessions_active as u64,
            ),
            (
                "mine_queue_depth",
                "Accepted connections waiting for a worker.",
                self.queue_depth,
            ),
            (
                "mine_inflight_requests",
                "Requests currently being handled.",
                self.inflight_requests,
            ),
            (
                "mine_drain_state",
                "Lifecycle: 0 running, 1 draining, 2 stopped.",
                self.drain_state,
            ),
            (
                "mine_retry_after_seconds",
                "Retry-After seconds most recently advertised on a shed response.",
                self.retry_after_secs,
            ),
            (
                "mine_pool_workers",
                "Worker threads spawned by the work-stealing analysis pool.",
                self.pool_workers,
            ),
            (
                "mine_storage_degraded",
                "Storage health: 1 while the WAL refuses writes (degraded read-only), 0 healthy.",
                self.storage_degraded,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        }

        out.push_str("# HELP mine_repl_role Replication role (one-hot).\n");
        out.push_str("# TYPE mine_repl_role gauge\n");
        for (index, role) in ["primary", "follower", "candidate"].iter().enumerate() {
            let hot = u64::from(self.repl_role == index as u64);
            out.push_str(&format!("mine_repl_role{{role=\"{role}\"}} {hot}\n"));
        }
        for (name, help, value) in [
            (
                "mine_repl_epoch",
                "Durable replication epoch (bumped by promotion).",
                self.repl_epoch,
            ),
            (
                "mine_repl_last_applied_seq",
                "Highest journal sequence applied locally.",
                self.repl_last_applied_seq,
            ),
            (
                "mine_repl_lag",
                "Replication lag in records (primary: head minus slowest ack; follower: leader head minus applied).",
                self.repl_lag,
            ),
            (
                "mine_repl_followers",
                "Followers currently streaming from this node.",
                self.repl_followers,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        out.push_str(
            "# HELP mine_repl_heartbeat_age_seconds Time since the follower last heard from its leader (0 on a primary).\n",
        );
        out.push_str("# TYPE mine_repl_heartbeat_age_seconds gauge\n");
        out.push_str(&format!(
            "mine_repl_heartbeat_age_seconds {}\n",
            self.repl_heartbeat_age_us as f64 / 1_000_000.0
        ));
        for (name, help, value) in [
            (
                "mine_repl_quorum_timeouts_total",
                "Quorum-ack waits that timed out (write proceeded leader-only).",
                self.repl_quorum_timeouts_total,
            ),
            (
                "mine_redirected_total",
                "Writes refused with 421 and pointed at the leader.",
                self.redirected_total,
            ),
            (
                "mine_pool_steals_total",
                "Pool tasks executed by a worker other than the one that queued them.",
                self.pool_steals_total,
            ),
            (
                "mine_repl_failovers_total",
                "Unsupervised promotions performed by the failure detector.",
                self.repl_failovers_total,
            ),
            (
                "mine_repl_suspicions_total",
                "Leader suspicions raised by the failure detector.",
                self.repl_suspicions_total,
            ),
            (
                "mine_repl_reconnects_total",
                "Follower reconnection attempts after a broken stream.",
                self.repl_reconnects_total,
            ),
            (
                "mine_scrub_passes_total",
                "Completed anti-entropy scrub passes.",
                self.scrub_passes_total,
            ),
            (
                "mine_scrub_corrupt_segments_total",
                "Sealed segments a scrub pass found corrupt.",
                self.scrub_corrupt_segments_total,
            ),
            (
                "mine_repair_segments_total",
                "Segments quarantined and repaired from a healthy peer.",
                self.repair_segments_total,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_counters_and_buckets() {
        let metrics = Metrics::new();
        metrics.record(Route::Healthz, 200, Duration::from_micros(50));
        metrics.record(Route::Answer, 422, Duration::from_micros(300));
        metrics.record(Route::Analysis, 500, Duration::from_secs(2));
        metrics.session_started();
        metrics.session_finished();

        let snapshot = metrics.snapshot(3, 0);
        let by_label: std::collections::HashMap<_, _> = snapshot.requests.iter().copied().collect();
        assert_eq!(by_label["healthz"], 1);
        assert_eq!(by_label["answer"], 1);
        assert_eq!(by_label["analysis"], 1);
        assert_eq!(by_label["session_start"], 0);
        assert_eq!(snapshot.status_2xx, 1);
        assert_eq!(snapshot.status_4xx, 1);
        assert_eq!(snapshot.status_5xx, 1);
        assert_eq!(snapshot.latency_count, 3);
        // 50 µs lands in the first bucket, 300 µs in the ≤500 bucket,
        // 2 s in the overflow bucket.
        assert_eq!(snapshot.latency_buckets[0], 1);
        assert_eq!(snapshot.latency_buckets[2], 1);
        assert_eq!(*snapshot.latency_buckets.last().unwrap(), 1);
        assert_eq!(snapshot.sessions_started, 1);
        assert_eq!(snapshot.sessions_finished, 1);
        assert_eq!(snapshot.active_sessions, 3);
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_cumulative_buckets() {
        let metrics = Metrics::new();
        metrics.record(Route::Healthz, 200, Duration::from_micros(50));
        metrics.record(Route::Answer, 200, Duration::from_micros(80));
        metrics.record(Route::Answer, 422, Duration::from_micros(300));
        metrics.record(Route::Analysis, 500, Duration::from_secs(2));
        let text = metrics.snapshot(2, 0).to_prometheus();

        assert!(text.contains("# TYPE mine_requests_total counter"));
        assert!(text.contains("mine_requests_total{route=\"answer\"} 2"));
        assert!(text.contains("# TYPE mine_request_duration_seconds histogram"));
        // Two 50/80 µs observations land in the first (≤100 µs = 1e-4 s)
        // bucket; cumulative counts keep growing monotonically.
        assert!(text.contains("mine_request_duration_seconds_bucket{le=\"0.0001\"} 2"));
        assert!(text.contains("mine_request_duration_seconds_bucket{le=\"0.0005\"} 3"));
        assert!(text.contains("mine_request_duration_seconds_bucket{le=\"1\"} 3"));
        assert!(text.contains("mine_request_duration_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("mine_request_duration_seconds_count 4"));
        assert!(text.contains("mine_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("# TYPE mine_active_sessions gauge"));
        assert!(text.contains("mine_active_sessions 2"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn overload_gauges_and_counters_render_everywhere() {
        let metrics = Metrics::new();
        metrics.shed(2);
        metrics.shed(3);
        metrics.rate_limited(1);
        metrics.queue_enter();
        metrics.queue_enter();
        metrics.queue_exit();
        metrics.inflight_enter();
        metrics.set_drain_state(1);

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.shed_total, 2);
        assert_eq!(snapshot.rate_limited_total, 1);
        assert_eq!(snapshot.queue_depth, 1);
        assert_eq!(snapshot.inflight_requests, 1);
        assert_eq!(snapshot.drain_state, 1);
        // The gauge remembers the most recent advertisement.
        assert_eq!(snapshot.retry_after_secs, 1);

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE mine_shed_total counter"));
        assert!(text.contains("mine_shed_total 2"));
        assert!(text.contains("mine_rate_limited_total 1"));
        assert!(text.contains("# TYPE mine_queue_depth gauge"));
        assert!(text.contains("mine_queue_depth 1"));
        assert!(text.contains("mine_drain_state 1"));
        assert!(text.contains("mine_inflight_requests 1"));
        assert!(text.contains("mine_retry_after_seconds 1"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("shed_total").unwrap().kind(), "number");
        assert_eq!(value.get("drain_state").unwrap().kind(), "number");
        assert_eq!(value.get("queue_depth").unwrap().kind(), "number");
    }

    #[test]
    fn repl_gauges_render_one_hot_role_and_counters() {
        let metrics = Metrics::new();
        metrics.set_repl(1, 3, 41, 2, 0);
        metrics.quorum_timeout();
        metrics.redirected();
        metrics.redirected();
        metrics.suspicion();
        metrics.suspicion();
        metrics.failover();
        metrics.repl_reconnect();
        metrics.repl_reconnect();
        metrics.repl_reconnect();
        metrics.set_repl_heartbeat_age(2_500_000);

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.repl_role, 1);
        assert_eq!(snapshot.repl_epoch, 3);
        assert_eq!(snapshot.repl_last_applied_seq, 41);
        assert_eq!(snapshot.repl_lag, 2);
        assert_eq!(snapshot.repl_quorum_timeouts_total, 1);
        assert_eq!(snapshot.redirected_total, 2);
        assert_eq!(snapshot.repl_suspicions_total, 2);
        assert_eq!(snapshot.repl_failovers_total, 1);
        assert_eq!(snapshot.repl_reconnects_total, 3);
        assert_eq!(snapshot.repl_heartbeat_age_us, 2_500_000);

        let text = snapshot.to_prometheus();
        assert!(text.contains("mine_repl_role{role=\"primary\"} 0"));
        assert!(text.contains("mine_repl_role{role=\"follower\"} 1"));
        assert!(text.contains("mine_repl_role{role=\"candidate\"} 0"));
        assert!(text.contains("mine_repl_epoch 3"));
        assert!(text.contains("mine_repl_last_applied_seq 41"));
        assert!(text.contains("mine_repl_lag 2"));
        assert!(text.contains("mine_repl_quorum_timeouts_total 1"));
        assert!(text.contains("mine_redirected_total 2"));
        assert!(text.contains("# TYPE mine_repl_failovers_total counter"));
        assert!(text.contains("mine_repl_failovers_total 1"));
        assert!(text.contains("mine_repl_suspicions_total 2"));
        assert!(text.contains("mine_repl_reconnects_total 3"));
        assert!(text.contains("# TYPE mine_repl_heartbeat_age_seconds gauge"));
        assert!(text.contains("mine_repl_heartbeat_age_seconds 2.5"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("repl_epoch").unwrap().kind(), "number");
        assert_eq!(value.get("redirected_total").unwrap().kind(), "number");
        assert_eq!(value.get("repl_failovers_total").unwrap().kind(), "number");
        assert_eq!(value.get("repl_heartbeat_age_us").unwrap().kind(), "number");
    }

    #[test]
    fn scrub_and_degraded_metrics_render_everywhere() {
        let metrics = Metrics::new();
        metrics.scrub_pass();
        metrics.scrub_pass();
        metrics.scrub_corruption(3);
        metrics.repair_segment();
        metrics.set_storage_degraded(true);

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.scrub_passes_total, 2);
        assert_eq!(snapshot.scrub_corrupt_segments_total, 3);
        assert_eq!(snapshot.repair_segments_total, 1);
        assert_eq!(snapshot.storage_degraded, 1);

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE mine_scrub_passes_total counter"));
        assert!(text.contains("mine_scrub_passes_total 2"));
        assert!(text.contains("mine_scrub_corrupt_segments_total 3"));
        assert!(text.contains("# TYPE mine_repair_segments_total counter"));
        assert!(text.contains("mine_repair_segments_total 1"));
        assert!(text.contains("# TYPE mine_storage_degraded gauge"));
        assert!(text.contains("mine_storage_degraded 1"));

        metrics.set_storage_degraded(false);
        let text = metrics.snapshot(0, 0).to_prometheus();
        assert!(text.contains("mine_storage_degraded 0"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("scrub_passes_total").unwrap().kind(), "number");
        assert_eq!(
            value.get("scrub_corrupt_segments_total").unwrap().kind(),
            "number"
        );
        assert_eq!(value.get("repair_segments_total").unwrap().kind(), "number");
        assert_eq!(value.get("storage_degraded").unwrap().kind(), "number");
    }

    #[test]
    fn analysis_histogram_is_labeled_by_mode_and_cache_outcome() {
        let metrics = Metrics::new();
        metrics.record_analysis(false, Duration::from_millis(20));
        metrics.record_analysis(false, Duration::from_millis(90));
        metrics.record_analysis(true, Duration::from_micros(40));
        metrics.record_streaming_analysis(Duration::from_micros(60));
        metrics.set_pool(4, 17);

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.analysis_cold_count, 2);
        assert_eq!(snapshot.analysis_hit_count, 1);
        assert_eq!(snapshot.analysis_streaming_count, 1);
        // 40 µs lands in the first hit bucket; cold times stay separate.
        assert_eq!(snapshot.analysis_hit_buckets[0], 1);
        assert_eq!(snapshot.analysis_cold_buckets[0], 0);
        assert_eq!(snapshot.analysis_streaming_buckets[0], 1);
        assert_eq!(snapshot.pool_workers, 4);
        assert_eq!(snapshot.pool_steals_total, 17);

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE mine_analysis_duration_seconds histogram"));
        assert!(
            text.contains("mine_analysis_duration_seconds_count{mode=\"batch\",cache=\"cold\"} 2")
        );
        assert!(
            text.contains("mine_analysis_duration_seconds_count{mode=\"batch\",cache=\"hit\"} 1")
        );
        assert!(text.contains("mine_analysis_duration_seconds_count{mode=\"streaming\"} 1"));
        // Cumulative buckets per label: both cold observations are ≤ 0.1 s.
        assert!(text.contains(
            "mine_analysis_duration_seconds_bucket{mode=\"batch\",cache=\"cold\",le=\"0.1\"} 2"
        ));
        assert!(text.contains(
            "mine_analysis_duration_seconds_bucket{mode=\"batch\",cache=\"hit\",le=\"0.0001\"} 1"
        ));
        assert!(text
            .contains("mine_analysis_duration_seconds_bucket{mode=\"streaming\",le=\"0.0001\"} 1"));
        assert!(text.contains("# TYPE mine_pool_workers gauge"));
        assert!(text.contains("mine_pool_workers 4"));
        assert!(text.contains("# TYPE mine_pool_steals_total counter"));
        assert!(text.contains("mine_pool_steals_total 17"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        let analysis = value.get("analysis_duration_us").unwrap();
        assert!(analysis.get("cold").is_some());
        assert!(analysis.get("hit").is_some());
        assert!(analysis.get("streaming").is_some());
        assert_eq!(value.get("pool_workers").unwrap().kind(), "number");
        assert_eq!(value.get("pool_steals_total").unwrap().kind(), "number");
    }

    #[test]
    fn streaming_updates_fill_counter_and_histogram() {
        let metrics = Metrics::new();
        metrics.record_streaming_update(Duration::from_micros(80));
        metrics.record_streaming_update(Duration::from_micros(400));
        metrics.record_streaming_update(Duration::from_millis(30));

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.streaming_updates_total, 3);
        assert_eq!(snapshot.streaming_update_buckets[0], 1);
        assert_eq!(snapshot.streaming_update_buckets[2], 1);
        assert_eq!(snapshot.streaming_update_sum_us, 80 + 400 + 30_000);

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE mine_streaming_update_seconds histogram"));
        assert!(text.contains("mine_streaming_update_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("mine_streaming_update_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mine_streaming_update_seconds_count 3"));
        assert!(text.contains("# TYPE mine_streaming_updates_total counter"));
        assert!(text.contains("mine_streaming_updates_total 3"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value.get("streaming_updates_total").unwrap().kind(),
            "number"
        );
        assert!(value
            .get("streaming_update_us")
            .unwrap()
            .get("buckets")
            .is_some());
    }

    #[test]
    fn adaptive_counters_and_histogram_render_everywhere() {
        let metrics = Metrics::new();
        metrics.adaptive_session_started();
        metrics.adaptive_session_started();
        metrics.adaptive_session_closed();
        metrics.record_adaptive_step(Duration::from_micros(90));
        metrics.record_adaptive_step(Duration::from_millis(40));

        let snapshot = metrics.snapshot(0, 1);
        assert_eq!(snapshot.adaptive_sessions_started, 2);
        assert_eq!(snapshot.adaptive_sessions_finished, 1);
        assert_eq!(snapshot.adaptive_sessions_active, 1);
        assert_eq!(snapshot.adaptive_steps_total, 2);
        assert_eq!(snapshot.adaptive_step_buckets[0], 1);
        assert_eq!(snapshot.adaptive_step_sum_us, 90 + 40_000);

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE mine_adaptive_step_seconds histogram"));
        assert!(text.contains("mine_adaptive_step_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("mine_adaptive_step_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mine_adaptive_steps_total 2"));
        assert!(text.contains("# TYPE mine_adaptive_sessions_active gauge"));
        assert!(text.contains("mine_adaptive_sessions_active 1"));
        assert!(text.contains("mine_adaptive_sessions_started_total 2"));
        assert!(text.contains("mine_adaptive_sessions_finished_total 1"));

        let json = serde_json::to_string(&snapshot).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("adaptive_steps_total").unwrap().kind(), "number");
        assert!(value
            .get("adaptive_step_us")
            .unwrap()
            .get("buckets")
            .is_some());
    }

    #[test]
    fn snapshot_renders_as_json() {
        let metrics = Metrics::new();
        metrics.record(Route::Metrics, 200, Duration::from_micros(10));
        let json = serde_json::to_string(&metrics.snapshot(0, 0)).unwrap();
        let value: Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("requests").is_some());
        assert!(value.get("latency_us").is_some());
        assert!(value.get("active_sessions").is_some());
    }
}
