//! A tiny blocking HTTP/1.1 client over one keep-alive connection,
//! plus a resilient wrapper that retries with exponential backoff.
//!
//! Powers the load generator and the loopback integration tests; not a
//! general-purpose client (no redirects, no TLS, no chunked encoding —
//! none of which the service emits).
//!
//! [`ResilientClient`] is the overload-aware face: it reconnects after
//! transport failures, honors the `Retry-After` of shed `503`
//! responses, and backs off with full jitter between attempts. Retries
//! are safe-only: connects and `GET`s retry on anything, but a `POST`
//! retries **only** after a `503` — the server sheds exclusively before
//! request processing (at accept, at the rate limiter, or at the
//! routing gate while draining), so a `503` proves the request had no
//! effect. A `POST` that failed in transport may have been applied and
//! is surfaced as an error instead.

use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;

/// A simple status + body pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// The `Retry-After` header (seconds), present on shed responses.
    pub retry_after: Option<u64>,
}

impl ClientResponse {
    /// Parses the body as a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error for non-JSON bodies.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        serde_json::from_str(&self.body)
    }
}

/// One keep-alive connection to the service.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Default I/O timeout for [`HttpClient::connect`].
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7400`) with the default
    /// 30-second I/O timeout.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the connection fails.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Self::with_timeout(addr, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Connects with an explicit timeout, applied to connection
    /// establishment and to both reads and writes — a host that
    /// blackholes SYNs (or a listener that never accepts) can stall the
    /// caller no longer than `timeout`, where a plain
    /// [`TcpStream::connect`] would sit in the OS default for minutes.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the connection fails or the
    /// timeout is rejected (zero is invalid).
    pub fn with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let mut last = std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("no addresses resolved for {addr}"),
        );
        let mut connected = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    connected = Some(stream);
                    break;
                }
                Err(err) => last = err,
            }
        }
        let Some(stream) = connected else {
            return Err(last);
        };
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on transport failure or a response the
    /// client cannot parse.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Sends `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on transport failure or a response the
    /// client cannot parse.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: mine\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0_usize;
        let mut retry_after = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name.trim().eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0_u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(ClientResponse {
            status,
            body,
            retry_after,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        loop {
            let mut byte = [0_u8; 1];
            match self.reader.read(&mut byte)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                _ => {
                    if byte[0] == b'\n' {
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        return String::from_utf8(line).map_err(|_| {
                            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 line")
                        });
                    }
                    line.push(byte[0]);
                }
            }
        }
    }
}

/// How [`ResilientClient`] retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (so `1` means no retries).
    pub max_attempts: u32,
    /// First backoff ceiling; doubles each attempt.
    pub base: Duration,
    /// Hard ceiling on any single sleep, backoff or `Retry-After`.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
        }
    }
}

/// Ceiling on leader moves (distinct `421` redirects) within one
/// logical request. During a failover two nodes can briefly *each*
/// believe the other is the leader; a client following every referral
/// would bounce between them burning its whole retry budget. Past this
/// many moves the chain is declared a loop and surfaced as a typed
/// error.
pub const MAX_LEADER_MOVES: u32 = 4;

/// The exponential-backoff-with-full-jitter delay before retry number
/// `attempt` (0-based): uniform over `[0, min(cap, base · 2^attempt)]`.
///
/// Full jitter decorrelates a thundering herd of shed clients: after a
/// mass 503, their retries spread over the whole window instead of
/// arriving in another synchronized wave.
#[must_use]
pub fn backoff_delay<R: Rng>(policy: &RetryPolicy, attempt: u32, rng: &mut R) -> Duration {
    let ceiling = policy
        .base
        .saturating_mul(2_u32.saturating_pow(attempt))
        .min(policy.cap);
    let micros = u64::try_from(ceiling.as_micros()).unwrap_or(u64::MAX);
    Duration::from_micros(rng.gen_range(0..=micros))
}

/// An [`HttpClient`] wrapper that reconnects and retries under the
/// safe-retry semantics described in the module docs, counting what it
/// saw so load reports can surface shed/retry totals.
#[derive(Debug)]
pub struct ResilientClient {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<HttpClient>,
    retries: u64,
    shed_seen: u64,
}

impl ResilientClient {
    /// A resilient client for `addr`; `seed` makes its jitter
    /// deterministic.
    #[must_use]
    pub fn new(addr: &str, policy: RetryPolicy, seed: u64) -> Self {
        Self::with_timeout(addr, DEFAULT_CLIENT_TIMEOUT, policy, seed)
    }

    /// [`ResilientClient::new`] with an explicit per-attempt I/O
    /// timeout.
    #[must_use]
    pub fn with_timeout(addr: &str, timeout: Duration, policy: RetryPolicy, seed: u64) -> Self {
        Self {
            addr: addr.to_string(),
            timeout,
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            rng: StdRng::seed_from_u64(seed),
            conn: None,
            retries: 0,
            shed_seen: 0,
        }
    }

    /// Retries performed so far (attempts beyond each request's first).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// `503` responses observed so far (each one carried `Retry-After`).
    #[must_use]
    pub fn shed_seen(&self) -> u64 {
        self.shed_seen
    }

    /// The address requests currently go to. Starts at the constructor
    /// argument and moves when a `421` names a new leader.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET path`, retrying on transport failure or shed.
    ///
    /// # Errors
    ///
    /// Returns the final [`std::io::Error`] once attempts are
    /// exhausted.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.send(path, None)
    }

    /// `POST path`, retrying only on shed (`503`) — a transport failure
    /// mid-`POST` may have been applied and is returned as an error.
    ///
    /// # Errors
    ///
    /// Returns the final [`std::io::Error`] once attempts are
    /// exhausted or a `POST` fails in transport.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.send(path, Some(body))
    }

    fn send(&mut self, path: &str, body: Option<&str>) -> std::io::Result<ClientResponse> {
        let mut outcome = Err(std::io::ErrorKind::NotConnected.into());
        let mut leader_moves: u32 = 0;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.retries += 1;
            }
            let client = match self.connected() {
                Ok(client) => client,
                Err(err) => {
                    // Nothing was sent; connecting again is always safe.
                    outcome = Err(err);
                    self.sleep_before_retry(attempt, None);
                    continue;
                }
            };
            match match body {
                Some(body) => client.post(path, body),
                None => client.get(path),
            } {
                Ok(response) if response.status == 503 => {
                    self.shed_seen += 1;
                    // Shed responses close the connection server-side.
                    self.conn = None;
                    let retry_after = response.retry_after;
                    outcome = Ok(response);
                    self.sleep_before_retry(attempt, retry_after);
                }
                Ok(response) if response.status == 421 => {
                    // Misdirected: a read replica named the leader. A
                    // 421 is sent *instead of* processing, so following
                    // it and resending is safe even for a POST.
                    self.conn = None;
                    let leader = response
                        .json()
                        .ok()
                        .and_then(|value| {
                            value
                                .get("leader")
                                .and_then(Value::as_str)
                                .map(str::to_string)
                        })
                        .filter(|leader| !leader.is_empty());
                    outcome = Ok(response);
                    match leader {
                        // The leader is known: go straight there, no
                        // backoff needed — unless the referrals have
                        // started to loop.
                        Some(leader) if leader != self.addr => {
                            leader_moves += 1;
                            if leader_moves > MAX_LEADER_MOVES {
                                return Err(std::io::Error::other(format!(
                                    "421 redirect loop: followed {MAX_LEADER_MOVES} leader \
                                     referrals and {leader} still redirects elsewhere"
                                )));
                            }
                            self.addr = leader;
                        }
                        // Pointed at ourselves or no leader yet
                        // (failover in progress): wait it out.
                        _ => self.sleep_before_retry(attempt, None),
                    }
                }
                Ok(response) => return Ok(response),
                Err(err) => {
                    self.conn = None;
                    if body.is_some() {
                        // A POST that died in transport may have been
                        // applied; retrying could double-submit.
                        return Err(err);
                    }
                    outcome = Err(err);
                    self.sleep_before_retry(attempt, None);
                }
            }
        }
        // Attempts exhausted: surface the last shed response (its 503
        // still tells the caller what happened) or the last error.
        outcome
    }

    fn connected(&mut self) -> std::io::Result<&mut HttpClient> {
        if self.conn.is_none() {
            self.conn = Some(HttpClient::with_timeout(&self.addr, self.timeout)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sleeps `Retry-After` (capped by the policy) when the server
    /// named a wait, a jittered backoff otherwise. No sleep after the
    /// final attempt.
    fn sleep_before_retry(&mut self, attempt: u32, retry_after_secs: Option<u64>) {
        if attempt + 1 >= self.policy.max_attempts {
            return;
        }
        let delay = match retry_after_secs {
            Some(secs) => Duration::from_secs(secs).min(self.policy.cap),
            None => backoff_delay(&self.policy, attempt, &mut self.rng),
        };
        std::thread::sleep(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn backoff_ceiling_doubles_then_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(350),
        };
        let mut rng = StdRng::seed_from_u64(7);
        // Ceilings: 100ms, 200ms, then capped at 350ms forever.
        for _ in 0..200 {
            assert!(backoff_delay(&policy, 0, &mut rng) <= Duration::from_millis(100));
            assert!(backoff_delay(&policy, 1, &mut rng) <= Duration::from_millis(200));
            assert!(backoff_delay(&policy, 2, &mut rng) <= Duration::from_millis(350));
            assert!(backoff_delay(&policy, 31, &mut rng) <= Duration::from_millis(350));
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for attempt in 0..8 {
            assert_eq!(
                backoff_delay(&policy, attempt, &mut a),
                backoff_delay(&policy, attempt, &mut b)
            );
        }
    }

    #[test]
    fn connect_timeout_bounds_a_non_accepting_listener() {
        // A listener that never accepts: once its kernel backlog is
        // full, further SYNs are dropped and only a timeout can end a
        // connect attempt. Before `connect_timeout` this sat in the OS
        // default (minutes); now it must return within the bound.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut parked = Vec::new();
        let mut saturated = false;
        for _ in 0..8192 {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(100)) {
                Ok(stream) => parked.push(stream),
                Err(_) => {
                    saturated = true;
                    break;
                }
            }
        }
        // (An exotic kernel backlog larger than the cap would leave
        // nothing to saturate; there is no timeout to regress then.)
        if !saturated {
            return;
        }
        let started = std::time::Instant::now();
        let result = HttpClient::with_timeout(&addr.to_string(), Duration::from_millis(250));
        assert!(result.is_err(), "connect into a full backlog succeeded");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "connect attempt was not bounded: {:?}",
            started.elapsed()
        );
    }

    /// One canned HTTP exchange: accept a connection, read the request,
    /// answer with `status` and `body`.
    fn one_shot_server(listener: std::net::TcpListener, status_line: &'static str, body: String) {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0_u8; 4096];
            let _ = stream.read(&mut buf);
            let response = format!(
                "HTTP/1.1 {status_line}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(response.as_bytes()).unwrap();
        });
    }

    #[test]
    fn resilient_client_follows_421_to_the_leader() {
        let leader = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let leader_addr = leader.local_addr().unwrap().to_string();
        let follower = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let follower_addr = follower.local_addr().unwrap().to_string();
        one_shot_server(
            follower,
            "421 Misdirected Request",
            format!("{{\"error\":\"follower\",\"leader\":\"{leader_addr}\"}}"),
        );
        one_shot_server(leader, "200 OK", r#"{"ok":true}"#.to_string());

        let mut client = ResilientClient::with_timeout(
            &follower_addr,
            Duration::from_secs(5),
            RetryPolicy::default(),
            1,
        );
        // Safe even for a POST: the 421 was sent instead of processing.
        let response = client.post("/sessions", "{}").unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(client.addr(), leader_addr);
    }

    /// A server that answers every connection with the same canned
    /// exchange until its listener is dropped.
    fn repeating_server(listener: std::net::TcpListener, status_line: &'static str, body: String) {
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let mut buf = [0_u8; 4096];
                let _ = stream.read(&mut buf);
                let response = format!(
                    "HTTP/1.1 {status_line}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
        });
    }

    #[test]
    fn resilient_client_caps_a_421_redirect_loop() {
        // Two nodes, mid-failover, each convinced the *other* is the
        // leader: a client following every referral would ping-pong
        // forever (or burn its whole retry budget). The chain cap turns
        // that into a typed error after MAX_LEADER_MOVES hops.
        let a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap().to_string();
        let b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let b_addr = b.local_addr().unwrap().to_string();
        repeating_server(
            a,
            "421 Misdirected Request",
            format!("{{\"error\":\"not leader\",\"leader\":\"{b_addr}\"}}"),
        );
        repeating_server(
            b,
            "421 Misdirected Request",
            format!("{{\"error\":\"not leader\",\"leader\":\"{a_addr}\"}}"),
        );

        let mut client = ResilientClient::with_timeout(
            &a_addr,
            Duration::from_secs(5),
            RetryPolicy {
                // More attempts than the chain cap: the cap must fire
                // first, not attempt exhaustion.
                max_attempts: MAX_LEADER_MOVES + 8,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            1,
        );
        let err = client.post("/sessions", "{}").unwrap_err();
        assert!(
            err.to_string().contains("redirect loop"),
            "expected the typed loop error, got: {err}"
        );
    }

    proptest! {
        /// The backoff delay never exceeds the configured cap, for any
        /// attempt number (including ones whose 2^attempt overflows)
        /// and any jitter draw.
        #[test]
        fn backoff_never_exceeds_cap(
            attempt in any::<u32>(),
            seed in any::<u64>(),
            base_ms in 1_u64..5_000,
            cap_ms in 1_u64..10_000,
        ) {
            let policy = RetryPolicy {
                max_attempts: 4,
                base: Duration::from_millis(base_ms),
                cap: Duration::from_millis(cap_ms),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let delay = backoff_delay(&policy, attempt, &mut rng);
            prop_assert!(delay <= policy.cap);
        }
    }
}
