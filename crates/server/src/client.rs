//! A tiny blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Powers the load generator and the loopback integration tests; not a
//! general-purpose client (no redirects, no TLS, no chunked encoding —
//! none of which the service emits).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

/// A simple status + body pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// Parses the body as a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error for non-JSON bodies.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        serde_json::from_str(&self.body)
    }
}

/// One keep-alive connection to the service.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Default I/O timeout for [`HttpClient::connect`].
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7400`) with the default
    /// 30-second I/O timeout.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the connection fails.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Self::with_timeout(addr, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Connects with an explicit timeout, applied to both reads and
    /// writes so a stalled server can block neither direction forever.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the connection fails or the
    /// timeout is rejected (zero is invalid).
    pub fn with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on transport failure or a response the
    /// client cannot parse.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Sends `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on transport failure or a response the
    /// client cannot parse.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: mine\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0_usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0_u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(ClientResponse { status, body })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        loop {
            let mut byte = [0_u8; 1];
            match self.reader.read(&mut byte)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                _ => {
                    if byte[0] == b'\n' {
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        return String::from_utf8(line).map_err(|_| {
                            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 line")
                        });
                    }
                    line.push(byte[0]);
                }
            }
        }
    }
}
