//! Concurrent session state: a sharded registry of live
//! [`ExamSession`]s and a store of finished [`StudentRecord`]s.
//!
//! The registry spreads sessions over a fixed set of shards, each a
//! `parking_lot::RwLock<HashMap<..>>`; a session's shard is chosen by
//! hashing its id, so operations on different sessions contend only
//! when they land on the same shard, and operations on the *same*
//! session serialize on that session's own mutex — never on a global
//! lock. Handlers get at a session through [`SessionRegistry::with`],
//! which holds the shard read lock just long enough to clone the
//! per-session `Arc`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use mine_core::{SessionId, StudentRecord};
use mine_delivery::{ExamSession, SessionCheckpoint, SessionState};

/// Default shard count — enough to keep 32+ concurrent clients off each
/// other's locks without wasting memory.
pub const DEFAULT_SHARDS: usize = 16;

/// How long a removed session's tombstone distinguishes "already
/// removed" from "never existed".
pub const DEFAULT_TOMBSTONE_TTL: Duration = Duration::from_secs(300);

/// A live session plus the server-side copy of its latest pause
/// checkpoint (the paper's `cmi.suspend_data`).
#[derive(Debug)]
pub struct SessionSlot {
    /// The in-memory sitting.
    pub session: ExamSession,
    /// Checkpoint captured at the last pause, if any.
    pub checkpoint: Option<SessionCheckpoint>,
}

/// Failure modes of registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A session with the same id is already registered.
    Duplicate(SessionId),
    /// No session with the given id.
    Missing(String),
    /// The session existed and was removed recently (its tombstone has
    /// not expired) — a repeated removal, not an unknown id, so a
    /// caller retrying a finish can treat it as success.
    AlreadyRemoved(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(id) => write!(f, "session {id} already exists"),
            RegistryError::Missing(id) => write!(f, "no session {id}"),
            RegistryError::AlreadyRemoved(id) => write!(f, "session {id} was already removed"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One shard: live slots plus tombstones of recently removed sessions,
/// behind a single lock so remove-vs-remove races resolve atomically.
#[derive(Debug, Default)]
struct ShardMap {
    live: HashMap<String, Arc<Mutex<SessionSlot>>>,
    tombstones: HashMap<String, Instant>,
}

type Shard = RwLock<ShardMap>;

/// A sharded, thread-safe map of live exam sessions.
#[derive(Debug)]
pub struct SessionRegistry {
    shards: Vec<Shard>,
    tombstone_ttl: Duration,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl SessionRegistry {
    /// Creates a registry with the given shard count (minimum 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_tombstone_ttl(shards, DEFAULT_TOMBSTONE_TTL)
    }

    /// Creates a registry with an explicit tombstone lifetime (how long
    /// [`SessionRegistry::remove`] can tell a repeated removal apart
    /// from an unknown session).
    #[must_use]
    pub fn with_tombstone_ttl(shards: usize, tombstone_ttl: Duration) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            tombstone_ttl,
        }
    }

    fn shard(&self, id: &str) -> &Shard {
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        let index = (hasher.finish() % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// Registers a freshly started session.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] when the id is taken.
    pub fn insert(&self, session: ExamSession) -> Result<SessionId, RegistryError> {
        let id = session.id().clone();
        let mut shard = self.shard(id.as_str()).write();
        if shard.live.contains_key(id.as_str()) {
            return Err(RegistryError::Duplicate(id));
        }
        // A fresh session supersedes any tombstone of its predecessor
        // (a re-sit with the same seed after a finish).
        shard.tombstones.remove(id.as_str());
        shard.live.insert(
            id.as_str().to_string(),
            Arc::new(Mutex::new(SessionSlot {
                session,
                checkpoint: None,
            })),
        );
        Ok(id)
    }

    /// Runs `f` with exclusive access to a session's slot.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Missing`] for unknown ids.
    pub fn with<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut SessionSlot) -> R,
    ) -> Result<R, RegistryError> {
        let slot = {
            let shard = self.shard(id).read();
            shard
                .live
                .get(id)
                .cloned()
                .ok_or_else(|| RegistryError::Missing(id.to_string()))?
        };
        let mut guard = slot.lock();
        Ok(f(&mut guard))
    }

    /// Removes a session (after finish), returning its slot.
    ///
    /// Removal is idempotent in the face of races: when two callers
    /// race to remove the same finished session, exactly one gets the
    /// slot and the other gets [`RegistryError::AlreadyRemoved`] (for
    /// as long as the tombstone lives), not a misleading `Missing`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::AlreadyRemoved`] when the session was
    /// removed within the tombstone TTL and [`RegistryError::Missing`]
    /// for ids never (or no longer memorably) registered.
    pub fn remove(&self, id: &str) -> Result<Arc<Mutex<SessionSlot>>, RegistryError> {
        let mut shard = self.shard(id).write();
        let ttl = self.tombstone_ttl;
        shard
            .tombstones
            .retain(|_, removed_at| removed_at.elapsed() < ttl);
        if let Some(slot) = shard.live.remove(id) {
            shard.tombstones.insert(id.to_string(), Instant::now());
            return Ok(slot);
        }
        if shard.tombstones.contains_key(id) {
            return Err(RegistryError::AlreadyRemoved(id.to_string()));
        }
        Err(RegistryError::Missing(id.to_string()))
    }

    /// Number of sessions currently registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().live.len())
            .sum()
    }

    /// Whether no session is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts sessions by lifecycle state `(active, paused)`.
    #[must_use]
    pub fn state_counts(&self) -> (usize, usize) {
        let mut active = 0;
        let mut paused = 0;
        for shard in &self.shards {
            // Clone the Arcs out so slot locks are not taken while the
            // shard lock is held (lock-ordering hygiene).
            let slots: Vec<_> = shard.read().live.values().cloned().collect();
            for slot in slots {
                match slot.lock().session.state() {
                    SessionState::Active => active += 1,
                    SessionState::Paused => paused += 1,
                    SessionState::Finished => {}
                }
            }
        }
        (active, paused)
    }

    /// Clones out every live session (with its checkpoint), sorted by
    /// session id — the deterministic basis of a durability snapshot.
    /// Callers needing a *consistent* capture must exclude concurrent
    /// mutators first (the server does so via its journal gate).
    #[must_use]
    pub fn capture(&self) -> Vec<(ExamSession, Option<SessionCheckpoint>)> {
        let mut captured = Vec::new();
        for shard in &self.shards {
            let slots: Vec<_> = shard.read().live.values().cloned().collect();
            for slot in slots {
                let guard = slot.lock();
                captured.push((guard.session.clone(), guard.checkpoint.clone()));
            }
        }
        captured.sort_by(|a, b| a.0.id().as_str().cmp(b.0.id().as_str()));
        captured
    }

    /// Drops every live session and tombstone. Used when a replication
    /// follower installs a fresh bootstrap image over whatever it held;
    /// callers must exclude concurrent mutators (the follower holds the
    /// journal write gate).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.live.clear();
            shard.tombstones.clear();
        }
    }
}

/// Finished sittings grouped by exam, ordered by student id.
///
/// The per-exam `BTreeMap` keys records by student, which makes the
/// assembled class record — and therefore the live analysis report —
/// deterministic no matter which order concurrent clients finished in.
#[derive(Debug, Default)]
pub struct FinishedStore {
    by_exam: RwLock<HashMap<String, BTreeMap<String, StudentRecord>>>,
}

impl FinishedStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Files a finished record under its exam. A student re-sitting the
    /// same exam replaces their earlier record.
    pub fn push(&self, exam: &str, record: StudentRecord) {
        self.by_exam
            .write()
            .entry(exam.to_string())
            .or_default()
            .insert(record.student.as_str().to_string(), record);
    }

    /// All records for an exam, in student-id order.
    #[must_use]
    pub fn records(&self, exam: &str) -> Vec<StudentRecord> {
        self.by_exam
            .read()
            .get(exam)
            .map(|records| records.values().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of finished sittings filed for an exam.
    #[must_use]
    pub fn count(&self, exam: &str) -> usize {
        self.by_exam.read().get(exam).map_or(0, BTreeMap::len)
    }

    /// Clones out every exam's records, sorted by exam id (records are
    /// already in student order) — the deterministic basis of a
    /// durability snapshot.
    #[must_use]
    pub fn capture(&self) -> Vec<(String, Vec<StudentRecord>)> {
        let mut exams: Vec<(String, Vec<StudentRecord>)> = self
            .by_exam
            .read()
            .iter()
            .map(|(exam, records)| (exam.clone(), records.values().cloned().collect()))
            .collect();
        exams.sort_by(|a, b| a.0.cmp(&b.0));
        exams
    }

    /// Drops every filed record (see [`SessionRegistry::clear`]).
    pub fn clear(&self) {
        self.by_exam.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::Answer;
    use mine_delivery::DeliveryOptions;
    use mine_itembank::{Exam, Problem};
    use std::time::Duration;

    fn session(student: &str, seed: u64) -> ExamSession {
        let problems = vec![Problem::true_false("q1", "Yes?", true).unwrap()];
        let exam = Exam::builder("quiz")
            .unwrap()
            .entry("q1".parse().unwrap())
            .build()
            .unwrap();
        ExamSession::start(
            &exam,
            problems,
            student.parse().unwrap(),
            DeliveryOptions {
                seed,
                ..DeliveryOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn insert_with_remove_round_trip() {
        let registry = SessionRegistry::new(4);
        let id = registry.insert(session("s1", 0)).unwrap();
        assert_eq!(registry.len(), 1);
        let answered = registry
            .with(id.as_str(), |slot| {
                slot.session
                    .answer(Answer::TrueFalse(true), Duration::from_secs(5))
                    .unwrap();
                slot.session.answered_count()
            })
            .unwrap();
        assert_eq!(answered, 1);
        registry.remove(id.as_str()).unwrap();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.with(id.as_str(), |_| ()),
            Err(RegistryError::Missing(_))
        ));
        // A second removal within the tombstone TTL is recognizably a
        // repeat, not an unknown id.
        assert!(matches!(
            registry.remove(id.as_str()),
            Err(RegistryError::AlreadyRemoved(_))
        ));
        // But an id that never existed is Missing.
        assert!(matches!(
            registry.remove("ghost"),
            Err(RegistryError::Missing(_))
        ));
    }

    #[test]
    fn racing_removals_resolve_to_one_winner_and_typed_repeats() {
        let registry = Arc::new(SessionRegistry::new(4));
        let id = registry.insert(session("s1", 0)).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let id = id.as_str().to_string();
                std::thread::spawn(move || registry.remove(&id))
            })
            .collect();
        let outcomes: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let wins = outcomes.iter().filter(|o| o.is_ok()).count();
        let repeats = outcomes
            .iter()
            .filter(|o| matches!(o, Err(RegistryError::AlreadyRemoved(_))))
            .count();
        assert_eq!(wins, 1, "exactly one remover gets the slot");
        assert_eq!(repeats, 7, "every loser sees AlreadyRemoved, never Missing");
    }

    #[test]
    fn tombstones_expire_and_are_superseded_by_reinsertion() {
        let registry = SessionRegistry::with_tombstone_ttl(2, Duration::from_millis(20));
        let id = registry.insert(session("s1", 0)).unwrap();
        registry.remove(id.as_str()).unwrap();
        assert!(matches!(
            registry.remove(id.as_str()),
            Err(RegistryError::AlreadyRemoved(_))
        ));
        std::thread::sleep(Duration::from_millis(40));
        // The tombstone has expired: the id is plain Missing again.
        assert!(matches!(
            registry.remove(id.as_str()),
            Err(RegistryError::Missing(_))
        ));
        // A re-sit with the same id clears any tombstone.
        let id = registry.insert(session("s1", 0)).unwrap();
        registry.remove(id.as_str()).unwrap();
        registry.insert(session("s1", 0)).unwrap();
        assert_eq!(registry.len(), 1);
        registry.with(id.as_str(), |_| ()).unwrap();
    }

    #[test]
    fn capture_is_sorted_and_complete() {
        let registry = SessionRegistry::new(4);
        registry.insert(session("zed", 1)).unwrap();
        let paused_id = registry.insert(session("amy", 2)).unwrap();
        registry
            .with(paused_id.as_str(), |slot| {
                let checkpoint = slot.session.pause().unwrap();
                slot.checkpoint = Some(checkpoint);
            })
            .unwrap();
        let captured = registry.capture();
        assert_eq!(captured.len(), 2);
        // Sorted by session id, checkpoints carried along.
        assert!(captured[0].0.id().as_str() < captured[1].0.id().as_str());
        let amy = captured
            .iter()
            .find(|(s, _)| s.id().as_str() == paused_id.as_str())
            .unwrap();
        assert!(amy.1.is_some());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let registry = SessionRegistry::new(4);
        registry.insert(session("s1", 0)).unwrap();
        assert!(matches!(
            registry.insert(session("s1", 0)),
            Err(RegistryError::Duplicate(_))
        ));
        // Same student, different seed → different id → fine.
        registry.insert(session("s1", 1)).unwrap();
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn state_counts_track_pause() {
        let registry = SessionRegistry::new(2);
        let a = registry.insert(session("a", 0)).unwrap();
        registry.insert(session("b", 0)).unwrap();
        registry
            .with(a.as_str(), |slot| slot.session.pause().map(|_| ()))
            .unwrap()
            .unwrap();
        assert_eq!(registry.state_counts(), (1, 1));
    }

    #[test]
    fn finished_store_orders_by_student_and_replaces_resits() {
        let store = FinishedStore::new();
        let make = |student: &str| StudentRecord::new(student.parse().unwrap(), Vec::new());
        store.push("quiz", make("zed"));
        store.push("quiz", make("amy"));
        store.push("quiz", make("zed"));
        let records = store.records("quiz");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].student.as_str(), "amy");
        assert_eq!(records[1].student.as_str(), "zed");
        assert_eq!(store.count("quiz"), 2);
        assert_eq!(store.count("other"), 0);
        assert!(store.records("other").is_empty());
        store.push("alpha", make("bob"));
        let captured = store.capture();
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].0, "alpha");
        assert_eq!(captured[1].0, "quiz");
        assert_eq!(captured[1].1.len(), 2);
    }
}
