//! A deterministic HTTP load generator: many concurrent clients each
//! driving a full sitting lifecycle against a running server.
//!
//! Every client derives its behaviour from `seed + client index`, so a
//! load run is reproducible: the same invocation sends the same
//! requests. Clients start a session, answer every question with an
//! answer of the correct *kind* (sampled from the problem summaries the
//! server returns), occasionally pause and resume, and finish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Number, Serialize, Value};

use mine_core::{Answer, OptionKey};

use crate::client::{ResilientClient, RetryPolicy};

/// What a load run should do.
#[derive(Debug, Clone)]
pub struct LoadGenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Exam to sit.
    pub exam: String,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Base seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// When set, client starts ramp linearly over this window instead
    /// of arriving all at once: client `i` delays `i · ramp / clients`.
    pub ramp: Option<Duration>,
    /// Retry policy for every client (backoff with full jitter,
    /// `Retry-After`-aware).
    pub retry: RetryPolicy,
}

impl Default for LoadGenOptions {
    fn default() -> Self {
        Self {
            addr: String::new(),
            exam: String::new(),
            clients: 1,
            seed: 0,
            ramp: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Aggregate outcome of a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadGenReport {
    /// Sittings that completed through `finish`.
    pub completed: u64,
    /// Requests sent.
    pub requests: u64,
    /// Responses with an unexpected status, plus transport errors.
    pub failures: u64,
    /// Answers submitted.
    pub answers: u64,
    /// Shed responses (`503 + Retry-After`) observed across clients.
    pub shed: u64,
    /// Retry attempts performed across clients.
    pub retries: u64,
}

/// Runs the load, blocking until every client is done.
///
/// # Errors
///
/// Returns an error string when no client could run at all (e.g. the
/// server is unreachable); individual request failures are counted in
/// the report instead.
pub fn run_loadgen(options: &LoadGenOptions) -> Result<LoadGenReport, String> {
    if options.clients == 0 {
        return Err("loadgen needs at least one client".to_string());
    }
    let completed = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let answers = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..options.clients)
        .map(|index| {
            let options = options.clone();
            let completed = Arc::clone(&completed);
            let requests = Arc::clone(&requests);
            let failures = Arc::clone(&failures);
            let answers = Arc::clone(&answers);
            let shed = Arc::clone(&shed);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                if let Some(ramp) = options.ramp {
                    // Linear ramp: client i arrives i/clients into the
                    // window, so arrival rate is constant end to end.
                    std::thread::sleep(ramp.mul_f64(index as f64 / options.clients as f64));
                }
                let mut client = ResilientClient::new(
                    &options.addr,
                    options.retry,
                    options.seed.wrapping_add(index as u64) ^ 0x6c6f_6164,
                );
                match run_client(&mut client, &options, index, &requests, &answers) {
                    Ok(()) => {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shed.fetch_add(client.shed_seen(), Ordering::Relaxed);
                retries.fetch_add(client.retries(), Ordering::Relaxed);
            })
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }

    let report = LoadGenReport {
        completed: completed.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
        answers: answers.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
    };
    if report.completed == 0 {
        return Err(format!(
            "no sitting completed against {} (is the server up?)",
            options.addr
        ));
    }
    Ok(report)
}

/// Drives one client through a complete sitting.
fn run_client(
    client: &mut ResilientClient,
    options: &LoadGenOptions,
    index: usize,
    requests: &AtomicU64,
    answers: &AtomicU64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(index as u64));
    let seed = options.seed.wrapping_add(index as u64);

    let start_body = format!(
        "{{\"exam\":{:?},\"student\":\"load-{index:04}\",\"seed\":{seed}}}",
        options.exam
    );
    requests.fetch_add(1, Ordering::Relaxed);
    let started = client
        .post("/sessions", &start_body)
        .map_err(|err| err.to_string())?;
    if started.status != 201 {
        return Err(format!("session start failed: {}", started.body));
    }
    let started = started.json().map_err(|err| err.to_string())?;
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .ok_or("start response missing session id")?
        .to_string();
    let problems = started
        .get("problems")
        .and_then(Value::as_array)
        .ok_or("start response missing problems")?
        .to_vec();

    // Pause/resume mid-sitting on a third of the clients to exercise
    // the full lifecycle under load.
    let pause_at = if index.is_multiple_of(3) {
        Some(problems.len() / 2)
    } else {
        None
    };

    for (position, summary) in problems.iter().enumerate() {
        if pause_at == Some(position) {
            requests.fetch_add(2, Ordering::Relaxed);
            let paused = client
                .post(&format!("/sessions/{session}/pause"), "")
                .map_err(|err| err.to_string())?;
            if paused.status != 200 {
                return Err(format!("pause failed: {}", paused.body));
            }
            let resumed = client
                .post(&format!("/sessions/{session}/resume"), "")
                .map_err(|err| err.to_string())?;
            if resumed.status != 200 {
                return Err(format!("resume failed: {}", resumed.body));
            }
        }
        let answer = sample_answer(&mut rng, summary)?;
        let time_spent = rng.gen_range(2.0_f64..20.0);
        let body_value = Value::Object(vec![
            ("answer".to_string(), answer.to_value()),
            (
                "time_spent_secs".to_string(),
                Value::Number(Number::Float(time_spent)),
            ),
        ]);
        let body = serde_json::to_string(&body_value).map_err(|err| err.to_string())?;
        requests.fetch_add(1, Ordering::Relaxed);
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .map_err(|err| err.to_string())?;
        if answered.status != 200 {
            return Err(format!("answer failed: {}", answered.body));
        }
        answers.fetch_add(1, Ordering::Relaxed);
    }

    requests.fetch_add(1, Ordering::Relaxed);
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .map_err(|err| err.to_string())?;
    if finished.status != 200 {
        return Err(format!("finish failed: {}", finished.body));
    }
    Ok(())
}

/// Builds an answer of the right kind for one problem summary.
fn sample_answer<R: Rng>(rng: &mut R, summary: &Value) -> Result<Answer, String> {
    let style = summary
        .get("style")
        .and_then(Value::as_str)
        .ok_or("problem summary missing style")?;
    let count = |field: &str| -> usize {
        match summary.get(field) {
            Some(Value::Number(Number::PosInt(n))) => *n as usize,
            _ => 0,
        }
    };
    Ok(match style {
        "multiple-choice" | "questionnaire" => {
            let options = count("options").max(1);
            Answer::Choice(
                OptionKey::from_index(rng.gen_range(0..options)).map_err(|err| err.to_string())?,
            )
        }
        "true-false" => Answer::TrueFalse(rng.gen_bool(0.5)),
        "essay" => Answer::Text("load-generated response".to_string()),
        "completion" => {
            let blanks = count("blanks");
            Answer::Completion(vec!["answer".to_string(); blanks])
        }
        "match" => {
            let pairs = count("pairs");
            let right = count("right").max(1);
            Answer::Match((0..pairs).map(|_| rng.gen_range(0..right)).collect())
        }
        other => return Err(format!("unknown problem style {other:?}")),
    })
}
