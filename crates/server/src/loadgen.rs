//! A deterministic HTTP load generator: many concurrent clients each
//! driving a full sitting lifecycle against a running server.
//!
//! Every client derives its behaviour from `seed + client index`, so a
//! load run is reproducible: the same invocation sends the same
//! requests. Fixed-form clients start a session, answer every question
//! with an answer of the correct *kind* (sampled from the problem
//! summaries the server returns), occasionally pause and resume, and
//! finish. Adaptive clients ([`LoadMode::Adaptive`]) simulate IRT
//! respondents instead: each draws a latent ability θ from a standard
//! normal and answers the served item correctly with probability
//! `p_correct(θ)` from the item's 3PL parameters, which requires an
//! [`AnswerKey`] built from the item bank.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Number, Serialize, Value};

use mine_core::{Answer, OptionKey};
use mine_itembank::{ProblemBody, Repository};
use mine_simulator::irt::ItemParams;

use crate::client::{ResilientClient, RetryPolicy};

/// Which sitting style the load drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Every client sits the fixed form.
    #[default]
    Fixed,
    /// Every client sits adaptively (CAT).
    Adaptive,
    /// Clients alternate: even indexes fixed, odd indexes adaptive.
    Mixed,
}

impl LoadMode {
    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns an error naming the unknown spelling.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "fixed" => Ok(Self::Fixed),
            "adaptive" => Ok(Self::Adaptive),
            "mixed" => Ok(Self::Mixed),
            other => Err(format!(
                "unknown loadgen mode {other:?} (expected fixed, adaptive, or mixed)"
            )),
        }
    }

    /// Whether the client at `index` sits adaptively under this mode.
    #[must_use]
    pub fn is_adaptive(self, index: usize) -> bool {
        match self {
            Self::Fixed => false,
            Self::Adaptive => true,
            Self::Mixed => index % 2 == 1,
        }
    }
}

/// Per-problem correct/wrong answers plus 3PL parameters, keyed by
/// problem id. Adaptive clients need this to behave like simulated
/// respondents: the server never reveals the right answer, so the key
/// is built offline from the item bank the server was loaded with.
#[derive(Debug, Clone, Default)]
pub struct AnswerKey {
    correct: BTreeMap<String, Answer>,
    wrong: BTreeMap<String, Answer>,
    params: BTreeMap<String, ItemParams>,
}

impl AnswerKey {
    /// Builds the key from every problem in the repository. Problems
    /// without a canonical correct answer (essay, questionnaire) or
    /// without a usable calibration are simply absent from the
    /// respective maps.
    #[must_use]
    pub fn from_repository(repository: &Repository) -> Self {
        let mut key = Self::default();
        for id in repository.problem_ids() {
            let Ok(problem) = repository.problem(&id) else {
                continue;
            };
            let name = id.as_str().to_string();
            if let Some(correct) = problem.body().correct_answer() {
                key.wrong.insert(name.clone(), wrong_answer(problem.body()));
                key.correct.insert(name.clone(), correct);
            }
            if let Some(calibration) = problem.calibration().filter(|c| c.is_usable()) {
                key.params.insert(
                    name,
                    ItemParams::new(
                        calibration.discrimination,
                        calibration.difficulty,
                        calibration.guessing,
                    ),
                );
            }
        }
        key
    }

    /// 3PL probability that a respondent of ability `theta` answers
    /// `problem` correctly, when the item is calibrated.
    #[must_use]
    pub fn p_correct(&self, problem: &str, theta: f64) -> Option<f64> {
        self.params.get(problem).map(|p| p.p_correct(theta))
    }

    /// A correct (or deliberately wrong) answer for `problem`. Wrong
    /// answers fall back to [`Answer::Skipped`], which always grades
    /// incorrect.
    #[must_use]
    pub fn answer_for(&self, problem: &str, correct: bool) -> Option<Answer> {
        if correct {
            self.correct.get(problem).cloned()
        } else {
            Some(self.wrong.get(problem).cloned().unwrap_or(Answer::Skipped))
        }
    }

    /// Calibrated problems in the key.
    #[must_use]
    pub fn calibrated(&self) -> usize {
        self.params.len()
    }
}

/// A deterministic wrong answer for a body with a known right one.
fn wrong_answer(body: &ProblemBody) -> Answer {
    match body {
        ProblemBody::MultipleChoice {
            options, correct, ..
        } => {
            let next = (correct.index() + 1) % options.len().max(1);
            OptionKey::from_index(next).map_or(Answer::Skipped, Answer::Choice)
        }
        ProblemBody::TrueFalse { correct, .. } => Answer::TrueFalse(!correct),
        _ => Answer::Skipped,
    }
}

/// What a load run should do.
#[derive(Debug, Clone)]
pub struct LoadGenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Exam to sit.
    pub exam: String,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Base seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// When set, client starts ramp linearly over this window instead
    /// of arriving all at once: client `i` delays `i · ramp / clients`.
    pub ramp: Option<Duration>,
    /// Retry policy for every client (backoff with full jitter,
    /// `Retry-After`-aware).
    pub retry: RetryPolicy,
    /// Which sitting style each client drives.
    pub mode: LoadMode,
    /// Answer key + item parameters; required for any adaptive client.
    pub key: Option<Arc<AnswerKey>>,
}

impl Default for LoadGenOptions {
    fn default() -> Self {
        Self {
            addr: String::new(),
            exam: String::new(),
            clients: 1,
            seed: 0,
            ramp: None,
            retry: RetryPolicy::default(),
            mode: LoadMode::Fixed,
            key: None,
        }
    }
}

/// Aggregate outcome of a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadGenReport {
    /// Sittings that completed through `finish`.
    pub completed: u64,
    /// Requests sent.
    pub requests: u64,
    /// Responses with an unexpected status, plus transport errors.
    pub failures: u64,
    /// Answers submitted.
    pub answers: u64,
    /// Shed responses (`503 + Retry-After`) observed across clients.
    pub shed: u64,
    /// Retry attempts performed across clients.
    pub retries: u64,
}

/// Runs the load, blocking until every client is done.
///
/// # Errors
///
/// Returns an error string when no client could run at all (e.g. the
/// server is unreachable); individual request failures are counted in
/// the report instead.
pub fn run_loadgen(options: &LoadGenOptions) -> Result<LoadGenReport, String> {
    if options.clients == 0 {
        return Err("loadgen needs at least one client".to_string());
    }
    if options.mode != LoadMode::Fixed && options.key.is_none() {
        return Err(format!(
            "loadgen mode {:?} needs an answer key built from the item bank",
            options.mode
        ));
    }
    let completed = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let answers = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..options.clients)
        .map(|index| {
            let options = options.clone();
            let completed = Arc::clone(&completed);
            let requests = Arc::clone(&requests);
            let failures = Arc::clone(&failures);
            let answers = Arc::clone(&answers);
            let shed = Arc::clone(&shed);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                if let Some(ramp) = options.ramp {
                    // Linear ramp: client i arrives i/clients into the
                    // window, so arrival rate is constant end to end.
                    std::thread::sleep(ramp.mul_f64(index as f64 / options.clients as f64));
                }
                let mut client = ResilientClient::new(
                    &options.addr,
                    options.retry,
                    options.seed.wrapping_add(index as u64) ^ 0x6c6f_6164,
                );
                let outcome = if options.mode.is_adaptive(index) {
                    run_adaptive_client(&mut client, &options, index, &requests, &answers)
                } else {
                    run_client(&mut client, &options, index, &requests, &answers)
                };
                match outcome {
                    Ok(()) => {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shed.fetch_add(client.shed_seen(), Ordering::Relaxed);
                retries.fetch_add(client.retries(), Ordering::Relaxed);
            })
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }

    let report = LoadGenReport {
        completed: completed.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
        answers: answers.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
    };
    if report.completed == 0 {
        return Err(format!(
            "no sitting completed against {} (is the server up?)",
            options.addr
        ));
    }
    Ok(report)
}

/// Drives one client through a complete sitting.
fn run_client(
    client: &mut ResilientClient,
    options: &LoadGenOptions,
    index: usize,
    requests: &AtomicU64,
    answers: &AtomicU64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(index as u64));
    let seed = options.seed.wrapping_add(index as u64);

    let start_body = format!(
        "{{\"exam\":{:?},\"student\":\"load-{index:04}\",\"seed\":{seed}}}",
        options.exam
    );
    requests.fetch_add(1, Ordering::Relaxed);
    let started = client
        .post("/sessions", &start_body)
        .map_err(|err| err.to_string())?;
    if started.status != 201 {
        return Err(format!("session start failed: {}", started.body));
    }
    let started = started.json().map_err(|err| err.to_string())?;
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .ok_or("start response missing session id")?
        .to_string();
    let problems = started
        .get("problems")
        .and_then(Value::as_array)
        .ok_or("start response missing problems")?
        .to_vec();

    // Pause/resume mid-sitting on a third of the clients to exercise
    // the full lifecycle under load.
    let pause_at = if index.is_multiple_of(3) {
        Some(problems.len() / 2)
    } else {
        None
    };

    for (position, summary) in problems.iter().enumerate() {
        if pause_at == Some(position) {
            requests.fetch_add(2, Ordering::Relaxed);
            let paused = client
                .post(&format!("/sessions/{session}/pause"), "")
                .map_err(|err| err.to_string())?;
            if paused.status != 200 {
                return Err(format!("pause failed: {}", paused.body));
            }
            let resumed = client
                .post(&format!("/sessions/{session}/resume"), "")
                .map_err(|err| err.to_string())?;
            if resumed.status != 200 {
                return Err(format!("resume failed: {}", resumed.body));
            }
        }
        let answer = sample_answer(&mut rng, summary)?;
        let time_spent = rng.gen_range(2.0_f64..20.0);
        let body_value = Value::Object(vec![
            ("answer".to_string(), answer.to_value()),
            (
                "time_spent_secs".to_string(),
                Value::Number(Number::Float(time_spent)),
            ),
        ]);
        let body = serde_json::to_string(&body_value).map_err(|err| err.to_string())?;
        requests.fetch_add(1, Ordering::Relaxed);
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .map_err(|err| err.to_string())?;
        if answered.status != 200 {
            return Err(format!("answer failed: {}", answered.body));
        }
        answers.fetch_add(1, Ordering::Relaxed);
    }

    requests.fetch_add(1, Ordering::Relaxed);
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .map_err(|err| err.to_string())?;
    if finished.status != 200 {
        return Err(format!("finish failed: {}", finished.body));
    }
    Ok(())
}

/// Drives one simulated IRT respondent through an adaptive sitting:
/// draws ability θ ~ N(0, 1), then answers whatever item the server
/// serves next correctly with probability `p_correct(θ)`.
fn run_adaptive_client(
    client: &mut ResilientClient,
    options: &LoadGenOptions,
    index: usize,
    requests: &AtomicU64,
    answers: &AtomicU64,
) -> Result<(), String> {
    let key = options
        .key
        .as_deref()
        .ok_or("adaptive loadgen needs an answer key")?;
    let seed = options.seed.wrapping_add(index as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7468_6574);
    // Box-Muller: two uniforms → one standard normal ability draw.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let theta = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();

    let start_body = format!(
        "{{\"exam\":{:?},\"student\":\"cat-{index:04}\",\"seed\":{seed},\"mode\":\"adaptive\"}}",
        options.exam
    );
    requests.fetch_add(1, Ordering::Relaxed);
    let started = client
        .post("/sessions", &start_body)
        .map_err(|err| err.to_string())?;
    if started.status != 201 {
        return Err(format!("adaptive start failed: {}", started.body));
    }
    let mut status = started.json().map_err(|err| err.to_string())?;
    let session = status
        .get("session")
        .and_then(Value::as_str)
        .ok_or("adaptive start response missing session id")?
        .to_string();

    loop {
        if matches!(status.get("done"), Some(Value::Bool(true))) {
            break;
        }
        let Some(current) = status.get("current") else {
            break;
        };
        let item = match current.get("id").and_then(Value::as_str) {
            Some(id) => id.to_string(),
            None => break, // current is null: nothing left to serve
        };
        let p = key
            .p_correct(&item, theta)
            .ok_or_else(|| format!("no 3PL parameters for served item {item:?}"))?;
        let is_correct = rng.gen_range(0.0_f64..1.0) < p;
        let answer = key
            .answer_for(&item, is_correct)
            .ok_or_else(|| format!("no answer key entry for served item {item:?}"))?;
        let time_spent = rng.gen_range(2.0_f64..20.0);
        let body_value = Value::Object(vec![
            ("answer".to_string(), answer.to_value()),
            (
                "time_spent_secs".to_string(),
                Value::Number(Number::Float(time_spent)),
            ),
        ]);
        let body = serde_json::to_string(&body_value).map_err(|err| err.to_string())?;
        requests.fetch_add(1, Ordering::Relaxed);
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .map_err(|err| err.to_string())?;
        if answered.status != 200 {
            return Err(format!("adaptive answer failed: {}", answered.body));
        }
        answers.fetch_add(1, Ordering::Relaxed);
        status = answered.json().map_err(|err| err.to_string())?;
    }

    requests.fetch_add(1, Ordering::Relaxed);
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .map_err(|err| err.to_string())?;
    if finished.status != 200 {
        return Err(format!("adaptive finish failed: {}", finished.body));
    }
    Ok(())
}

/// Builds an answer of the right kind for one problem summary.
fn sample_answer<R: Rng>(rng: &mut R, summary: &Value) -> Result<Answer, String> {
    let style = summary
        .get("style")
        .and_then(Value::as_str)
        .ok_or("problem summary missing style")?;
    let count = |field: &str| -> usize {
        match summary.get(field) {
            Some(Value::Number(Number::PosInt(n))) => *n as usize,
            _ => 0,
        }
    };
    Ok(match style {
        "multiple-choice" | "questionnaire" => {
            let options = count("options").max(1);
            Answer::Choice(
                OptionKey::from_index(rng.gen_range(0..options)).map_err(|err| err.to_string())?,
            )
        }
        "true-false" => Answer::TrueFalse(rng.gen_bool(0.5)),
        "essay" => Answer::Text("load-generated response".to_string()),
        "completion" => {
            let blanks = count("blanks");
            Answer::Completion(vec!["answer".to_string(); blanks])
        }
        "match" => {
            let pairs = count("pairs");
            let right = count("right").max(1);
            Answer::Match((0..pairs).map(|_| rng.gen_range(0..right)).collect())
        }
        other => return Err(format!("unknown problem style {other:?}")),
    })
}
