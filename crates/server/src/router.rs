//! Transport-agnostic request routing: `Request → Response` over shared
//! service state, no sockets anywhere.
//!
//! [`Router::handle`] is the whole service: the TCP serve loop feeds it
//! parsed [`Request`]s, unit tests construct [`Request`]s directly.
//! Every handler is a pure function of (state, request), so the full
//! endpoint surface is testable in-process.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Number, Serialize, Value};

use mine_adaptive::AdaptiveOptions;
use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{Answer, ExamRecord};
use mine_delivery::{DeliveryError, DeliveryOptions, ExamSession, SessionState};
use mine_itembank::{Problem, ProblemBody, Repository};
use mine_streamstats::StreamEngine;

use crate::adaptive::{
    AdaptiveAnswerError, AdaptiveLookup, AdaptiveRegistry, AdaptiveSitting, AdaptiveStartError,
};
use crate::drain::Lifecycle;
use crate::http::{Request, Response};
use crate::journal::{Journal, ServerImage, SessionEvent};
use crate::metrics::{Metrics, Route};
use crate::registry::{FinishedStore, RegistryError, SessionRegistry};
use crate::repl::{ReplState, Role};

/// Retry-After advertised on writes shed while storage is degraded:
/// long enough that clients back off, short enough that a healed node
/// picks traffic back up promptly.
const DEGRADED_RETRY_SECS: u64 = 2;

/// Storage health shared by the handlers, the replication shipper, and
/// the background healer. Degraded means the WAL refused a write
/// (ENOSPC, fsync failure): the node keeps serving reads but sheds
/// writes with `503 + Retry-After` until [`mine_store::EventStore::try_heal`]
/// succeeds. Deliberately separate from [`Lifecycle`]: draining sheds
/// *everything* and never comes back; degraded sheds only writes and
/// self-recovers.
#[derive(Debug, Default)]
pub struct StorageHealth {
    /// Lock-free flag for the hot paths (dispatch gate, ship loop).
    degraded: std::sync::atomic::AtomicBool,
    /// Why the storage is degraded (the store error text), for
    /// `/healthz` and shed bodies.
    reason: parking_lot::Mutex<Option<String>>,
    /// Guards the single background healer thread.
    healer: std::sync::atomic::AtomicBool,
}

impl StorageHealth {
    /// Whether the WAL is currently refusing writes.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The degradation cause, when degraded.
    #[must_use]
    pub fn reason(&self) -> Option<String> {
        self.reason.lock().clone()
    }

    /// Flags the storage degraded with `reason`. Returns whether this
    /// call flipped the flag (first observer spawns the healer).
    pub fn degrade(&self, reason: String) -> bool {
        *self.reason.lock() = Some(reason);
        !self
            .degraded
            .swap(true, std::sync::atomic::Ordering::AcqRel)
    }

    /// Clears the degraded flag after a successful heal.
    pub fn clear(&self) {
        *self.reason.lock() = None;
        self.degraded
            .store(false, std::sync::atomic::Ordering::Release);
    }

    fn claim_healer(&self) -> bool {
        !self.healer.swap(true, std::sync::atomic::Ordering::AcqRel)
    }

    fn release_healer(&self) {
        self.healer
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// Everything the handlers share.
#[derive(Debug)]
pub struct ServerState {
    /// The item/exam database sittings are started from.
    pub repository: Repository,
    /// Live sessions.
    pub registry: SessionRegistry,
    /// Live adaptive (CAT) sittings — a separate registry because the
    /// lifecycle (one item at a time, no pause, estimator on the hot
    /// path) shares nothing with `ExamSession` slots. Session-id
    /// formats are disjoint (`~` vs `#`), so shared `/sessions/{id}`
    /// routes dispatch by which registry claims the id.
    pub adaptive: AdaptiveRegistry,
    /// Finished records, grouped per exam for live analysis.
    pub finished: FinishedStore,
    /// The §4 pipeline with its fingerprint-keyed cache (the
    /// `?mode=batch` escape hatch and the fallback for unstreamable
    /// inputs).
    pub analyzer: BatchAnalyzer,
    /// Running sufficient statistics per exam: finish-time updates in
    /// O(1 + re-assignments), analysis reads assembled from counters.
    /// Must share the analyzer's [`AnalysisConfig`] so both modes
    /// compute the same report.
    pub stream: Arc<StreamEngine>,
    /// Service counters.
    pub metrics: Metrics,
    /// The write-ahead log, when `--data-dir` durability is on.
    pub journal: Option<Journal>,
    /// Replication role and plumbing, when `--repl-addr` /
    /// `--replica-of` is on. Requires a journal.
    pub repl: Option<Arc<ReplState>>,
    /// Where the server is in its lifecycle; while draining, every
    /// route except `/healthz` and `/metrics` is shed with
    /// `503 + Retry-After`.
    pub lifecycle: Lifecycle,
    /// Whether the WAL currently accepts writes; degraded sheds writes
    /// (read-only) until the healer clears it.
    pub storage: StorageHealth,
    /// The scrubber's most recent pass (per-window range hashes and
    /// segment verdicts).
    pub integrity: crate::scrub::IntegrityTable,
    /// Serializes `Created` journaling with registry insertion so a
    /// session's `Created` event always precedes its other events in
    /// the log (two racing starts of the same id would otherwise be
    /// able to interleave append and insert).
    create_lock: parking_lot::Mutex<()>,
}

impl ServerState {
    /// Builds service state around a repository (memory-only: no
    /// journal).
    #[must_use]
    pub fn new(repository: Repository) -> Self {
        let config = AnalysisConfig::default();
        Self {
            repository,
            registry: SessionRegistry::default(),
            adaptive: AdaptiveRegistry::new(),
            finished: FinishedStore::new(),
            analyzer: BatchAnalyzer::new(config),
            stream: Arc::new(StreamEngine::new(config)),
            metrics: Metrics::new(),
            journal: None,
            repl: None,
            lifecycle: Lifecycle::new(),
            storage: StorageHealth::default(),
            integrity: crate::scrub::IntegrityTable::default(),
            create_lock: parking_lot::Mutex::new(()),
        }
    }
}

/// Maps requests to handlers over shared [`ServerState`].
#[derive(Debug, Clone)]
pub struct Router {
    state: Arc<ServerState>,
}

/// A handler failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message, returned as `{"error": …}`.
    pub message: String,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, message)
    }

    fn conflict(message: impl Into<String>) -> Self {
        Self::new(409, message)
    }
}

impl From<DeliveryError> for ApiError {
    fn from(err: DeliveryError) -> Self {
        let status = match &err {
            DeliveryError::InvalidOptions { .. } => 400,
            DeliveryError::WrongState { .. }
            | DeliveryError::TimeExpired
            | DeliveryError::NotResumable
            | DeliveryError::OutOfBounds => 409,
            DeliveryError::Grading(_) => 422,
            _ => 500,
        };
        Self::new(status, err.to_string())
    }
}

impl From<RegistryError> for ApiError {
    fn from(err: RegistryError) -> Self {
        match &err {
            RegistryError::Duplicate(_) => Self::conflict(err.to_string()),
            RegistryError::Missing(_) => Self::not_found(err.to_string()),
            // The session existed but is gone — 410, not 404.
            RegistryError::AlreadyRemoved(_) => Self::new(410, err.to_string()),
        }
    }
}

impl From<AdaptiveLookup> for ApiError {
    fn from(err: AdaptiveLookup) -> Self {
        match err {
            AdaptiveLookup::Missing => Self::not_found("no adaptive sitting with that id"),
            AdaptiveLookup::Gone => Self::new(410, "adaptive sitting already finished"),
            AdaptiveLookup::Duplicate => {
                Self::conflict("an adaptive sitting with that id already exists")
            }
        }
    }
}

impl From<AdaptiveAnswerError> for ApiError {
    fn from(err: AdaptiveAnswerError) -> Self {
        match err {
            AdaptiveAnswerError::Complete => Self::conflict(
                "the stop rule has fired; the sitting only accepts POST /sessions/{id}/finish",
            ),
            AdaptiveAnswerError::Grading(message) => Self::new(422, message),
        }
    }
}

type ApiResult = Result<Response, ApiError>;

impl Router {
    /// A router over fresh state for the given repository.
    #[must_use]
    pub fn new(repository: Repository) -> Self {
        Self::with_state(ServerState::new(repository))
    }

    /// A router over pre-built state (e.g. recovered from a journal by
    /// [`crate::journal::open_journaled_state`]).
    #[must_use]
    pub fn with_state(state: ServerState) -> Self {
        Self {
            state: Arc::new(state),
        }
    }

    /// The shared state (for metrics rendering and tests).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Dispatches one request, recording metrics (route counter, status
    /// class, latency).
    #[must_use]
    pub fn handle(&self, request: &Request) -> Response {
        let started = Instant::now();
        let (route, result) = self.dispatch(request);
        let response = result.unwrap_or_else(|err| {
            // The very request whose journal append degraded the store
            // gets the same `Retry-After` contract as every later
            // write shed at dispatch.
            let retry_after = (err.status == 503 && self.state.storage.is_degraded())
                .then_some(DEGRADED_RETRY_SECS);
            let mut response = Response::json(
                err.status,
                serde_json::to_string(&Value::Object(vec![(
                    "error".to_string(),
                    Value::String(err.message),
                )]))
                .expect("error body serializes"),
            );
            if let Some(secs) = retry_after {
                response = response.with_retry_after(secs);
            }
            response
        });
        self.state
            .metrics
            .record(route, response.status, started.elapsed());
        self.maybe_compact();
        response
    }

    /// Writes a compacting snapshot when enough events have
    /// accumulated. The write gate excludes every mutating handler, so
    /// the captured [`ServerImage`] is consistent with the log. The
    /// replication follower calls this too — it journals every applied
    /// record, so its log compacts on the same cadence.
    pub(crate) fn maybe_compact(&self) {
        let Some(journal) = &self.state.journal else {
            return;
        };
        if !journal.due_for_snapshot() {
            return;
        }
        let _gate = journal.gate_write();
        // Double-check: another worker may have compacted while this
        // one waited for the gate.
        if !journal.due_for_snapshot() {
            return;
        }
        let image = ServerImage::capture(
            &self.state.registry,
            &self.state.finished,
            &self.state.adaptive,
        );
        if let Err(err) = journal.write_snapshot(&image) {
            // A failed snapshot is not fatal: the log is intact and
            // compaction will be retried after the next mutation.
            eprintln!("[mine-serve] snapshot failed (log kept): {err}");
        }
    }

    /// Maps a journal append failure to a `503` and flips the node into
    /// degraded (read-only) serving: the mutation is not applied —
    /// WAL-first means memory never runs ahead of the log — and
    /// subsequent writes are shed at the dispatch gate until the
    /// background healer gets the WAL to accept a truncate + flush
    /// again. A disk that fills up no longer takes the node down with
    /// it; reads, `/metrics`, and `/healthz` stay live throughout.
    fn journal_failed(&self, err: &mine_store::StoreError) -> ApiError {
        let reason = format!("journal append failed: {err}");
        if self.state.storage.degrade(reason.clone()) {
            self.state.metrics.set_storage_degraded(true);
            eprintln!("[mine-serve] storage degraded (read-only): {reason}");
            self.spawn_healer();
        }
        ApiError::new(503, format!("storage degraded: {reason}"))
    }

    /// Starts the self-recovery loop: retry the append seam
    /// ([`mine_store::EventStore::try_heal`]) with exponential backoff
    /// until the disk accepts writes again, then clear the degraded
    /// flag so the dispatch gate resumes admitting writes. At most one
    /// healer runs at a time.
    fn spawn_healer(&self) {
        if !self.state.storage.claim_healer() {
            return;
        }
        let router = self.clone();
        std::thread::spawn(move || loop {
            let mut backoff = Duration::from_millis(50);
            while router.state.storage.is_degraded() {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                let Some(journal) = &router.state.journal else {
                    break;
                };
                if journal.store().try_heal().is_ok() {
                    break;
                }
            }
            router.state.storage.clear();
            router.state.metrics.set_storage_degraded(false);
            eprintln!("[mine-serve] storage healed: resuming writes");
            router.state.storage.release_healer();
            // A failure between the clear and the release could have
            // lost the claim race; re-claim and keep healing.
            if router.state.storage.is_degraded() && router.state.storage.claim_healer() {
                continue;
            }
            break;
        });
    }

    /// Journals one event and ships it to connected followers. Under
    /// `ack=quorum` this blocks (bounded) until a follower confirms
    /// durability; the record is already in the local WAL either way.
    fn journal_event(&self, journal: &Journal, event: &SessionEvent) -> Result<(), ApiError> {
        let payload = serde_json::to_string(event)
            .map_err(|err| ApiError::new(500, format!("event failed to serialize: {err}")))?;
        match &self.state.repl {
            Some(repl) => {
                repl.append_and_publish(journal, payload.as_bytes(), &self.state.metrics)
                    .map_err(|err| self.journal_failed(&err))?;
            }
            None => {
                journal
                    .append_raw(payload.as_bytes())
                    .map_err(|err| self.journal_failed(&err))?;
            }
        }
        Ok(())
    }

    /// Whether this node must redirect writes elsewhere.
    fn not_leader(&self) -> bool {
        self.state
            .repl
            .as_ref()
            .is_some_and(|repl| repl.role() != Role::Primary)
    }

    fn dispatch(&self, request: &Request) -> (Route, ApiResult) {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => (Route::Healthz, self.healthz()),
            ("GET", ["metrics"]) => (Route::Metrics, self.metrics(request)),
            // While draining, everything but the two observability
            // routes above is shed; requests already past this gate run
            // to completion (never mid-session).
            _ if self.state.lifecycle.is_draining() => {
                let secs = self.state.lifecycle.retry_after_secs();
                self.state.metrics.shed(secs);
                (Route::Shed, Ok(Response::shed("server is draining", secs)))
            }
            ("POST", ["admin", "promote"]) => (Route::Promote, self.promote()),
            ("POST", ["admin", "demote"]) => (Route::Demote, self.demote(request)),
            ("GET", ["admin", "ranges"]) => (Route::AdminRanges, self.admin_ranges()),
            // While storage is degraded the node serves read-only:
            // writes are shed with `503 + Retry-After` naming the
            // cause, reads and observability stay live, and the
            // background healer lifts the gate once the WAL accepts
            // writes again.
            ("POST", ["sessions", ..]) if self.state.storage.is_degraded() => {
                let reason = self
                    .state
                    .storage
                    .reason()
                    .unwrap_or_else(|| "storage degraded".to_string());
                self.state.metrics.shed(DEGRADED_RETRY_SECS);
                (
                    Route::Shed,
                    Ok(Response::shed(
                        &format!("storage degraded (read-only): {reason}"),
                        DEGRADED_RETRY_SECS,
                    )),
                )
            }
            // A follower is a read replica: every write is answered
            // with 421 naming the leader. Reads fall through.
            ("POST", ["sessions", ..]) if self.not_leader() => {
                self.state.metrics.redirected();
                (Route::Redirected, self.redirect_to_leader())
            }
            ("POST", ["sessions"]) => (Route::SessionStart, self.start_session(request)),
            ("GET", ["sessions", id]) => (Route::SessionStatus, self.session_status(id)),
            ("POST", ["sessions", id, "answers"]) => (Route::Answer, self.answer(id, request)),
            ("POST", ["sessions", id, "pause"]) => (Route::Pause, self.pause(id)),
            ("POST", ["sessions", id, "resume"]) => (Route::Resume, self.resume(id)),
            ("POST", ["sessions", id, "finish"]) => (Route::Finish, self.finish(id)),
            ("GET", ["exams", id, "analysis"]) => (Route::Analysis, self.analysis(id, request)),
            (_, ["healthz" | "metrics"])
            | (_, ["admin", ..])
            | (_, ["sessions", ..])
            | (_, ["exams", ..]) => (
                Route::Unmatched,
                Err(ApiError::new(405, format!("method {method} not allowed"))),
            ),
            _ => (
                Route::Unmatched,
                Err(ApiError::not_found(format!(
                    "no route for {} {}",
                    method, request.path
                ))),
            ),
        }
    }

    /// `GET /healthz`: `200` while running, `503` once drain begins —
    /// the flip a load balancer watches to rotate traffic away. The
    /// body also carries the replication coordinates (`role`, `epoch`,
    /// `last_applied_seq`) a failover supervisor needs to pick the most
    /// caught-up follower to promote.
    fn healthz(&self) -> ApiResult {
        let state = self.state.lifecycle.state();
        let status = if self.state.lifecycle.is_draining() {
            503
        } else {
            200
        };
        let role = self
            .state
            .repl
            .as_ref()
            .map_or(Role::Primary, |repl| repl.role());
        let (epoch, last_applied) = match &self.state.journal {
            Some(journal) => (journal.store().epoch(), journal.store().next_seq() - 1),
            None => (mine_store::INITIAL_EPOCH, 0),
        };
        let storage = if self.state.storage.is_degraded() {
            "degraded"
        } else {
            "ok"
        };
        Ok(ok_json(
            status,
            Value::Object(vec![
                (
                    "status".to_string(),
                    Value::String(state.label().to_string()),
                ),
                ("role".to_string(), Value::String(role.label().to_string())),
                ("epoch".to_string(), epoch.to_value()),
                ("last_applied_seq".to_string(), last_applied.to_value()),
                ("storage".to_string(), Value::String(storage.to_string())),
            ]),
        ))
    }

    /// `GET /metrics` serves the Prometheus text exposition format;
    /// `GET /metrics?format=json` keeps the original JSON payload.
    fn metrics(&self, request: &Request) -> ApiResult {
        self.refresh_repl_gauges();
        let pool = mine_pool::stats();
        self.state
            .metrics
            .set_pool(pool.workers as u64, pool.steals);
        let snapshot = self
            .state
            .metrics
            .snapshot(self.state.registry.len(), self.state.adaptive.len());
        let wants_json = request
            .query
            .as_deref()
            .is_some_and(|query| query.split('&').any(|pair| pair == "format=json"));
        if wants_json {
            return Ok(ok_json(200, snapshot.to_value()));
        }
        Ok(Response::prometheus(200, snapshot.to_prometheus()))
    }

    /// Folds the live replication position into the metrics gauges so
    /// a scrape sees current values. On the primary, lag is how far the
    /// slowest connected follower trails the local head; on a follower,
    /// how far the local head trails the leader's last advertised one.
    fn refresh_repl_gauges(&self) {
        let (Some(repl), Some(journal)) = (&self.state.repl, &self.state.journal) else {
            return;
        };
        let head = journal.store().next_seq() - 1;
        let role = repl.role();
        let (lag, followers) = if role == Role::Primary {
            let lag = repl
                .hub()
                .min_acked()
                .map_or(0, |min| head.saturating_sub(min));
            (lag, repl.hub().count() as u64)
        } else {
            (repl.leader_head().saturating_sub(head), 0)
        };
        self.state
            .metrics
            .set_repl(role.gauge(), journal.store().epoch(), head, lag, followers);
        // Heartbeat age: 0 on the primary (it is its own leader), time
        // since the last leader frame on a follower.
        let age_us = if role == Role::Primary {
            0
        } else {
            repl.leader_contact_age()
                .map_or(0, |age| u64::try_from(age.as_micros()).unwrap_or(u64::MAX))
        };
        self.state.metrics.set_repl_heartbeat_age(age_us);
    }

    /// The epoch-fenced promotion sequence shared by `POST
    /// /admin/promote` (supervised) and the auto-failover detector
    /// (unsupervised): stop following, bump the durable epoch past the
    /// old leader's, start serving writes. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Returns a message when replication/journaling is not configured,
    /// this node is already the primary, or the epoch bump fails to
    /// persist (the role is restored to follower in that last case, so
    /// a node that cannot fence itself never serves writes).
    pub fn promote_follower(&self) -> Result<u64, String> {
        let Some(repl) = &self.state.repl else {
            return Err("replication is not enabled".to_string());
        };
        let Some(journal) = &self.state.journal else {
            return Err("replication requires a journal".to_string());
        };
        if repl.role() == Role::Primary {
            return Err("already the primary".to_string());
        }
        // Candidate first: the write guard starts refusing writes as
        // "not yet the leader" rather than racing the epoch bump.
        repl.set_role(Role::Candidate);
        repl.stop_puller();
        // The puller applies records under the read gate; taking the
        // write gate waits out any in-flight apply, so nothing from the
        // old stream lands after the bump.
        let _gate = journal.gate_write();
        let epoch = journal.store().epoch() + 1;
        if let Err(err) = journal.store().set_epoch(epoch) {
            repl.set_role(Role::Follower);
            return Err(format!("epoch bump failed: {err}"));
        }
        repl.set_role(Role::Primary);
        Ok(epoch)
    }

    /// `POST /admin/promote`: supervised failover. Stops following,
    /// bumps the durable epoch past the old leader's, and starts
    /// serving writes. The epoch bump is what fences the deposed
    /// primary — its records and its `Welcome` now carry a lower epoch
    /// and are refused everywhere.
    fn promote(&self) -> ApiResult {
        if self.state.repl.is_none() {
            return Err(ApiError::conflict("replication is not enabled"));
        }
        if self.state.journal.is_none() {
            return Err(ApiError::new(500, "replication requires a journal"));
        }
        let epoch = self.promote_follower().map_err(|reason| {
            if reason == "already the primary" {
                ApiError::conflict(reason)
            } else {
                ApiError::new(500, reason)
            }
        })?;
        let journal = self.state.journal.as_ref().expect("checked above");
        Ok(ok_json(
            200,
            Value::Object(vec![
                ("role".to_string(), Value::String("primary".to_string())),
                ("epoch".to_string(), epoch.to_value()),
                (
                    "last_applied_seq".to_string(),
                    (journal.store().next_seq() - 1).to_value(),
                ),
            ]),
        ))
    }

    /// `POST /admin/demote`: stand down behind a newer epoch. Sent by a
    /// freshly auto-promoted primary to its peers (best-effort); also
    /// usable by a supervisor. The body names the fencing epoch and the
    /// new leader: `{"epoch": N, "leader": "host:port"}`. A demote
    /// carrying an epoch at or below the local one is refused with
    /// `409` — only genuinely newer leadership can depose a node, so a
    /// delayed or replayed demote from an older failover is harmless.
    fn demote(&self, request: &Request) -> ApiResult {
        let Some(repl) = &self.state.repl else {
            return Err(ApiError::conflict("replication is not enabled"));
        };
        let Some(journal) = &self.state.journal else {
            return Err(ApiError::new(500, "replication requires a journal"));
        };
        let body = parse_body(request)?;
        let epoch = match body.get("epoch") {
            Some(Value::Number(Number::PosInt(n))) => *n,
            _ => return Err(ApiError::bad_request("field `epoch` must be a number")),
        };
        let leader = body
            .get("leader")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        // Same fencing discipline as promotion: the write gate waits
        // out in-flight appends, so no write straddles the epoch flip.
        let _gate = journal.gate_write();
        let local = journal.store().epoch();
        if epoch <= local {
            return Err(ApiError::conflict(format!(
                "refusing demote: epoch {epoch} is not ahead of local {local}"
            )));
        }
        journal
            .store()
            .set_epoch(epoch)
            .map_err(|err| ApiError::new(500, format!("epoch adopt failed: {err}")))?;
        repl.set_role(Role::Follower);
        if !leader.is_empty() {
            repl.set_leader_addr(leader);
        }
        // The new leader just spoke to us; re-arm the failure detector.
        repl.note_leader_contact();
        Ok(ok_json(
            200,
            Value::Object(vec![
                ("role".to_string(), Value::String("follower".to_string())),
                ("epoch".to_string(), epoch.to_value()),
            ]),
        ))
    }

    /// `GET /admin/ranges`: the anti-entropy integrity table — the
    /// node's per-window range hashes over its sealed WAL segments,
    /// plus the coordinates a peer needs to compare safely (`epoch` for
    /// fencing, `head_seq` to bound the comparison to the acked
    /// prefix). A follower whose hashes disagree with its leader's
    /// inside the shared prefix quarantines the divergent segment and
    /// re-syncs through the bootstrap snapshot path.
    fn admin_ranges(&self) -> ApiResult {
        let Some(journal) = &self.state.journal else {
            return Err(ApiError::conflict(
                "durability is not enabled (no --data-dir)",
            ));
        };
        let store = journal.store();
        // The read gate admits concurrent handlers but excludes the
        // compactor, so segments cannot be deleted mid-scan; the active
        // segment is excluded from hashing by construction.
        let _gate = journal.gate_read();
        let report = mine_store::scrub_dir(store.dir(), Some(&store.active_segment()))
            .map_err(|err| ApiError::new(500, format!("scrub failed: {err}")))?;
        let role = self
            .state
            .repl
            .as_ref()
            .map_or(Role::Primary, |repl| repl.role());
        Ok(ok_json(200, ranges_body(&report, store, role)))
    }

    /// The 421 answer a follower gives every write: the client should
    /// retry at `leader` (empty when the leader is not yet known).
    fn redirect_to_leader(&self) -> ApiResult {
        let leader = self
            .state
            .repl
            .as_ref()
            .and_then(|repl| repl.leader_addr())
            .unwrap_or_default();
        Ok(ok_json(
            421,
            Value::Object(vec![
                (
                    "error".to_string(),
                    Value::String(
                        "this node is a read replica; writes go to the leader".to_string(),
                    ),
                ),
                ("leader".to_string(), Value::String(leader)),
            ]),
        ))
    }

    /// `POST /sessions` — dispatches on the optional `"mode"` field:
    /// absent or `"fixed"` starts a fixed-form sitting, `"adaptive"` a
    /// CAT sitting.
    fn start_session(&self, request: &Request) -> ApiResult {
        let body = parse_body(request)?;
        match body.get("mode") {
            None | Some(Value::Null) => self.start_fixed(&body),
            Some(Value::String(mode)) if mode == "fixed" => self.start_fixed(&body),
            Some(Value::String(mode)) if mode == "adaptive" => self.start_adaptive(&body),
            Some(Value::String(mode)) => Err(ApiError::bad_request(format!(
                "unknown session mode {mode:?} (expected \"fixed\" or \"adaptive\")"
            ))),
            Some(other) => Err(ApiError::bad_request(format!(
                "field `mode` must be a string, found {}",
                other.kind()
            ))),
        }
    }

    fn start_fixed(&self, body: &Value) -> ApiResult {
        let exam_id = require_str(body, "exam")?;
        let student = require_str(body, "student")?;
        let options = DeliveryOptions {
            seed: optional_u64(body, "seed")?.unwrap_or(0),
            resumable: optional_bool(body, "resumable")?.unwrap_or(true),
            time_accommodation: optional_f64(body, "time_accommodation")?.unwrap_or(1.0),
        };
        let (exam, problems) = self
            .state
            .repository
            .resolve_exam(
                &exam_id
                    .parse()
                    .map_err(|err| ApiError::bad_request(format!("bad exam id: {err}")))?,
            )
            .map_err(|err| ApiError::not_found(err.to_string()))?;
        let student = student
            .parse()
            .map_err(|err| ApiError::bad_request(format!("bad student id: {err}")))?;
        let session = ExamSession::start(&exam, problems.clone(), student, options)?;
        let body = session_started_body(&session, &problems);
        match &self.state.journal {
            Some(journal) => {
                let _gate = journal.gate_read();
                // The create lock makes append+insert atomic with
                // respect to other creators, so a `Created` event can
                // never land in the log *after* one of its session's
                // other events.
                let _create = self.state.create_lock.lock();
                self.journal_event(
                    journal,
                    &SessionEvent::Created {
                        exam: exam.id().clone(),
                        student: session.student().clone(),
                        options: session.options().clone(),
                    },
                )?;
                self.state.registry.insert(session)?;
            }
            None => {
                self.state.registry.insert(session)?;
            }
        }
        self.state.metrics.session_started();
        Ok(ok_json(201, body))
    }

    /// `POST /sessions` with `"mode": "adaptive"`: starts a CAT sitting
    /// serving one item at a time. Parameter or calibration problems
    /// answer `422` with the offending field named in the body.
    fn start_adaptive(&self, body: &Value) -> ApiResult {
        let exam_id = require_str(body, "exam")?;
        let student = require_str(body, "student")?;
        let (exam, problems) = self
            .state
            .repository
            .resolve_exam(
                &exam_id
                    .parse()
                    .map_err(|err| ApiError::bad_request(format!("bad exam id: {err}")))?,
            )
            .map_err(|err| ApiError::not_found(err.to_string()))?;
        let defaults = AdaptiveOptions::for_bank(problems.len());
        let as_count = |value: u64| usize::try_from(value).unwrap_or(usize::MAX);
        let options = AdaptiveOptions {
            seed: optional_u64(body, "seed")?.unwrap_or(defaults.seed),
            min_items: optional_u64(body, "min_items")?.map_or(defaults.min_items, as_count),
            max_items: optional_u64(body, "max_items")?.map_or(defaults.max_items, as_count),
            se_threshold: optional_f64(body, "se_threshold")?.unwrap_or(defaults.se_threshold),
        };
        let student = student
            .parse()
            .map_err(|err| ApiError::bad_request(format!("bad student id: {err}")))?;
        let mut sitting =
            match AdaptiveSitting::start(exam.id().clone(), problems, student, options) {
                Ok(sitting) => sitting,
                Err(err) => return Ok(adaptive_rejection(&err)),
            };
        let started_body = adaptive_started_body(&mut sitting);
        match &self.state.journal {
            Some(journal) => {
                let _gate = journal.gate_read();
                // Same ordering guarantee as fixed-form Created events.
                let _create = self.state.create_lock.lock();
                self.journal_event(
                    journal,
                    &SessionEvent::AdaptiveCreated {
                        exam: exam.id().clone(),
                        student: sitting.student().clone(),
                        options,
                    },
                )?;
                self.state.adaptive.insert(sitting)?;
            }
            None => {
                self.state.adaptive.insert(sitting)?;
            }
        }
        self.state.metrics.adaptive_session_started();
        Ok(ok_json(201, started_body))
    }

    fn session_status(&self, id: &str) -> ApiResult {
        if self.state.adaptive.routes(id) {
            let status = self.state.adaptive.with(id, adaptive_status_body)?;
            return Ok(ok_json(200, status));
        }
        let status = self
            .state
            .registry
            .with(id, |slot| session_status_body(&slot.session))?;
        Ok(ok_json(200, status))
    }

    /// `POST /sessions/{id}/answers` on an adaptive sitting: journal
    /// the step WAL-first, grade, re-estimate, select the next item.
    fn adaptive_answer(&self, id: &str, request: &Request) -> ApiResult {
        let body = parse_body(request)?;
        let answer_value = body
            .get("answer")
            .ok_or_else(|| ApiError::bad_request("missing field `answer`"))?;
        let answer = Answer::from_value(answer_value)
            .map_err(|err| ApiError::bad_request(format!("bad answer: {err}")))?;
        let secs = optional_f64(&body, "time_spent_secs")?.unwrap_or(0.0);
        if !secs.is_finite() || secs < 0.0 {
            return Err(ApiError::bad_request(format!(
                "time_spent_secs must be a non-negative finite number, got {secs}"
            )));
        }
        let time_spent = Duration::try_from_secs_f64(secs)
            .map_err(|err| ApiError::bad_request(format!("bad time_spent_secs: {err}")))?;
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let step_started = Instant::now();
        let status = self.state.adaptive.with(id, |sitting| {
            if sitting.is_done() {
                // Rejected before journaling: a complete sitting's log
                // must end at its last accepted step.
                return Err(ApiError::from(AdaptiveAnswerError::Complete));
            }
            if let Some(journal) = journal {
                self.journal_event(
                    journal,
                    &SessionEvent::AdaptiveStep {
                        session: id.to_string(),
                        answer: answer.clone(),
                        time_spent,
                    },
                )?;
            }
            sitting
                .answer(answer.clone(), time_spent)
                .map_err(ApiError::from)?;
            Ok::<_, ApiError>(adaptive_status_body(sitting))
        })??;
        self.state
            .metrics
            .record_adaptive_step(step_started.elapsed());
        Ok(ok_json(200, status))
    }

    /// `POST /sessions/{id}/finish` on an adaptive sitting: grades the
    /// record over the full exam problem set (skipped padding), files
    /// it into the same store/stream path fixed-form sittings use.
    fn adaptive_finish(&self, id: &str) -> ApiResult {
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let (exam_id, record) = self.state.adaptive.with(id, |sitting| {
            if let Some(journal) = journal {
                self.journal_event(
                    journal,
                    &SessionEvent::AdaptiveFinished {
                        session: id.to_string(),
                    },
                )?;
            }
            let record = sitting.finish().map_err(|err| ApiError::new(500, err))?;
            Ok::<_, ApiError>((sitting.exam().as_str().to_string(), record))
        })??;
        self.state.stream.with_exam(&exam_id, |stream| {
            self.state.finished.push(&exam_id, record.clone());
            let update_started = Instant::now();
            stream.apply(&record);
            self.state
                .metrics
                .record_streaming_update(update_started.elapsed());
        });
        self.state.adaptive.remove(id);
        self.state.metrics.adaptive_session_closed();
        Ok(ok_json(200, record.to_value()))
    }

    fn answer(&self, id: &str, request: &Request) -> ApiResult {
        if self.state.adaptive.routes(id) {
            return self.adaptive_answer(id, request);
        }
        let body = parse_body(request)?;
        let answer_value = body
            .get("answer")
            .ok_or_else(|| ApiError::bad_request("missing field `answer`"))?;
        let answer = Answer::from_value(answer_value)
            .map_err(|err| ApiError::bad_request(format!("bad answer: {err}")))?;
        let secs = optional_f64(&body, "time_spent_secs")?.unwrap_or(0.0);
        if !secs.is_finite() || secs < 0.0 {
            return Err(ApiError::bad_request(format!(
                "time_spent_secs must be a non-negative finite number, got {secs}"
            )));
        }
        let time_spent = Duration::try_from_secs_f64(secs)
            .map_err(|err| ApiError::bad_request(format!("bad time_spent_secs: {err}")))?;
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let outcome = self.state.registry.with(id, |slot| {
            if let Some(journal) = journal {
                // Journaled even if the session rejects it: a rejection
                // can still move the logical clock (expiry clamps it).
                self.journal_event(
                    journal,
                    &SessionEvent::Answered {
                        session: id.to_string(),
                        answer: answer.clone(),
                        time_spent,
                    },
                )?;
            }
            slot.session
                .answer(answer.clone(), time_spent)
                .map(|()| session_status_body(&slot.session))
                .map_err(ApiError::from)
        })?;
        Ok(ok_json(200, outcome?))
    }

    fn pause(&self, id: &str) -> ApiResult {
        if self.state.adaptive.routes(id) {
            return Err(ApiError::conflict(
                "adaptive sittings cannot pause; answer the pending item or finish",
            ));
        }
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let checkpoint = self.state.registry.with(id, |slot| {
            if let Some(journal) = journal {
                self.journal_event(
                    journal,
                    &SessionEvent::Paused {
                        session: id.to_string(),
                    },
                )?;
            }
            let checkpoint = slot.session.pause().map_err(ApiError::from)?;
            slot.checkpoint = Some(checkpoint.clone());
            Ok::<_, ApiError>(checkpoint)
        })??;
        Ok(ok_json(200, checkpoint.to_value()))
    }

    fn resume(&self, id: &str) -> ApiResult {
        if self.state.adaptive.routes(id) {
            return Err(ApiError::conflict(
                "adaptive sittings cannot pause or resume; they are always live",
            ));
        }
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let status = self.state.registry.with(id, |slot| {
            if let Some(journal) = journal {
                self.journal_event(
                    journal,
                    &SessionEvent::Resumed {
                        session: id.to_string(),
                    },
                )?;
            }
            slot.session.reactivate().map_err(ApiError::from)?;
            Ok::<_, ApiError>(session_status_body(&slot.session))
        })??;
        Ok(ok_json(200, status))
    }

    fn finish(&self, id: &str) -> ApiResult {
        if self.state.adaptive.routes(id) {
            return self.adaptive_finish(id);
        }
        let journal = self.state.journal.as_ref();
        let _gate = journal.map(Journal::gate_read);
        let (exam_id, record) = self.state.registry.with(id, |slot| {
            if let Some(journal) = journal {
                self.journal_event(
                    journal,
                    &SessionEvent::Finished {
                        session: id.to_string(),
                    },
                )?;
            }
            let record = slot.session.finish().map_err(ApiError::from)?;
            Ok::<_, ApiError>((slot.session.exam_id().as_str().to_string(), record))
        })??;
        // The sitting is over: file the record, fold it into the
        // streaming statistics, and free the slot. Filing and folding
        // happen under the engine's per-exam lock so the finished store
        // and the engine always agree on the row set (two racing
        // finishes of the same student cannot land in opposite orders).
        self.state.stream.with_exam(&exam_id, |stream| {
            self.state.finished.push(&exam_id, record.clone());
            let update_started = Instant::now();
            stream.apply(&record);
            self.state
                .metrics
                .record_streaming_update(update_started.elapsed());
        });
        let _ = self.state.registry.remove(id);
        self.state.metrics.session_finished();
        Ok(ok_json(200, record.to_value()))
    }

    /// `GET /exams/{id}/analysis`: the full §4 report. Served from the
    /// streaming engine's counters by default; `?mode=batch` forces the
    /// batch pipeline, and inputs the engine cannot reproduce exactly
    /// fall back to batch silently (both produce identical bytes when
    /// both succeed). `?indices=alt` answers with the option-wise
    /// alternative discrimination view instead of the full report.
    fn analysis(&self, exam_id: &str, request: &Request) -> ApiResult {
        let query = request.query.as_deref().unwrap_or("");
        let force_batch = query.split('&').any(|pair| pair == "mode=batch");
        let wants_alt = query.split('&').any(|pair| pair == "indices=alt");
        if self.state.finished.count(exam_id) == 0 {
            return Err(ApiError::conflict(format!(
                "no finished sittings for exam {exam_id}"
            )));
        }
        let parsed = exam_id
            .parse()
            .map_err(|err| ApiError::bad_request(format!("bad exam id: {err}")))?;
        let (_, problems) = self
            .state
            .repository
            .resolve_exam(&parsed)
            .map_err(|err| ApiError::not_found(err.to_string()))?;
        if !force_batch {
            let started = Instant::now();
            if let Ok(report) = self.state.stream.report(exam_id, &problems) {
                self.state
                    .metrics
                    .record_streaming_analysis(started.elapsed());
                return respond_with_report(&report, wants_alt);
            }
            // Unstreamable (mixed problem sets, duplicate in-row
            // problems, non-finite scores, class too small): the batch
            // pipeline below reproduces the exact report or error.
        }
        let records = self.state.finished.records(exam_id);
        if records.is_empty() {
            return Err(ApiError::conflict(format!(
                "no finished sittings for exam {exam_id}"
            )));
        }
        let class = ExamRecord::new(parsed, records);
        let hits_before = self.state.analyzer.cache_stats().hits;
        let started = std::time::Instant::now();
        let report = self
            .state
            .analyzer
            .analyze_records(std::slice::from_ref(&class), &problems)
            .map_err(|err| ApiError::new(500, format!("analysis failed: {err}")))?;
        let cache_hit = self.state.analyzer.cache_stats().hits > hits_before;
        self.state
            .metrics
            .record_analysis(cache_hit, started.elapsed());
        respond_with_report(&report, wants_alt)
    }
}

/// Serializes an assembled report (or its alternative-indices view —
/// a pure function of the report, so both modes answer identically).
fn respond_with_report(report: &mine_analysis::BatchReport, wants_alt: bool) -> ApiResult {
    let body = if wants_alt {
        let analysis = report
            .analyses
            .first()
            .ok_or_else(|| ApiError::new(500, "analysis produced no report".to_string()))?;
        serde_json::to_string(&mine_streamstats::alt_indices(analysis))
    } else {
        serde_json::to_string(report)
    };
    body.map(|text| Response::json(200, text))
        .map_err(|err| ApiError::new(500, format!("serialization failed: {err}")))
}

/// The `GET /admin/ranges` body: fencing coordinates plus the range
/// hashes a peer compares against its own.
fn ranges_body(
    report: &mine_store::ScrubReport,
    store: &mine_store::EventStore,
    role: Role,
) -> Value {
    let ranges = report
        .ranges
        .iter()
        .map(|range| {
            Value::Object(vec![
                ("first_seq".to_string(), range.first_seq.to_value()),
                ("last_seq".to_string(), range.last_seq.to_value()),
                ("count".to_string(), range.count.to_value()),
                ("hash".to_string(), range.hash.to_value()),
            ])
        })
        .collect();
    Value::Object(vec![
        ("role".to_string(), Value::String(role.label().to_string())),
        ("epoch".to_string(), store.epoch().to_value()),
        ("head_seq".to_string(), (store.next_seq() - 1).to_value()),
        (
            "corrupt_segments".to_string(),
            (report.corrupt_segments().len() as u64).to_value(),
        ),
        ("ranges".to_string(), Value::Array(ranges)),
    ])
}

/// Serializes a value tree as a JSON response.
fn ok_json(status: u16, value: Value) -> Response {
    Response::json(
        status,
        serde_json::to_string(&value).expect("value tree serializes"),
    )
}

fn parse_body(request: &Request) -> Result<Value, ApiError> {
    let text = request
        .body_str()
        .ok_or_else(|| ApiError::bad_request("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    serde_json::from_str(text).map_err(|err| ApiError::bad_request(format!("bad JSON body: {err}")))
}

fn require_str<'a>(body: &'a Value, field: &str) -> Result<&'a str, ApiError> {
    body.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field `{field}`")))
}

fn optional_u64(body: &Value, field: &str) -> Result<Option<u64>, ApiError> {
    match body.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(Number::PosInt(n))) => Ok(Some(*n)),
        Some(other) => Err(ApiError::bad_request(format!(
            "field `{field}` must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

fn optional_f64(body: &Value, field: &str) -> Result<Option<f64>, ApiError> {
    match body.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(number)) => Ok(Some(match number {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(f) => *f,
        })),
        Some(other) => Err(ApiError::bad_request(format!(
            "field `{field}` must be a number, found {}",
            other.kind()
        ))),
    }
}

fn optional_bool(body: &Value, field: &str) -> Result<Option<bool>, ApiError> {
    match body.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(ApiError::bad_request(format!(
            "field `{field}` must be a boolean, found {}",
            other.kind()
        ))),
    }
}

/// The `POST /sessions` response: identity, presentation order, and a
/// problem summary rich enough for a client to form valid answers.
fn session_started_body(session: &ExamSession, problems: &[Problem]) -> Value {
    let by_id: std::collections::BTreeMap<&str, &Problem> =
        problems.iter().map(|p| (p.id().as_str(), p)).collect();
    let summaries = session
        .order()
        .iter()
        .filter_map(|id| by_id.get(id.as_str()))
        .map(|problem| problem_summary(problem))
        .collect();
    Value::Object(vec![
        (
            "session".to_string(),
            Value::String(session.id().as_str().to_string()),
        ),
        (
            "exam".to_string(),
            Value::String(session.exam_id().as_str().to_string()),
        ),
        (
            "student".to_string(),
            Value::String(session.student().as_str().to_string()),
        ),
        ("state".to_string(), state_value(session.state())),
        (
            "questions".to_string(),
            (session.order().len() as u64).to_value(),
        ),
        ("problems".to_string(), Value::Array(summaries)),
        ("remaining_secs".to_string(), remaining_value(session)),
    ])
}

/// What a client needs to know to answer a problem with the right
/// answer *kind* (option counts, blank counts, pair counts).
fn problem_summary(problem: &Problem) -> Value {
    let mut fields = vec![
        (
            "id".to_string(),
            Value::String(problem.id().as_str().to_string()),
        ),
        (
            "style".to_string(),
            Value::String(problem.style().keyword().to_string()),
        ),
    ];
    match problem.body() {
        ProblemBody::MultipleChoice { options, .. }
        | ProblemBody::Questionnaire { options, .. } => {
            fields.push(("options".to_string(), (options.len() as u64).to_value()));
        }
        ProblemBody::Completion { blanks, .. } => {
            fields.push(("blanks".to_string(), (blanks.len() as u64).to_value()));
        }
        ProblemBody::Match(pairs) => {
            fields.push(("pairs".to_string(), (pairs.correct.len() as u64).to_value()));
            fields.push(("right".to_string(), (pairs.right.len() as u64).to_value()));
        }
        ProblemBody::TrueFalse { .. } | ProblemBody::Essay { .. } => {}
    }
    Value::Object(fields)
}

fn state_value(state: SessionState) -> Value {
    Value::String(
        match state {
            SessionState::Active => "active",
            SessionState::Paused => "paused",
            SessionState::Finished => "finished",
        }
        .to_string(),
    )
}

fn remaining_value(session: &ExamSession) -> Value {
    session
        .remaining_time()
        .map_or(Value::Null, |remaining| remaining.as_secs_f64().to_value())
}

/// The common session status body (`GET /sessions/{id}` and answer
/// responses).
fn session_status_body(session: &ExamSession) -> Value {
    Value::Object(vec![
        (
            "session".to_string(),
            Value::String(session.id().as_str().to_string()),
        ),
        ("state".to_string(), state_value(session.state())),
        (
            "answered".to_string(),
            (session.answered_count() as u64).to_value(),
        ),
        (
            "elapsed_secs".to_string(),
            session.elapsed().as_secs_f64().to_value(),
        ),
        ("remaining_secs".to_string(), remaining_value(session)),
        (
            "current".to_string(),
            session.current().map_or(Value::Null, |problem| {
                Value::String(problem.id().as_str().to_string())
            }),
        ),
    ])
}

/// The `422` response for a rejected adaptive start, naming the
/// offending field (mirrors `DeliveryOptions::validate` semantics).
fn adaptive_rejection(err: &AdaptiveStartError) -> Response {
    let field = match err {
        AdaptiveStartError::InvalidOptions(inner) => inner.field,
        AdaptiveStartError::Uncalibrated { .. } => "item_bank",
    };
    ok_json(
        422,
        Value::Object(vec![
            ("error".to_string(), Value::String(err.to_string())),
            ("field".to_string(), Value::String(field.to_string())),
        ]),
    )
}

/// The shared tail of every adaptive response body: ability estimate,
/// SE, step count, stop state, and the pending item's summary.
fn adaptive_progress_fields(sitting: &mut AdaptiveSitting) -> Vec<(String, Value)> {
    let estimate = sitting.estimate();
    let done = sitting.is_done();
    vec![
        (
            "state".to_string(),
            Value::String(if done { "complete" } else { "active" }.to_string()),
        ),
        (
            "steps".to_string(),
            (sitting.step_count() as u64).to_value(),
        ),
        ("theta".to_string(), estimate.theta.to_value()),
        ("se".to_string(), estimate.se.to_value()),
        (
            "elapsed_secs".to_string(),
            sitting.elapsed().as_secs_f64().to_value(),
        ),
        ("done".to_string(), Value::Bool(done)),
        (
            "current".to_string(),
            sitting
                .current_problem()
                .map_or(Value::Null, problem_summary),
        ),
    ]
}

/// The adaptive `GET /sessions/{id}` / answer-response body.
fn adaptive_status_body(sitting: &mut AdaptiveSitting) -> Value {
    let mut fields = vec![
        (
            "session".to_string(),
            Value::String(sitting.id().to_string()),
        ),
        ("mode".to_string(), Value::String("adaptive".to_string())),
    ];
    fields.extend(adaptive_progress_fields(sitting));
    Value::Object(fields)
}

/// The adaptive `POST /sessions` response: identity, stop rule, and
/// the first item.
fn adaptive_started_body(sitting: &mut AdaptiveSitting) -> Value {
    let options = sitting.options();
    let mut fields = vec![
        (
            "session".to_string(),
            Value::String(sitting.id().to_string()),
        ),
        (
            "exam".to_string(),
            Value::String(sitting.exam().as_str().to_string()),
        ),
        (
            "student".to_string(),
            Value::String(sitting.student().as_str().to_string()),
        ),
        ("mode".to_string(), Value::String("adaptive".to_string())),
        (
            "min_items".to_string(),
            (options.min_items as u64).to_value(),
        ),
        (
            "max_items".to_string(),
            (options.max_items as u64).to_value(),
        ),
        ("se_threshold".to_string(), options.se_threshold.to_value()),
    ];
    fields.extend(adaptive_progress_fields(sitting));
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, Exam};

    fn repository() -> Repository {
        let repo = Repository::new();
        repo.insert_problem(
            Problem::multiple_choice(
                "q1",
                "Pick B.",
                [
                    ChoiceOption::new(OptionKey::A, "a"),
                    ChoiceOption::new(OptionKey::B, "b"),
                    ChoiceOption::new(OptionKey::C, "c"),
                ],
                OptionKey::B,
            )
            .unwrap(),
        )
        .unwrap();
        repo.insert_problem(Problem::true_false("q2", "Yes?", true).unwrap())
            .unwrap();
        repo.insert_exam(
            Exam::builder("quiz")
                .unwrap()
                .entry("q1".parse().unwrap())
                .entry("q2".parse().unwrap())
                .test_time(std::time::Duration::from_secs(600))
                .build()
                .unwrap(),
        )
        .unwrap();
        repo
    }

    fn start(router: &Router) -> String {
        let response = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1","seed":3}"#,
        ));
        assert_eq!(response.status, 201, "{}", response.body);
        let value: Value = serde_json::from_str(&response.body).unwrap();
        value.get("session").unwrap().as_str().unwrap().to_string()
    }

    #[test]
    fn healthz_reports_ok_with_replication_coordinates() {
        let router = Router::new(repository());
        let response = router.handle(&Request::new("GET", "/healthz", ""));
        assert_eq!(response.status, 200);
        let value: Value = serde_json::from_str(&response.body).unwrap();
        assert_eq!(value.get("status").unwrap().as_str(), Some("ok"));
        // Without replication configured, a node reports itself as the
        // primary at the initial epoch.
        assert_eq!(value.get("role").unwrap().as_str(), Some("primary"));
        assert_eq!(
            value.get("epoch"),
            Some(&mine_store::INITIAL_EPOCH.to_value())
        );
        assert_eq!(value.get("last_applied_seq"), Some(&0u64.to_value()));
    }

    /// Sits one student through the whole lifecycle in-process; student
    /// `index` answers q1 correctly only when `index` is even and q2
    /// only when divisible by 3, giving the class a score spread.
    fn sit_student(router: &Router, index: usize) {
        let response = router.handle(&Request::new(
            "POST",
            "/sessions",
            format!("{{\"exam\":\"quiz\",\"student\":\"s{index}\",\"seed\":{index}}}"),
        ));
        assert_eq!(response.status, 201, "{}", response.body);
        let started: Value = serde_json::from_str(&response.body).unwrap();
        let session = started
            .get("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let order: Vec<String> = started
            .get("problems")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.get("id").unwrap().as_str().unwrap().to_string())
            .collect();
        for problem in &order {
            let answer = if problem == "q1" {
                let key = if index.is_multiple_of(2) { "B" } else { "A" };
                format!("{{\"Choice\":\"{key}\"}}")
            } else {
                format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3))
            };
            let body = format!("{{\"answer\":{answer},\"time_spent_secs\":30}}");
            let response = router.handle(&Request::new(
                "POST",
                &format!("/sessions/{session}/answers"),
                body,
            ));
            assert_eq!(response.status, 200, "{}", response.body);
        }
        let finished = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/finish"),
            "",
        ));
        assert_eq!(finished.status, 200, "{}", finished.body);
        let record: Value = serde_json::from_str(&finished.body).unwrap();
        assert_eq!(
            record.get("student").unwrap().as_str(),
            Some(format!("s{index}").as_str())
        );
    }

    #[test]
    fn full_lifecycle_without_sockets() {
        let router = Router::new(repository());
        let session = start(&router);
        assert_eq!(router.state().registry.len(), 1);

        // Status shows the first problem of the shuffled order.
        let status = router.handle(&Request::new("GET", &format!("/sessions/{session}"), ""));
        assert_eq!(status.status, 200);
        let status: Value = serde_json::from_str(&status.body).unwrap();
        let first = status.get("current").unwrap().as_str().unwrap().to_string();

        // Answer both questions with the right kinds, in served order.
        for problem in [
            first.clone(),
            if first == "q1" {
                "q2".into()
            } else {
                "q1".into()
            },
        ] {
            let answer = if problem == "q1" {
                r#"{"Choice":"B"}"#.to_string()
            } else {
                r#"{"TrueFalse":true}"#.to_string()
            };
            let body = format!("{{\"answer\":{answer},\"time_spent_secs\":30}}");
            let response = router.handle(&Request::new(
                "POST",
                &format!("/sessions/{session}/answers"),
                body,
            ));
            assert_eq!(response.status, 200, "{}", response.body);
        }

        // Pause produces a checkpoint; resume reactivates.
        let paused = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/pause"),
            "",
        ));
        assert_eq!(paused.status, 200, "{}", paused.body);
        let checkpoint: Value = serde_json::from_str(&paused.body).unwrap();
        assert_eq!(checkpoint.get("exam").unwrap().as_str(), Some("quiz"));
        let resumed = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/resume"),
            "",
        ));
        assert_eq!(resumed.status, 200, "{}", resumed.body);

        // Finish grades and evicts the session.
        let finished = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/finish"),
            "",
        ));
        assert_eq!(finished.status, 200, "{}", finished.body);
        let record: Value = serde_json::from_str(&finished.body).unwrap();
        assert_eq!(record.get("student").unwrap().as_str(), Some("s1"));
        assert_eq!(router.state().registry.len(), 0);
        assert_eq!(router.state().finished.count("quiz"), 1);

        // The §4 pipeline needs a real class to form score groups: sit
        // seven more students, then ask for the live report.
        for index in 2..=8 {
            sit_student(&router, index);
        }
        assert_eq!(router.state().finished.count("quiz"), 8);
        // Every finish updated the streaming engine.
        assert_eq!(router.state().stream.sittings("quiz"), 8);
        let analysis = router.handle(&Request::new("GET", "/exams/quiz/analysis", ""));
        assert_eq!(analysis.status, 200, "{}", analysis.body);
        let report: Value = serde_json::from_str(&analysis.body).unwrap();
        assert!(report.get("analyses").is_some());
        assert!(report.get("summary").is_some());

        // The default mode streams from counters — the batch pipeline
        // was never invoked.
        assert_eq!(router.state().analyzer.cache_stats().hits, 0);
        let again = router.handle(&Request::new("GET", "/exams/quiz/analysis", ""));
        assert_eq!(again.body, analysis.body);

        // `?mode=batch` forces the full pipeline and produces the very
        // same bytes; a second batch read hits the analyzer's cache.
        let batch = router.handle(&Request::new("GET", "/exams/quiz/analysis?mode=batch", ""));
        assert_eq!(batch.status, 200, "{}", batch.body);
        assert_eq!(batch.body, analysis.body);
        let batch_again =
            router.handle(&Request::new("GET", "/exams/quiz/analysis?mode=batch", ""));
        assert_eq!(batch_again.body, analysis.body);
        assert!(router.state().analyzer.cache_stats().hits >= 1);

        // All four analyses were timed, labeled by mode (and cache
        // outcome for batch), the finish-time updates were counted, and
        // the scrape refreshes the pool gauges.
        let snapshot = router.state().metrics.snapshot(0, 0);
        assert_eq!(snapshot.analysis_streaming_count, 2);
        assert_eq!(snapshot.analysis_cold_count, 1);
        assert_eq!(snapshot.analysis_hit_count, 1);
        assert_eq!(snapshot.streaming_updates_total, 8);
        let scrape = router.handle(&Request::new("GET", "/metrics", ""));
        assert!(scrape
            .body
            .contains("mine_analysis_duration_seconds_count{mode=\"streaming\"} 2"));
        assert!(scrape
            .body
            .contains("mine_analysis_duration_seconds_count{mode=\"batch\",cache=\"cold\"} 1"));
        assert!(scrape
            .body
            .contains("mine_analysis_duration_seconds_count{mode=\"batch\",cache=\"hit\"} 1"));
        assert!(scrape.body.contains("mine_streaming_updates_total 8"));
        assert!(scrape
            .body
            .contains("mine_streaming_update_seconds_count 8"));
        assert!(scrape.body.contains("mine_pool_workers"));
        assert!(scrape.body.contains("mine_pool_steals_total"));
    }

    #[test]
    fn start_validates_input() {
        let router = Router::new(repository());
        // Unknown exam.
        let response = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"nope","student":"s1"}"#,
        ));
        assert_eq!(response.status, 404);
        // Missing student.
        let response = router.handle(&Request::new("POST", "/sessions", r#"{"exam":"quiz"}"#));
        assert_eq!(response.status, 400);
        // Bad JSON.
        let response = router.handle(&Request::new("POST", "/sessions", "{oops"));
        assert_eq!(response.status, 400);
        // Nonsense accommodation is rejected by the delivery layer.
        let response = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1","time_accommodation":-2.0}"#,
        ));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("time_accommodation"));
    }

    #[test]
    fn duplicate_session_start_conflicts() {
        let router = Router::new(repository());
        start(&router);
        let response = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1","seed":3}"#,
        ));
        assert_eq!(response.status, 409);
    }

    #[test]
    fn answer_errors_map_to_statuses() {
        let router = Router::new(repository());
        let session = start(&router);
        // Wrong answer kind → 422.
        let response = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/answers"),
            r#"{"answer":{"Completion":["x"]},"time_spent_secs":5}"#,
        ));
        assert_eq!(response.status, 422, "{}", response.body);
        // Unparseable answer → 400.
        let response = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/answers"),
            r#"{"answer":{"Nonsense":1},"time_spent_secs":5}"#,
        ));
        assert_eq!(response.status, 400);
        // Negative time → 400.
        let response = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/answers"),
            r#"{"answer":"Skipped","time_spent_secs":-1}"#,
        ));
        assert_eq!(response.status, 400);
        // Time past the limit → 409.
        let response = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/answers"),
            r#"{"answer":"Skipped","time_spent_secs":1e6}"#,
        ));
        assert_eq!(response.status, 409, "{}", response.body);
        // Unknown session → 404.
        let response = router.handle(&Request::new(
            "POST",
            "/sessions/ghost/answers",
            r#"{"answer":"Skipped","time_spent_secs":1}"#,
        ));
        assert_eq!(response.status, 404);
    }

    #[test]
    fn analysis_without_sittings_conflicts() {
        let router = Router::new(repository());
        let response = router.handle(&Request::new("GET", "/exams/quiz/analysis", ""));
        assert_eq!(response.status, 409);
    }

    #[test]
    fn unmatched_routes_and_methods() {
        let router = Router::new(repository());
        assert_eq!(router.handle(&Request::new("GET", "/nope", "")).status, 404);
        assert_eq!(
            router
                .handle(&Request::new("DELETE", "/healthz", ""))
                .status,
            405
        );
        assert_eq!(
            router
                .handle(&Request::new("GET", "/sessions/x/answers", ""))
                .status,
            405
        );
    }

    #[test]
    fn draining_sheds_everything_but_observability() {
        let router = Router::new(repository());
        let session = start(&router);
        router.state().lifecycle.begin_drain();

        // `/healthz` flips so load balancers rotate away.
        let health = router.handle(&Request::new("GET", "/healthz", ""));
        assert_eq!(health.status, 503);
        let health: Value = serde_json::from_str(&health.body).unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("draining"));
        // `/metrics` stays observable.
        let metrics = router.handle(&Request::new("GET", "/metrics", ""));
        assert_eq!(metrics.status, 200);
        // Everything else is shed with the advertised Retry-After.
        let shed = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/finish"),
            "",
        ));
        assert_eq!(shed.status, 503);
        assert_eq!(shed.retry_after, Some(5));
        assert!(shed.body.contains("draining"));
        let snapshot = router.state().metrics.snapshot(0, 0);
        assert_eq!(snapshot.shed_total, 1);
        assert_eq!(snapshot.retry_after_secs, 5);
        // The session itself was left untouched mid-flight.
        assert_eq!(router.state().registry.len(), 1);
    }

    #[test]
    fn metrics_track_the_lifecycle() {
        let router = Router::new(repository());
        let session = start(&router);
        let _ = router.handle(&Request::new("GET", &format!("/sessions/{session}"), "")); // status
        let _ = router.handle(&Request::new("GET", "/nope", "")); // 404
                                                                  // The default rendering is Prometheus text exposition format.
        let prom = router.handle(&Request::new("GET", "/metrics", ""));
        assert_eq!(prom.status, 200);
        assert!(prom.content_type.starts_with("text/plain"));
        assert!(prom.body.contains("# TYPE mine_requests_total counter"));
        assert!(prom
            .body
            .contains("mine_requests_total{route=\"session_start\"} 1"));
        // The original JSON payload lives under ?format=json.
        let response = router.handle(&Request::new("GET", "/metrics?format=json", ""));
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        let value: Value = serde_json::from_str(&response.body).unwrap();
        let requests = value.get("requests").unwrap();
        let count = |label: &str| match requests.get(label) {
            Some(Value::Number(Number::PosInt(n))) => *n,
            other => panic!("bad counter {other:?}"),
        };
        assert_eq!(count("session_start"), 1);
        assert_eq!(count("session_status"), 1);
        assert_eq!(count("unmatched"), 1);
        // The snapshot is taken before the in-flight /metrics request is
        // recorded, so only the earlier Prometheus request is counted.
        assert_eq!(count("metrics"), 1);
        assert_eq!(value.get("active_sessions").unwrap().kind(), "number");
        assert_eq!(value.get("sessions_started").unwrap().kind(), "number");
    }

    #[test]
    fn follower_redirects_writes_and_serves_reads() {
        use crate::repl::AckMode;
        let mut state = ServerState::new(repository());
        let repl = Arc::new(ReplState::new(Role::Follower, AckMode::Leader));
        repl.set_leader_addr("127.0.0.1:7400".to_string());
        state.repl = Some(repl);
        let router = Router::with_state(state);

        // Every write answers 421 naming the leader.
        for path in [
            "/sessions",
            "/sessions/ghost/answers",
            "/sessions/ghost/finish",
        ] {
            let response = router.handle(&Request::new("POST", path, ""));
            assert_eq!(response.status, 421, "{}", response.body);
            let body: Value = serde_json::from_str(&response.body).unwrap();
            assert_eq!(body.get("leader").unwrap().as_str(), Some("127.0.0.1:7400"));
        }
        // Reads are served locally (a 404 proves the handler ran).
        let read = router.handle(&Request::new("GET", "/sessions/ghost", ""));
        assert_eq!(read.status, 404);
        // The role is visible to supervisors and scrapes.
        let health = router.handle(&Request::new("GET", "/healthz", ""));
        let health: Value = serde_json::from_str(&health.body).unwrap();
        assert_eq!(health.get("role").unwrap().as_str(), Some("follower"));
        let snapshot = router.state().metrics.snapshot(0, 0);
        assert_eq!(snapshot.redirected_total, 3);
    }

    #[test]
    fn promote_bumps_epoch_and_starts_serving_writes() {
        use crate::repl::AckMode;
        let dir = std::env::temp_dir().join(format!("mine-router-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut state, _) = crate::journal::open_journaled_state(
            repository(),
            &dir,
            mine_store::StoreOptions::default(),
            64,
        )
        .unwrap();
        state.repl = Some(Arc::new(ReplState::new(Role::Follower, AckMode::Leader)));
        let router = Router::with_state(state);

        let refused = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1"}"#,
        ));
        assert_eq!(refused.status, 421);

        let promoted = router.handle(&Request::new("POST", "/admin/promote", ""));
        assert_eq!(promoted.status, 200, "{}", promoted.body);
        let body: Value = serde_json::from_str(&promoted.body).unwrap();
        assert_eq!(body.get("role").unwrap().as_str(), Some("primary"));
        assert_eq!(
            body.get("epoch"),
            Some(&(mine_store::INITIAL_EPOCH + 1).to_value())
        );
        // The bump is durable, not just in-memory.
        assert_eq!(
            router.state().journal.as_ref().unwrap().store().epoch(),
            mine_store::INITIAL_EPOCH + 1
        );
        // A second promotion is a conflict; writes now succeed.
        let again = router.handle(&Request::new("POST", "/admin/promote", ""));
        assert_eq!(again.status, 409);
        let started = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1"}"#,
        ));
        assert_eq!(started.status, 201, "{}", started.body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_without_replication_conflicts() {
        let router = Router::new(repository());
        let response = router.handle(&Request::new("POST", "/admin/promote", ""));
        assert_eq!(response.status, 409);
        assert!(response.body.contains("not enabled"));
        // Non-POST methods on admin routes are 405, not 404.
        let response = router.handle(&Request::new("GET", "/admin/promote", ""));
        assert_eq!(response.status, 405);
    }

    #[test]
    fn demote_fences_behind_newer_epochs_only() {
        use crate::repl::AckMode;
        let dir = std::env::temp_dir().join(format!("mine-router-demote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut state, _) = crate::journal::open_journaled_state(
            repository(),
            &dir,
            mine_store::StoreOptions::default(),
            64,
        )
        .unwrap();
        state.repl = Some(Arc::new(ReplState::new(Role::Primary, AckMode::Leader)));
        let router = Router::with_state(state);
        let local = router.state().journal.as_ref().unwrap().store().epoch();

        // A stale (or equal) epoch cannot depose: replayed demotes from
        // an older failover are harmless.
        let stale = router.handle(&Request::new(
            "POST",
            "/admin/demote",
            format!(r#"{{"epoch":{local},"leader":"127.0.0.1:7500"}}"#),
        ));
        assert_eq!(stale.status, 409, "{}", stale.body);
        assert_eq!(router.state().repl.as_ref().unwrap().role(), Role::Primary);

        // A genuinely newer epoch demotes, durably adopts it, and
        // records the new leader for redirects.
        let newer = local + 3;
        let demoted = router.handle(&Request::new(
            "POST",
            "/admin/demote",
            format!(r#"{{"epoch":{newer},"leader":"127.0.0.1:7500"}}"#),
        ));
        assert_eq!(demoted.status, 200, "{}", demoted.body);
        let repl = router.state().repl.as_ref().unwrap();
        assert_eq!(repl.role(), Role::Follower);
        assert_eq!(repl.leader_addr().as_deref(), Some("127.0.0.1:7500"));
        assert_eq!(
            router.state().journal.as_ref().unwrap().store().epoch(),
            newer
        );
        // Writes now redirect to the named leader.
        let refused = router.handle(&Request::new(
            "POST",
            "/sessions",
            r#"{"exam":"quiz","student":"s1"}"#,
        ));
        assert_eq!(refused.status, 421, "{}", refused.body);

        // Malformed bodies are a 400, not a silent no-op.
        let bad = router.handle(&Request::new("POST", "/admin/demote", r#"{"epoch":"x"}"#));
        assert_eq!(bad.status, 400, "{}", bad.body);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
