//! A minimal HTTP/1.1 message layer over `std::io`.
//!
//! The sanctioned dependency set has no HTTP stack (and no async
//! runtime), so this module implements the small slice of RFC 9112 the
//! delivery service needs: request parsing with `Content-Length`
//! bodies, response serialization, and keep-alive semantics. It is
//! deliberately transport-agnostic — [`parse_request`] reads from any
//! [`BufRead`] and [`Response::write_to`] writes to any [`Write`] — so
//! the router's unit tests never open a socket.

use std::io::{BufRead, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Size caps applied while reading one request. The defaults are the
/// crate constants; `ServeOptions` lets a deployment tighten the body
/// cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Cap on the request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string, when present (without the `?`).
    pub query: Option<String>,
    /// Header fields, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Convenience constructor for in-process handler tests.
    #[must_use]
    pub fn new(method: &str, path: &str, body: impl Into<Vec<u8>>) -> Self {
        let (path, query) = split_target(path);
        Self {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The first value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, when valid.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Body text (JSON everywhere except the Prometheus `/metrics`
    /// rendering).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// When set, a `Retry-After` header (in seconds) is emitted — the
    /// contract of every shed response (503 under overload or drain).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A Prometheus text-exposition-format response (`GET /metrics`).
    #[must_use]
    pub fn prometheus(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` header (seconds).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// The standard shed response: `503 + Retry-After`, connection to
    /// be closed by the caller.
    #[must_use]
    pub fn shed(reason: &str, retry_after_secs: u64) -> Self {
        Self::json(503, format!("{{\"error\":{reason:?}}}")).with_retry_after(retry_after_secs)
    }

    /// The standard reason phrase for the status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            421 => "Misdirected Request",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response, honouring the connection disposition.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the transport write fails.
    pub fn write_to<W: Write>(&self, mut writer: W, keep_alive: bool) -> std::io::Result<()> {
        let retry_after = self
            .retry_after
            .map(|secs| format!("retry-after: {secs}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            retry_after,
            if keep_alive { "keep-alive" } else { "close" },
        );
        writer.write_all(head.as_bytes())?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// A request-parsing failure, mapped to the status the server should
/// answer with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Status to answer with (400, 408 or 413).
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> Self {
        Self {
            status: 413,
            message: message.into(),
        }
    }

    fn timeout(message: impl Into<String>) -> Self {
        Self {
            status: 408,
            message: message.into(),
        }
    }

    /// Maps a transport read failure: deadline expiry (the socket's
    /// read timeout, or the per-request budget) becomes `408 Request
    /// Timeout`; anything else is a plain `400`.
    fn from_read(context: &str, err: &std::io::Error) -> Self {
        match err.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                Self::timeout(format!("{context}: read deadline expired"))
            }
            _ => Self::bad(format!("{context}: {err}")),
        }
    }
}

/// Reads one request from the transport.
///
/// Returns `Ok(None)` on clean end-of-stream before any request byte
/// (the keep-alive connection simply closed).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed requests or ones exceeding the
/// size limits; the connection should be answered and closed.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ParseError> {
    parse_request_with(reader, &ParseLimits::default())
}

/// [`parse_request`] with explicit size caps (the serving layer passes
/// the deployment's configured limits).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed requests, size-limit violations
/// (`413`), or a read deadline expiring mid-request (`408`).
pub fn parse_request_with<R: BufRead>(
    reader: &mut R,
    limits: &ParseLimits,
) -> Result<Option<Request>, ParseError> {
    let request_line = match read_head_line(reader, 0, limits.max_head_bytes)? {
        Some(line) if !line.is_empty() => line,
        // EOF or a bare CRLF before a request line: treat as closed.
        _ => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::bad(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(reader, head_bytes, limits.max_head_bytes)?
            .ok_or_else(|| ParseError::bad("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::bad(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::bad(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ParseError::too_large(format!(
            "body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }
    let mut body = vec![0_u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|err| ParseError::from_read("truncated body", &err))?;

    let (path, query) = split_target(target);
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Splits a request target into its percent-decoded path and raw query
/// string. Session ids contain `#`, which real HTTP clients must send
/// as `%23`, so path decoding is required for interoperability.
fn split_target(target: &str) -> (String, Option<String>) {
    match target.split_once('?') {
        Some((p, q)) => (percent_decode(p), Some(q.to_string())),
        None => (percent_decode(target), None),
    }
}

/// Decodes `%XX` escapes; malformed escapes and non-UTF-8 results are
/// left verbatim rather than rejected.
fn percent_decode(raw: &str) -> String {
    if !raw.contains('%') {
        return raw.to_string();
    }
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let decoded = (bytes[i] == b'%' && i + 2 < bytes.len())
            .then(|| {
                let high = (bytes[i + 1] as char).to_digit(16)?;
                let low = (bytes[i + 2] as char).to_digit(16)?;
                Some((high * 16 + low) as u8)
            })
            .flatten();
        match decoded {
            Some(byte) => {
                out.push(byte);
                i += 3;
            }
            None => {
                out.push(bytes[i]);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| raw.to_string())
}

/// Reads one CRLF- (or LF-) terminated head line, enforcing the head
/// size limit. `Ok(None)` means end-of-stream before any byte.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    already_read: usize,
    max_head_bytes: usize,
) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    let budget = max_head_bytes.saturating_sub(already_read);
    loop {
        let mut byte = [0_u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::bad("connection closed mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| ParseError::bad("non-UTF-8 request head"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > budget {
                    return Err(ParseError::too_large("request head too large"));
                }
            }
            Err(err) => return Err(ParseError::from_read("read failed", &err)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Option<Request>, ParseError> {
        parse_request(&mut text.as_bytes())
    }

    #[test]
    fn parses_a_get_request() {
        let request = parse("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.query, None);
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.body.is_empty());
        assert!(!request.wants_close());
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let request = parse(
            "POST /sessions?dry=1 HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/sessions");
        assert_eq!(request.query.as_deref(), Some("dry=1"));
        assert_eq!(request.body, b"abcd");
        assert!(request.wants_close());
    }

    #[test]
    fn percent_escapes_in_the_path_decode() {
        // `#` in a session id must travel as %23 through real clients.
        let request = parse("GET /sessions/quiz%23ada@7 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/sessions/quiz#ada@7");
        // Malformed escapes are kept verbatim, and queries stay raw.
        let request = parse("GET /a%2/b%2Fc?x=%23 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/a%2/b/c");
        assert_eq!(request.query.as_deref(), Some("x=%23"));
        // The test constructor decodes the same way.
        assert_eq!(
            Request::new("GET", "/sessions/quiz%23ada@7", "").path,
            "/sessions/quiz#ada@7"
        );
    }

    #[test]
    fn eof_before_a_request_is_none() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert_eq!(parse("GET /x\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Truncated body.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn oversized_requests_are_413() {
        let huge = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&huge).unwrap_err().status, 413);
        let long_header = format!(
            "GET /x HTTP/1.1\r\nh: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&long_header).unwrap_err().status, 413);
    }

    /// A reader that yields some bytes, then fails with a timeout —
    /// what a `TcpStream` under `set_read_timeout` looks like when the
    /// peer stalls mid-request.
    struct StallingReader {
        bytes: Vec<u8>,
        at: usize,
        kind: std::io::ErrorKind,
    }

    impl std::io::Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.bytes.len() {
                return Err(std::io::Error::from(self.kind));
            }
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn stalled_reads_map_to_408_not_400() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            // Stall mid-head (slow-loris).
            let mut reader = std::io::BufReader::new(StallingReader {
                bytes: b"GET /healthz HT".to_vec(),
                at: 0,
                kind,
            });
            assert_eq!(parse_request(&mut reader).unwrap_err().status, 408);
            // Stall mid-body (byte dribbler).
            let mut reader = std::io::BufReader::new(StallingReader {
                bytes: b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nab".to_vec(),
                at: 0,
                kind,
            });
            assert_eq!(parse_request(&mut reader).unwrap_err().status, 408);
        }
        // A non-timeout failure stays a plain 400.
        let mut reader = std::io::BufReader::new(StallingReader {
            bytes: b"GET /healthz HT".to_vec(),
            at: 0,
            kind: std::io::ErrorKind::ConnectionReset,
        });
        assert_eq!(parse_request(&mut reader).unwrap_err().status, 400);
    }

    #[test]
    fn custom_limits_tighten_the_caps() {
        let limits = ParseLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let mut wire: &[u8] = b"POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\n123456789";
        assert_eq!(
            parse_request_with(&mut wire, &limits).unwrap_err().status,
            413
        );
        let long_head = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "a".repeat(64));
        assert_eq!(
            parse_request_with(&mut long_head.as_bytes(), &limits)
                .unwrap_err()
                .status,
            413
        );
        // Within the caps still parses.
        let mut wire: &[u8] = b"POST /x HTTP/1.1\r\ncontent-length: 8\r\n\r\n12345678";
        let request = parse_request_with(&mut wire, &limits).unwrap().unwrap();
        assert_eq!(request.body, b"12345678");
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let mut out = Vec::new();
        Response::shed("over capacity", 2)
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"over capacity\"}"));
        // Ordinary responses never emit the header.
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut out, true)
            .unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("retry-after"));
    }

    #[test]
    fn response_serializes_with_length_and_disposition() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn two_pipelined_requests_parse_in_sequence() {
        let wire = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = wire.as_bytes();
        assert_eq!(parse_request(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(parse_request(&mut reader).unwrap().unwrap().path, "/b");
        assert_eq!(parse_request(&mut reader).unwrap(), None);
    }
}
