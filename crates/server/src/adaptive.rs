//! Served computerized adaptive testing (CAT) sittings.
//!
//! A fixed-form sitting walks a predetermined problem order; an
//! adaptive sitting serves **one item at a time**, re-estimating the
//! student's ability after every answer and picking the next item by
//! maximum Fisher information at the current estimate. The server keeps
//! these sittings in their own registry (the lifecycle differs too much
//! from `ExamSession` to share slots) but runs them behind the exact
//! same durability machinery: every step is journaled WAL-first, the
//! sitting is captured into snapshots, and crash recovery / replication
//! replay the steps through this module's own `answer` path, so a
//! rebuilt sitting reports a byte-identical ability estimate and — the
//! estimator and the tie-break rule being deterministic — the identical
//! next item.
//!
//! The journaled state "delta" is deliberately the *input* (the graded
//! answer), not the *output* (the posterior): replaying inputs through
//! the deterministic estimator reproduces every float bit-for-bit and
//! keeps the events small and schema-stable.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use mine_adaptive::{
    AbilityEstimate, AdaptiveOptions, AdaptiveTest, InvalidAdaptiveOptions, ItemPool,
};
use mine_core::{Answer, ExamId, ItemResponse, ProblemId, StudentId, StudentRecord};
use mine_itembank::Problem;
use mine_simulator::ItemParams;

/// Why an adaptive sitting could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveStartError {
    /// A stop-rule parameter was rejected (maps to HTTP 422).
    InvalidOptions(InvalidAdaptiveOptions),
    /// An exam problem has no usable 3PL calibration (maps to 422).
    Uncalibrated {
        /// The uncalibrated problem.
        problem: String,
    },
}

impl std::fmt::Display for AdaptiveStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveStartError::InvalidOptions(inner) => inner.fmt(f),
            AdaptiveStartError::Uncalibrated { problem } => write!(
                f,
                "invalid adaptive option item_bank: problem {problem:?} has no usable 3PL \
                 calibration; calibrate it before serving the exam adaptively"
            ),
        }
    }
}

impl std::error::Error for AdaptiveStartError {}

/// Why an adaptive answer was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveAnswerError {
    /// The stop rule already fired; the sitting only accepts `finish`.
    Complete,
    /// The answer could not be graded against the current item.
    Grading(String),
}

/// One step of an adaptive sitting, exactly as journaled: the submitted
/// answer and the time it took. Grading and re-estimation are *derived*
/// by replaying the step, never stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveStep {
    /// The item the answer was for.
    pub problem: ProblemId,
    /// The submitted answer.
    pub answer: Answer,
    /// Reported time on the item.
    pub time_spent: Duration,
}

/// Serializable image of an adaptive sitting, self-contained like
/// `SessionImage`: the embedded problems carry their calibrations, so a
/// snapshot restores without consulting the repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveImage {
    /// Exam the sitting draws from.
    pub exam: ExamId,
    /// The student sitting it.
    pub student: StudentId,
    /// Stop-rule parameters.
    pub options: AdaptiveOptions,
    /// The full exam problem set in exam order.
    pub problems: Vec<Problem>,
    /// Every administered step in order.
    pub steps: Vec<AdaptiveStep>,
}

impl AdaptiveImage {
    /// Rebuilds the live sitting by replaying the steps through the
    /// same `answer` path the live server used.
    ///
    /// # Errors
    ///
    /// Returns a description when the image is internally inconsistent
    /// (it validated when captured, so this indicates corruption).
    pub fn restore(self) -> Result<AdaptiveSitting, String> {
        let mut sitting =
            AdaptiveSitting::start(self.exam, self.problems, self.student, self.options)
                .map_err(|e| format!("adaptive image failed validation: {e}"))?;
        for step in self.steps {
            let expected = step.problem.clone();
            let current = sitting.current().map(|(id, _)| id);
            if current.as_ref() != Some(&expected) {
                return Err(format!(
                    "adaptive image step expected item {expected} but replay selected {current:?}"
                ));
            }
            sitting
                .answer(step.answer, step.time_spent)
                .map_err(|e| format!("adaptive image step failed to replay: {e:?}"))?;
        }
        Ok(sitting)
    }
}

/// A live adaptive sitting: the deterministic driver plus the journaled
/// step log and the full exam problem set (for grading and for padding
/// the finished record).
#[derive(Debug, Clone)]
pub struct AdaptiveSitting {
    id: String,
    exam: ExamId,
    student: StudentId,
    options: AdaptiveOptions,
    problems: Vec<Problem>,
    by_id: BTreeMap<ProblemId, usize>,
    test: AdaptiveTest,
    steps: Vec<AdaptiveStep>,
    elapsed: Duration,
}

impl AdaptiveSitting {
    /// Starts a sitting over the exam's problems.
    ///
    /// # Errors
    ///
    /// [`AdaptiveStartError::Uncalibrated`] when any problem lacks a
    /// usable 3PL calibration, [`AdaptiveStartError::InvalidOptions`]
    /// when the stop-rule parameters fail validation against the bank.
    pub fn start(
        exam: ExamId,
        problems: Vec<Problem>,
        student: StudentId,
        options: AdaptiveOptions,
    ) -> Result<Self, AdaptiveStartError> {
        let mut pool = ItemPool::new();
        for problem in &problems {
            let calibration = problem
                .calibration()
                .filter(mine_itembank::Calibration::is_usable)
                .ok_or_else(|| AdaptiveStartError::Uncalibrated {
                    problem: problem.id().to_string(),
                })?;
            pool.add(
                problem.id().clone(),
                ItemParams::new(
                    calibration.discrimination,
                    calibration.difficulty,
                    calibration.guessing,
                ),
            );
        }
        options
            .validate(pool.len())
            .map_err(AdaptiveStartError::InvalidOptions)?;
        let by_id = problems
            .iter()
            .enumerate()
            .map(|(index, problem)| (problem.id().clone(), index))
            .collect();
        let id = Self::session_id(&exam, &student, options.seed);
        Ok(Self {
            id,
            exam,
            student,
            options,
            problems,
            by_id,
            test: AdaptiveTest::new(pool, options.stop_rule()),
            steps: Vec::new(),
            elapsed: Duration::ZERO,
        })
    }

    /// The deterministic session identifier. The `~` separator keeps
    /// adaptive ids disjoint from fixed-form `{exam}#{student}@{seed}`.
    #[must_use]
    pub fn session_id(exam: &ExamId, student: &StudentId, seed: u64) -> String {
        format!("{exam}~{student}@{seed}")
    }

    /// The session identifier.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The exam identifier.
    #[must_use]
    pub fn exam(&self) -> &ExamId {
        &self.exam
    }

    /// The student.
    #[must_use]
    pub fn student(&self) -> &StudentId {
        &self.student
    }

    /// Stop-rule parameters.
    #[must_use]
    pub fn options(&self) -> AdaptiveOptions {
        self.options
    }

    /// The current ability estimate.
    #[must_use]
    pub fn estimate(&self) -> AbilityEstimate {
        self.test.estimate()
    }

    /// Number of administered items.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total reported time across steps.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Whether the stop rule has fired.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.test.is_done()
    }

    /// The pending item (selected by maximum Fisher information at the
    /// current estimate), or `None` once the stop rule fires.
    /// Idempotent until the item is answered.
    pub fn current(&mut self) -> Option<(ProblemId, ItemParams)> {
        self.test.next_item()
    }

    /// The pending item's full problem, for presentation.
    pub fn current_problem(&mut self) -> Option<&Problem> {
        let (id, _) = self.test.next_item()?;
        self.by_id.get(&id).map(|&index| &self.problems[index])
    }

    /// Grades `answer` against the pending item, records the outcome,
    /// re-estimates ability, and advances the sitting. This is the
    /// single mutation path: live traffic, WAL replay, and snapshot
    /// restore all go through here, which is what makes the journaled
    /// estimator invariant hold bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`AdaptiveAnswerError::Complete`] once the stop rule has fired,
    /// [`AdaptiveAnswerError::Grading`] when the item rejects the
    /// answer shape.
    pub fn answer(
        &mut self,
        answer: Answer,
        time_spent: Duration,
    ) -> Result<(), AdaptiveAnswerError> {
        let Some((item, _)) = self.test.next_item() else {
            return Err(AdaptiveAnswerError::Complete);
        };
        let index = self.by_id[&item];
        let grade = self.problems[index]
            .grade(&answer)
            .map_err(|e| AdaptiveAnswerError::Grading(e.to_string()))?;
        self.test
            .record(item.clone(), grade.is_correct)
            .expect("next_item is pending");
        self.steps.push(AdaptiveStep {
            problem: item,
            answer,
            time_spent,
        });
        self.elapsed += time_spent;
        Ok(())
    }

    /// Produces the graded [`StudentRecord`] covering the **full** exam
    /// problem set: administered items keep their graded answers,
    /// everything else is recorded as skipped — the same shape
    /// `ExamSession::finish` produces, so mixed adaptive/fixed
    /// populations share one `ExamRecord` and stream identically.
    ///
    /// # Errors
    ///
    /// Returns a description when grading fails (cannot happen for
    /// answers that were accepted by [`AdaptiveSitting::answer`]).
    pub fn finish(&self) -> Result<StudentRecord, String> {
        let mut administered: BTreeMap<&ProblemId, (&Answer, Duration, Duration)> = BTreeMap::new();
        let mut at = Duration::ZERO;
        for step in &self.steps {
            at += step.time_spent;
            administered.insert(&step.problem, (&step.answer, step.time_spent, at));
        }
        let mut responses = Vec::with_capacity(self.problems.len());
        for problem in &self.problems {
            let (answer, time_spent, answered_at) = match administered.get(problem.id()) {
                Some(&(answer, time_spent, at)) => (answer.clone(), time_spent, Some(at)),
                None => (Answer::Skipped, Duration::ZERO, None),
            };
            let grade = problem
                .grade(&answer)
                .map_err(|e| format!("grading {} at finish: {e}", problem.id()))?;
            responses.push(ItemResponse {
                problem: problem.id().clone(),
                answer,
                is_correct: grade.is_correct,
                points_awarded: grade.points_awarded,
                points_possible: grade.points_possible,
                time_spent,
                answered_at,
            });
        }
        let mut record = StudentRecord::new(self.student.clone(), responses);
        record.total_time = self.elapsed;
        Ok(record)
    }

    /// Captures the sitting into a self-contained snapshot image.
    #[must_use]
    pub fn image(&self) -> AdaptiveImage {
        AdaptiveImage {
            exam: self.exam.clone(),
            student: self.student.clone(),
            options: self.options,
            problems: self.problems.clone(),
            steps: self.steps.clone(),
        }
    }
}

/// Lookup failures against the adaptive registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveLookup {
    /// No sitting with that id was ever registered here.
    Missing,
    /// The sitting existed but already finished (HTTP 410).
    Gone,
    /// A sitting with that id is already live (HTTP 409 on insert).
    Duplicate,
}

/// Registry of live adaptive sittings.
///
/// Deliberately simpler than the sharded `SessionRegistry`: a sitting's
/// hot path is dominated by EAP estimation (tens of microseconds), so a
/// single `RwLock<BTreeMap>` map — read-locked only long enough to
/// clone an `Arc` — is not a contention concern, and the `BTreeMap`
/// gives deterministic snapshot ordering for free.
#[derive(Debug, Default)]
pub struct AdaptiveRegistry {
    live: RwLock<BTreeMap<String, Arc<Mutex<AdaptiveSitting>>>>,
    finished: RwLock<std::collections::HashSet<String>>,
}

impl AdaptiveRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` belongs to this registry (live or finished) — used
    /// by the router to dispatch shared `/sessions/{id}` routes.
    #[must_use]
    pub fn routes(&self, id: &str) -> bool {
        self.live.read().contains_key(id) || self.finished.read().contains(id)
    }

    /// Registers a new sitting.
    ///
    /// # Errors
    ///
    /// [`AdaptiveLookup::Duplicate`] when the id is already live or
    /// already finished.
    pub fn insert(&self, sitting: AdaptiveSitting) -> Result<(), AdaptiveLookup> {
        let id = sitting.id().to_string();
        if self.finished.read().contains(&id) {
            return Err(AdaptiveLookup::Duplicate);
        }
        let mut live = self.live.write();
        if live.contains_key(&id) {
            return Err(AdaptiveLookup::Duplicate);
        }
        live.insert(id, Arc::new(Mutex::new(sitting)));
        Ok(())
    }

    /// Runs `f` with exclusive access to the sitting.
    ///
    /// # Errors
    ///
    /// [`AdaptiveLookup::Missing`] or [`AdaptiveLookup::Gone`].
    pub fn with<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut AdaptiveSitting) -> R,
    ) -> Result<R, AdaptiveLookup> {
        let slot = match self.live.read().get(id) {
            Some(slot) => Arc::clone(slot),
            None if self.finished.read().contains(id) => return Err(AdaptiveLookup::Gone),
            None => return Err(AdaptiveLookup::Missing),
        };
        let mut sitting = slot.lock();
        Ok(f(&mut sitting))
    }

    /// Removes a finished sitting, remembering the id so later requests
    /// draw 410 Gone rather than 404.
    pub fn remove(&self, id: &str) {
        if self.live.write().remove(id).is_some() {
            self.finished.write().insert(id.to_string());
        }
    }

    /// Number of live sittings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.read().len()
    }

    /// Whether no sittings are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.read().is_empty()
    }

    /// Captures every live sitting, ordered by id.
    #[must_use]
    pub fn capture(&self) -> Vec<AdaptiveImage> {
        self.live
            .read()
            .values()
            .map(|slot| slot.lock().image())
            .collect()
    }

    /// Drops all state (used when a follower re-bootstraps).
    pub fn clear(&self) {
        self.live.write().clear();
        self.finished.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};

    fn calibrated_repo(n: usize) -> Repository {
        let repo = Repository::new();
        let mut builder = Exam::builder("cat").unwrap();
        for i in 0..n {
            let id = format!("a{i:02}");
            let problem = Problem::multiple_choice(
                id.as_str(),
                format!("Question {i}"),
                [
                    ChoiceOption::new(OptionKey::A, "yes"),
                    ChoiceOption::new(OptionKey::B, "no"),
                ],
                OptionKey::A,
            )
            .unwrap()
            .with_calibration(Calibration::new(
                1.2,
                (i as f64 / n as f64) * 4.0 - 2.0,
                0.1,
            ));
            repo.insert_problem(problem).unwrap();
            builder = builder.entry(id.parse().unwrap());
        }
        repo.insert_exam(builder.build().unwrap()).unwrap();
        repo
    }

    fn start(n: usize, options: AdaptiveOptions) -> AdaptiveSitting {
        let repo = calibrated_repo(n);
        let (exam, problems) = repo.resolve_exam(&"cat".parse().unwrap()).unwrap();
        AdaptiveSitting::start(exam.id().clone(), problems, "s1".parse().unwrap(), options).unwrap()
    }

    #[test]
    fn uncalibrated_bank_is_rejected_naming_the_problem() {
        let repo = calibrated_repo(4);
        repo.update_problem(&"a02".parse().unwrap(), |p| {
            p.set_calibration(None);
            Ok(())
        })
        .unwrap();
        let (exam, problems) = repo.resolve_exam(&"cat".parse().unwrap()).unwrap();
        let err = AdaptiveSitting::start(
            exam.id().clone(),
            problems,
            "s1".parse().unwrap(),
            AdaptiveOptions::for_bank(4),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AdaptiveStartError::Uncalibrated { ref problem } if problem == "a02"
        ));
    }

    #[test]
    fn sitting_runs_to_the_stop_rule_and_pads_the_record() {
        let mut sitting = start(
            8,
            AdaptiveOptions {
                seed: 1,
                min_items: 2,
                max_items: 3,
                se_threshold: 0.05,
            },
        );
        let mut seen = Vec::new();
        while let Some((item, _)) = sitting.current() {
            seen.push(item.clone());
            sitting
                .answer(Answer::Choice(OptionKey::A), Duration::from_secs(7))
                .unwrap();
        }
        assert_eq!(seen.len(), 3, "max_items governs");
        assert!(sitting.is_done());
        assert_eq!(
            sitting.answer(Answer::Choice(OptionKey::A), Duration::ZERO),
            Err(AdaptiveAnswerError::Complete)
        );
        let record = sitting.finish().unwrap();
        assert_eq!(record.responses.len(), 8, "full exam problem set");
        let attempted = record
            .responses
            .iter()
            .filter(|r| r.answer.is_attempted())
            .count();
        assert_eq!(attempted, 3);
        assert_eq!(record.total_time, Duration::from_secs(21));
    }

    #[test]
    fn image_restore_replays_to_identical_state() {
        let mut sitting = start(10, AdaptiveOptions::for_bank(10));
        for flag in [true, false, true] {
            let answer = if flag {
                Answer::Choice(OptionKey::A)
            } else {
                Answer::Choice(OptionKey::B)
            };
            sitting.answer(answer, Duration::from_secs(5)).unwrap();
        }
        let mut restored = sitting.image().restore().unwrap();
        assert_eq!(restored.estimate(), sitting.estimate());
        assert_eq!(restored.step_count(), sitting.step_count());
        assert_eq!(restored.current(), sitting.current());
        assert_eq!(
            restored.finish().unwrap().to_value(),
            sitting.finish().unwrap().to_value()
        );
    }

    #[test]
    fn registry_lifecycle_and_tombstones() {
        let registry = AdaptiveRegistry::new();
        let sitting = start(6, AdaptiveOptions::for_bank(6));
        let id = sitting.id().to_string();
        registry.insert(sitting.clone()).unwrap();
        assert_eq!(registry.insert(sitting), Err(AdaptiveLookup::Duplicate));
        assert!(registry.routes(&id));
        assert_eq!(registry.len(), 1);
        registry
            .with(&id, |s| assert_eq!(s.step_count(), 0))
            .unwrap();
        registry.remove(&id);
        assert!(registry.routes(&id));
        assert_eq!(registry.with(&id, |_| ()), Err(AdaptiveLookup::Gone));
        assert_eq!(registry.with("nope", |_| ()), Err(AdaptiveLookup::Missing));
    }
}
