//! The delivery micro-service (§5): the sitting lifecycle over HTTP.
//!
//! "Learners take the exam or the problems with Internet browser" — the
//! paper's system is a networked service, not a library. This crate is
//! that serving layer: a std-only HTTP/1.1 service (no async runtime —
//! loopback `std::net::TcpListener` plus a worker thread pool) exposing
//! the full [`mine_delivery::ExamSession`] lifecycle and the live §4
//! analysis pipeline as JSON endpoints:
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /sessions` | start a sitting (`"mode": "adaptive"` for CAT) |
//! | `GET /sessions/{id}` | session status (adaptive: current item, θ̂, SE, steps) |
//! | `POST /sessions/{id}/answers` | answer the current question |
//! | `POST /sessions/{id}/pause` | pause, returning a checkpoint |
//! | `POST /sessions/{id}/resume` | reactivate a paused sitting |
//! | `POST /sessions/{id}/finish` | grade and file the [`mine_core::StudentRecord`] |
//! | `GET /exams/{id}/analysis` | live §4 report over finished sittings |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | request counts, latency histogram, session gauges |
//!
//! The architecture is transport-agnostic: [`Router::handle`] maps a
//! parsed [`http::Request`] to an [`http::Response`] over a sharded
//! [`SessionRegistry`], so handler unit tests run with zero sockets
//! while [`Server::start`] serves the same router over real loopback
//! TCP. [`loadgen`] drives a running server with many deterministic
//! concurrent clients.
//!
//! # Examples
//!
//! ```
//! use mine_itembank::{Exam, Problem, Repository};
//! use mine_server::http::Request;
//! use mine_server::Router;
//!
//! let repo = Repository::new();
//! repo.insert_problem(Problem::true_false("q1", "1 + 1 = 2", true)?)?;
//! repo.insert_exam(Exam::builder("quiz")?.entry("q1".parse()?).build()?)?;
//! let router = Router::new(repo);
//!
//! // Drive the whole lifecycle in-process, no sockets.
//! let started = router.handle(&Request::new(
//!     "POST",
//!     "/sessions",
//!     r#"{"exam":"quiz","student":"s1"}"#,
//! ));
//! assert_eq!(started.status, 201);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod audit;
pub mod client;
pub mod drain;
pub mod http;
pub mod journal;
pub mod loadgen;
pub mod metrics;
pub mod overload;
pub mod registry;
pub mod repl;
pub mod router;
pub mod scrub;
pub mod serve;

pub use adaptive::{
    AdaptiveImage, AdaptiveLookup, AdaptiveRegistry, AdaptiveSitting, AdaptiveStep,
};
pub use audit::{audit_dirs, AuditReport, NodeAudit};
pub use client::{
    backoff_delay, ClientResponse, HttpClient, ResilientClient, RetryPolicy,
    DEFAULT_CLIENT_TIMEOUT, MAX_LEADER_MOVES,
};
pub use drain::{DrainReport, DrainState, Lifecycle};
pub use http::ParseLimits;
pub use journal::{
    decode_events, open_journaled_state, Journal, RecoveryReport, ServerImage, SessionEvent,
    SlotImage,
};
pub use loadgen::{run_loadgen, AnswerKey, LoadGenOptions, LoadGenReport, LoadMode};
pub use metrics::{Metrics, MetricsSnapshot, Route};
pub use overload::{OverloadOptions, PeerLimiter, RateLimit, TokenBucket};
pub use registry::{FinishedStore, RegistryError, SessionRegistry, SessionSlot};
pub use repl::{
    start_follower, AckMode, FailoverConfig, FollowerPuller, ReplListener, ReplState, Role,
    DEFAULT_FAILOVER_TIMEOUT,
};
pub use router::{ApiError, Router, ServerState, StorageHealth};
pub use scrub::{scrub_pass, IntegrityTable, Scrubber, DEFAULT_SCRUB_INTERVAL};
pub use serve::{ServeOptions, Server};
