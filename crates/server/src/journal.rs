//! Durability for the delivery service: every session mutation is
//! journaled as a [`SessionEvent`] in a [`mine_store::EventStore`]
//! write-ahead log, and a restarted server rebuilds byte-identical
//! registry state by replaying snapshot + tail.
//!
//! # Write path
//!
//! Handlers journal WAL-first: the event is appended *before* the
//! in-memory mutation, inside the same per-session lock, so the log
//! order of any one session's events always matches the order its
//! mutations were applied in. A journaled event whose mutation then
//! fails (a duplicate start, an answer after expiry) is harmless —
//! replay drives the same code path and fails the same deterministic
//! way.
//!
//! # Snapshot path
//!
//! Periodically the router captures a [`ServerImage`] — every live
//! session as a [`SessionImage`] plus every finished record — under the
//! journal's write gate (which excludes all mutating handlers) and
//! hands it to [`EventStore::snapshot`], which compacts the log.
//!
//! # Recovery
//!
//! [`open_journaled_state`] restores the image, replays the tail
//! through the very same registry/session methods the live handlers
//! use, and returns the ready [`ServerState`]. Determinism comes from
//! the sessions' logical clock: no wall time is ever consulted.

use std::path::Path;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use serde::{Deserialize, Serialize};

use mine_adaptive::AdaptiveOptions;
use mine_core::{Answer, ExamId, StudentId, StudentRecord};
use mine_delivery::{DeliveryOptions, ExamSession, SessionCheckpoint, SessionImage};
use mine_itembank::Repository;
use mine_store::{EventStore, Recovered, StoreError, StoreOptions};
use mine_streamstats::StreamEngine;

use crate::adaptive::{AdaptiveImage, AdaptiveRegistry, AdaptiveSitting};
use crate::registry::{FinishedStore, SessionRegistry};
use crate::router::ServerState;

/// One journaled mutation of the session registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// `POST /sessions` — a sitting was started. The session id is
    /// derived deterministically from `exam`, `student`, and the seed,
    /// so it is not stored.
    Created {
        /// The exam sat.
        exam: ExamId,
        /// The learner.
        student: StudentId,
        /// Options (seed, resumability, accommodation).
        options: DeliveryOptions,
    },
    /// `POST /sessions/{id}/answers` — an answer attempt reached the
    /// session (journaled even when the session rejects it, because a
    /// rejection can still move the logical clock: time expiry clamps
    /// `elapsed` to the limit).
    Answered {
        /// The session answered.
        session: String,
        /// The answer given.
        answer: Answer,
        /// Logical time spent, in whole microseconds.
        time_spent: std::time::Duration,
    },
    /// `POST /sessions/{id}/pause`.
    Paused {
        /// The session paused.
        session: String,
    },
    /// `POST /sessions/{id}/resume`.
    Resumed {
        /// The session resumed.
        session: String,
    },
    /// `POST /sessions/{id}/finish` — the sitting was graded, filed,
    /// and evicted.
    Finished {
        /// The session finished.
        session: String,
    },
    /// `POST /sessions` with `"mode": "adaptive"` — a CAT sitting was
    /// started. Like `Created`, the session id derives from exam,
    /// student, and seed.
    AdaptiveCreated {
        /// The exam sat.
        exam: ExamId,
        /// The learner.
        student: StudentId,
        /// Stop-rule parameters and seed.
        options: AdaptiveOptions,
    },
    /// One adaptive step: the answer submitted for the pending item.
    /// The estimator state delta is *implied* — replaying the answer
    /// through the deterministic grade → record → EAP → max-information
    /// pipeline reproduces the posterior and the next item bit-for-bit.
    AdaptiveStep {
        /// The sitting stepped.
        session: String,
        /// The submitted answer.
        answer: Answer,
        /// Reported time on the item.
        time_spent: std::time::Duration,
    },
    /// `POST /sessions/{id}/finish` on an adaptive sitting.
    AdaptiveFinished {
        /// The sitting finished.
        session: String,
    },
}

impl SessionEvent {
    /// Short label for inspection tooling (`mine recover`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SessionEvent::Created { .. } => "created",
            SessionEvent::Answered { .. } => "answered",
            SessionEvent::Paused { .. } => "paused",
            SessionEvent::Resumed { .. } => "resumed",
            SessionEvent::Finished { .. } => "finished",
            SessionEvent::AdaptiveCreated { .. } => "adaptive-created",
            SessionEvent::AdaptiveStep { .. } => "adaptive-step",
            SessionEvent::AdaptiveFinished { .. } => "adaptive-finished",
        }
    }
}

/// One live session inside a [`ServerImage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotImage {
    /// The full session state.
    pub session: SessionImage,
    /// The server-side copy of the latest pause checkpoint.
    pub checkpoint: Option<SessionCheckpoint>,
}

/// Finished records of one exam inside a [`ServerImage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamRecords {
    /// The exam id.
    pub exam: String,
    /// Finished records in student-id order.
    pub records: Vec<StudentRecord>,
}

/// Everything the registry and finished store hold, in deterministic
/// order — the payload of a store snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerImage {
    /// Live sessions, ordered by session id.
    pub sessions: Vec<SlotImage>,
    /// Finished records, ordered by exam id.
    pub finished: Vec<ExamRecords>,
    /// Live adaptive sittings, ordered by session id. `Option` so
    /// snapshots written before adaptive serving existed still decode.
    pub adaptive: Option<Vec<AdaptiveImage>>,
}

impl ServerImage {
    /// Captures the current registries and finished store.
    #[must_use]
    pub fn capture(
        registry: &SessionRegistry,
        finished: &FinishedStore,
        adaptive: &AdaptiveRegistry,
    ) -> Self {
        Self {
            sessions: registry
                .capture()
                .into_iter()
                .map(|(session, checkpoint)| SlotImage {
                    session: session.image(),
                    checkpoint,
                })
                .collect(),
            finished: finished
                .capture()
                .into_iter()
                .map(|(exam, records)| ExamRecords { exam, records })
                .collect(),
            adaptive: Some(adaptive.capture()),
        }
    }

    /// Restores this image into an (empty) registry, finished store,
    /// and streaming engine. Every restored record is folded into the
    /// engine through the same `apply` the live finish path uses, so a
    /// restarted (or bootstrapped) node's streaming report converges on
    /// the origin's.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first session that failed to
    /// rebuild.
    pub fn restore(
        self,
        registry: &SessionRegistry,
        finished: &FinishedStore,
        stream: &StreamEngine,
        adaptive: &AdaptiveRegistry,
    ) -> Result<(), String> {
        for slot in self.sessions {
            let id = slot.session.id.as_str().to_string();
            let session = ExamSession::from_image(slot.session)
                .map_err(|err| format!("session {id} failed to rebuild: {err}"))?;
            registry
                .insert(session)
                .map_err(|err| format!("session {id} failed to re-register: {err}"))?;
            if slot.checkpoint.is_some() {
                registry
                    .with(&id, |live| live.checkpoint = slot.checkpoint.clone())
                    .map_err(|err| format!("session {id} vanished during restore: {err}"))?;
            }
        }
        for exam in self.finished {
            for record in exam.records {
                stream.apply(&exam.exam, &record);
                finished.push(&exam.exam, record);
            }
        }
        for image in self.adaptive.unwrap_or_default() {
            let sitting = image.restore()?;
            let id = sitting.id().to_string();
            adaptive
                .insert(sitting)
                .map_err(|err| format!("adaptive sitting {id} failed to re-register: {err:?}"))?;
        }
        Ok(())
    }
}

/// The server's handle on its write-ahead log: the event store plus the
/// snapshot gate handlers and the compactor coordinate through.
#[derive(Debug)]
pub struct Journal {
    store: EventStore,
    /// Mutating handlers hold `read`; the compactor holds `write` while
    /// capturing a [`ServerImage`], so a snapshot never interleaves
    /// with a half-applied mutation. Lock order is always gate →
    /// registry shard/slot → store mutex, so no cycle exists.
    gate: RwLock<()>,
    /// Snapshot after this many journaled events (0 = never).
    snapshot_every: u64,
}

impl Journal {
    /// Opens the journal at `dir`, recovering prior state.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from [`EventStore::open`].
    pub fn open(
        dir: impl AsRef<Path>,
        options: StoreOptions,
        snapshot_every: u64,
    ) -> Result<(Self, Recovered), StoreError> {
        let (store, recovered) = EventStore::open(dir.as_ref().to_path_buf(), options)?;
        Ok((
            Self {
                store,
                gate: RwLock::new(()),
                snapshot_every,
            },
            recovered,
        ))
    }

    /// The underlying event store (epoch reads, head inspection).
    #[must_use]
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Appends one event (WAL-first: call before applying the
    /// mutation).
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the underlying append.
    pub fn append(&self, event: &SessionEvent) -> Result<u64, StoreError> {
        let payload = serde_json::to_string(event).map_err(|err| {
            StoreError::Io(std::io::Error::other(format!(
                "event failed to serialize: {err}"
            )))
        })?;
        self.append_raw(payload.as_bytes())
    }

    /// Appends pre-serialized event bytes. The replication follower uses
    /// this to journal the primary's records byte for byte, so its log —
    /// and therefore anything replayed from it — is identical to the
    /// primary's.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the underlying append.
    pub fn append_raw(&self, payload: &[u8]) -> Result<u64, StoreError> {
        self.store.append(payload)
    }

    /// Installs a bootstrap snapshot received from a primary, rebasing
    /// the local log to its sequence numbering. Call with the write gate
    /// held.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`].
    pub fn install_snapshot(&self, payload: &[u8], last_seq: u64) -> Result<(), StoreError> {
        self.store.install_snapshot(payload, last_seq)
    }

    /// Shared gate for mutating handlers.
    pub fn gate_read(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read()
    }

    /// Exclusive gate for the compactor.
    pub fn gate_write(&self) -> RwLockWriteGuard<'_, ()> {
        self.gate.write()
    }

    /// Whether enough events have accumulated to warrant a snapshot.
    #[must_use]
    pub fn due_for_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.store.events_since_snapshot() >= self.snapshot_every
    }

    /// Writes a compacting snapshot of `image`. Call with the write
    /// gate held.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`]; the log remains intact on failure.
    pub fn write_snapshot(&self, image: &ServerImage) -> Result<(), StoreError> {
        let payload = serde_json::to_string(image).map_err(|err| {
            StoreError::Io(std::io::Error::other(format!(
                "image failed to serialize: {err}"
            )))
        })?;
        self.store.snapshot(payload.as_bytes())
    }

    /// Flushes the log to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`].
    pub fn sync(&self) -> Result<(), StoreError> {
        self.store.sync()
    }
}

/// What [`open_journaled_state`] found and rebuilt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Live sessions restored from the snapshot image.
    pub snapshot_sessions: usize,
    /// Finished records restored from the snapshot image.
    pub snapshot_records: usize,
    /// Tail events replayed after the snapshot.
    pub events_replayed: usize,
    /// Store-level repairs (torn tails truncated).
    pub warnings: Vec<String>,
    /// Events that did not apply cleanly (deterministic rejections are
    /// expected here — e.g. an answer the live server also rejected).
    pub notes: Vec<String>,
}

/// Replays one journaled event through the same code paths the live
/// handlers use. Returns a note when the event did not apply cleanly.
/// Recovery and the replication follower share this function, which is
/// what makes a replica's in-memory state bit-identical to what the
/// primary would rebuild from the same log.
pub(crate) fn apply_event(
    repository: &Repository,
    registry: &SessionRegistry,
    finished: &FinishedStore,
    stream: &StreamEngine,
    adaptive: &AdaptiveRegistry,
    event: SessionEvent,
) -> Option<String> {
    match event {
        SessionEvent::Created {
            exam,
            student,
            options,
        } => {
            let (exam, problems) = match repository.resolve_exam(&exam) {
                Ok(resolved) => resolved,
                Err(err) => return Some(format!("created: {err}")),
            };
            let session = match ExamSession::start(&exam, problems, student, options) {
                Ok(session) => session,
                Err(err) => return Some(format!("created: {err}")),
            };
            registry
                .insert(session)
                .err()
                .map(|err| format!("created: {err}"))
        }
        SessionEvent::Answered {
            session,
            answer,
            time_spent,
        } => match registry.with(&session, |slot| slot.session.answer(answer, time_spent)) {
            // An answer the live server rejected (expiry, wrong kind)
            // replays as the same rejection — not a divergence.
            Ok(_) => None,
            Err(err) => Some(format!("answered: {err}")),
        },
        SessionEvent::Paused { session } => {
            match registry.with(&session, |slot| {
                let checkpoint = slot.session.pause()?;
                slot.checkpoint = Some(checkpoint);
                Ok::<_, mine_delivery::DeliveryError>(())
            }) {
                Ok(_) => None,
                Err(err) => Some(format!("paused: {err}")),
            }
        }
        SessionEvent::Resumed { session } => {
            match registry.with(&session, |slot| slot.session.reactivate()) {
                Ok(_) => None,
                Err(err) => Some(format!("resumed: {err}")),
            }
        }
        SessionEvent::Finished { session } => {
            let outcome = registry.with(&session, |slot| {
                slot.session
                    .finish()
                    .map(|record| (slot.session.exam_id().as_str().to_string(), record))
            });
            match outcome {
                Ok(Ok((exam, record))) => {
                    // Mirror the live finish path: file and fold under
                    // the engine's per-exam lock so replay produces the
                    // same engine state the origin built incrementally.
                    stream.with_exam(&exam, |exam_stream| {
                        finished.push(&exam, record.clone());
                        exam_stream.apply(&record);
                    });
                    let _ = registry.remove(&session);
                    None
                }
                Ok(Err(err)) => Some(format!("finished: {err}")),
                Err(err) => Some(format!("finished: {err}")),
            }
        }
        SessionEvent::AdaptiveCreated {
            exam,
            student,
            options,
        } => {
            let (exam, problems) = match repository.resolve_exam(&exam) {
                Ok(resolved) => resolved,
                Err(err) => return Some(format!("adaptive-created: {err}")),
            };
            let sitting =
                match AdaptiveSitting::start(exam.id().clone(), problems, student, options) {
                    Ok(sitting) => sitting,
                    Err(err) => return Some(format!("adaptive-created: {err}")),
                };
            adaptive
                .insert(sitting)
                .err()
                .map(|err| format!("adaptive-created: {err:?}"))
        }
        SessionEvent::AdaptiveStep {
            session,
            answer,
            time_spent,
        } => match adaptive.with(&session, |sitting| sitting.answer(answer, time_spent)) {
            // A step the live server rejected (a grading error after the
            // append) replays as the same deterministic rejection.
            Ok(_) => None,
            Err(err) => Some(format!("adaptive-step: {err:?}")),
        },
        SessionEvent::AdaptiveFinished { session } => {
            let outcome = adaptive.with(&session, |sitting| {
                sitting
                    .finish()
                    .map(|record| (sitting.exam().as_str().to_string(), record))
            });
            match outcome {
                Ok(Ok((exam, record))) => {
                    stream.with_exam(&exam, |exam_stream| {
                        finished.push(&exam, record.clone());
                        exam_stream.apply(&record);
                    });
                    adaptive.remove(&session);
                    None
                }
                Ok(Err(err)) => Some(format!("adaptive-finished: {err}")),
                Err(err) => Some(format!("adaptive-finished: {err:?}")),
            }
        }
    }
}

/// Opens the journal at `dir`, rebuilds the full [`ServerState`] from
/// snapshot + tail, and attaches the journal so subsequent mutations
/// keep being logged.
///
/// # Errors
///
/// Returns the store error, a snapshot-decode error, or a restore
/// failure as a human-readable message (the caller is `mine serve`,
/// which exits with it).
pub fn open_journaled_state(
    repository: Repository,
    dir: impl AsRef<Path>,
    options: StoreOptions,
    snapshot_every: u64,
) -> Result<(ServerState, RecoveryReport), String> {
    let (journal, recovered) =
        Journal::open(dir, options, snapshot_every).map_err(|err| err.to_string())?;
    let mut state = ServerState::new(repository);
    let mut report = RecoveryReport {
        warnings: recovered.warnings,
        ..RecoveryReport::default()
    };

    if let Some(snapshot) = recovered.snapshot {
        let text = String::from_utf8(snapshot.payload)
            .map_err(|_| "snapshot payload is not UTF-8".to_string())?;
        let image: ServerImage = serde_json::from_str(&text)
            .map_err(|err| format!("snapshot failed to decode: {err}"))?;
        report.snapshot_sessions =
            image.sessions.len() + image.adaptive.as_ref().map_or(0, Vec::len);
        report.snapshot_records = image.finished.iter().map(|e| e.records.len()).sum();
        image.restore(
            &state.registry,
            &state.finished,
            &state.stream,
            &state.adaptive,
        )?;
    }

    for record in recovered.events {
        let text = String::from_utf8(record.payload)
            .map_err(|_| format!("event seq {} is not UTF-8", record.seq))?;
        let event: SessionEvent = serde_json::from_str(&text)
            .map_err(|err| format!("event seq {} failed to decode: {err}", record.seq))?;
        if let Some(note) = apply_event(
            &state.repository,
            &state.registry,
            &state.finished,
            &state.stream,
            &state.adaptive,
            event,
        ) {
            report.notes.push(format!("seq {}: {note}", record.seq));
        }
        report.events_replayed += 1;
    }

    state.journal = Some(journal);
    Ok((state, report))
}

/// Decodes every event in a recovered log for offline inspection
/// (`mine recover`). Returns `(seq, event)` pairs.
///
/// # Errors
///
/// Returns a message for the first undecodable event.
pub fn decode_events(recovered: &Recovered) -> Result<Vec<(u64, SessionEvent)>, String> {
    recovered
        .events
        .iter()
        .map(|record| {
            let text = std::str::from_utf8(&record.payload)
                .map_err(|_| format!("event seq {} is not UTF-8", record.seq))?;
            let event: SessionEvent = serde_json::from_str(text)
                .map_err(|err| format!("event seq {} failed to decode: {err}", record.seq))?;
            Ok((record.seq, event))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn session_events_round_trip_through_json() {
        let events = vec![
            SessionEvent::Created {
                exam: "quiz".parse().unwrap(),
                student: "s1".parse().unwrap(),
                options: DeliveryOptions {
                    seed: 7,
                    resumable: false,
                    time_accommodation: 1.5,
                },
            },
            SessionEvent::Answered {
                session: "quiz#s1@7".to_string(),
                answer: Answer::TrueFalse(true),
                time_spent: Duration::from_millis(1500),
            },
            SessionEvent::Paused {
                session: "quiz#s1@7".to_string(),
            },
            SessionEvent::Resumed {
                session: "quiz#s1@7".to_string(),
            },
            SessionEvent::Finished {
                session: "quiz#s1@7".to_string(),
            },
            SessionEvent::AdaptiveCreated {
                exam: "quiz".parse().unwrap(),
                student: "s1".parse().unwrap(),
                options: AdaptiveOptions {
                    seed: 3,
                    min_items: 1,
                    max_items: 8,
                    se_threshold: 0.3,
                },
            },
            SessionEvent::AdaptiveStep {
                session: "quiz~s1@3".to_string(),
                answer: Answer::TrueFalse(false),
                time_spent: Duration::from_secs(4),
            },
            SessionEvent::AdaptiveFinished {
                session: "quiz~s1@3".to_string(),
            },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: SessionEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "{json}");
        }
    }
}
