//! End-to-end tests over real loopback TCP: many concurrent clients
//! drive full sittings against a running [`Server`], and the live
//! analysis endpoint must agree byte-for-byte with running the §4
//! pipeline directly on the same records.

use std::thread;

use serde::{Number, Value};

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{ExamRecord, OptionKey};
use mine_itembank::{ChoiceOption, Exam, Problem, Repository};
use mine_server::{HttpClient, Router, ServeOptions, Server};

const CLIENTS: usize = 32;

/// An exam with enough spread potential that 32 deterministic clients
/// produce distinct high/low score groups.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(OptionKey::A, "alpha"),
                ChoiceOption::new(OptionKey::B, "beta"),
                ChoiceOption::new(OptionKey::C, "gamma"),
                ChoiceOption::new(OptionKey::D, "delta"),
            ],
            OptionKey::C,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_problem(Problem::true_false("q2", "Is the sky blue?", true).unwrap())
        .unwrap();
    repo.insert_problem(
        Problem::multiple_choice(
            "q3",
            "Pick A.",
            [
                ChoiceOption::new(OptionKey::A, "yes"),
                ChoiceOption::new(OptionKey::B, "no"),
            ],
            OptionKey::A,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .entry("q3".parse().unwrap())
            .test_time(std::time::Duration::from_secs(1800))
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

/// The answer client `index` gives to a problem — deterministic, so the
/// test knows the exact class record without trusting the server.
fn answer_json(problem: &str, index: usize) -> String {
    match problem {
        "q1" => {
            let letter = char::from(b'A' + (index % 4) as u8);
            format!("{{\"Choice\":\"{letter}\"}}")
        }
        "q2" => format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3)),
        "q3" => format!(
            "{{\"Choice\":\"{}\"}}",
            if index.is_multiple_of(2) { "A" } else { "B" }
        ),
        other => panic!("unexpected problem {other}"),
    }
}

/// Drives one full sitting over its own TCP connection.
fn run_sitting(addr: &str, index: usize) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let started = client
        .post(
            "/sessions",
            &format!("{{\"exam\":\"final\",\"student\":\"c{index:02}\",\"seed\":{index}}}"),
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = started.json().expect("start body");
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string();
    let order: Vec<String> = started
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    assert_eq!(order.len(), 3);

    for (step, problem) in order.iter().enumerate() {
        // A third of the clients suspend and come back mid-sitting.
        if step == 1 && index.is_multiple_of(3) {
            let paused = client
                .post(&format!("/sessions/{session}/pause"), "")
                .expect("pause");
            assert_eq!(paused.status, 200, "{}", paused.body);
            let resumed = client
                .post(&format!("/sessions/{session}/resume"), "")
                .expect("resume");
            assert_eq!(resumed.status, 200, "{}", resumed.body);
        }
        let body = format!(
            "{{\"answer\":{},\"time_spent_secs\":{}}}",
            answer_json(problem, index),
            10 + index % 7
        );
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }

    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
    let record: Value = finished.json().expect("record body");
    assert_eq!(
        record.get("student").and_then(Value::as_str),
        Some(format!("c{index:02}").as_str())
    );

    // The slot is gone once the sitting is filed.
    let gone = client
        .get(&format!("/sessions/{session}"))
        .expect("status after finish");
    assert_eq!(gone.status, 404, "{}", gone.body);
}

#[test]
fn concurrent_clients_complete_sittings_and_analysis_matches_direct_run() {
    let repo = repository();
    let router = Router::new(repo.clone());
    let server = Server::start(
        router.clone(),
        &ServeOptions {
            threads: 8,
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|index| {
            let addr = addr.clone();
            thread::spawn(move || run_sitting(&addr, index))
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Every sitting was filed; none is still live.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let metrics = client.get("/metrics?format=json").expect("metrics");
    assert_eq!(metrics.status, 200);
    let metrics: Value = metrics.json().expect("metrics body");
    let counter = |name: &str| match metrics.get(name) {
        Some(Value::Number(Number::PosInt(n))) => *n,
        other => panic!("bad counter {name}: {other:?}"),
    };
    assert_eq!(counter("sessions_started"), CLIENTS as u64);
    assert_eq!(counter("sessions_finished"), CLIENTS as u64);
    assert_eq!(counter("active_sessions"), 0);
    assert!(router.state().registry.is_empty());

    // The acceptance bar: the live endpoint's report is byte-identical
    // to running the batch analyzer directly on the same records.
    let served = client.get("/exams/final/analysis").expect("analysis");
    assert_eq!(served.status, 200, "{}", served.body);

    let records = router.state().finished.records("final");
    assert_eq!(records.len(), CLIENTS);
    let exam_id = "final".parse().expect("exam id");
    let (_, problems) = repo.resolve_exam(&exam_id).expect("resolve");
    let class = ExamRecord::new(exam_id, records);
    let direct = BatchAnalyzer::new(AnalysisConfig::default())
        .analyze_records(std::slice::from_ref(&class), &problems)
        .expect("direct analysis");
    let direct = serde_json::to_string(&direct).expect("serialize report");
    assert_eq!(served.body, direct);

    // Asking again is answered from the streaming engine — same bytes.
    let again = client.get("/exams/final/analysis").expect("analysis again");
    assert_eq!(again.body, served.body);

    // Forcing batch recomputes the identical bytes, and a second batch
    // read is answered from the analyzer's cache.
    let batch = client
        .get("/exams/final/analysis?mode=batch")
        .expect("batch analysis");
    assert_eq!(batch.body, served.body);
    let batch_again = client
        .get("/exams/final/analysis?mode=batch")
        .expect("batch analysis again");
    assert_eq!(batch_again.body, served.body);
    assert!(router.state().analyzer.cache_stats().hits >= 1);

    server.shutdown();
}

#[test]
fn keep_alive_connection_serves_many_requests_and_rejects_garbage() {
    let server =
        Server::start(Router::new(repository()), &ServeOptions::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();

    // Dozens of requests down one keep-alive connection.
    let mut client = HttpClient::connect(&addr).expect("connect");
    for _ in 0..40 {
        let health = client.get("/healthz").expect("healthz");
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    }
    let missing = client.get("/sessions/nope").expect("missing session");
    assert_eq!(missing.status, 404);

    // A malformed request line is answered 400 and the connection drops.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(b"NOT-HTTP\r\n\r\n").expect("write garbage");
        let mut reply = String::new();
        raw.read_to_string(&mut reply).expect("read reply");
        assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
    }

    // The earlier keep-alive connection is unaffected.
    let health = client.get("/healthz").expect("healthz after garbage");
    assert_eq!(health.status, 200);

    server.shutdown();
}
