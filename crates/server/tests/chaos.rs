//! The overload/chaos acceptance tests: load past capacity, stalled
//! and byte-dribbling clients, and drain mid-storm.
//!
//! What must hold (ISSUE 4 acceptance bar):
//! * every shed request is answered `503 + Retry-After` at the edge —
//!   never mid-session;
//! * a stalled or dribbling client is cut off deterministically with a
//!   real `408`/`413` response, not a silent drop;
//! * drain mid-storm loses **zero** acknowledged finished sittings and
//!   the restarted server serves byte-identical analysis;
//! * the drain deadline bounds the wait, not the consistency: expiry
//!   still pauses active sessions and writes the final snapshot.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Value;

use mine_analysis::{AnalysisConfig, BatchAnalyzer};
use mine_core::{ExamRecord, OptionKey};
use mine_itembank::{ChoiceOption, Exam, Problem, Repository};
use mine_server::http::Request;
use mine_server::{
    open_journaled_state, run_loadgen, HttpClient, LoadGenOptions, OverloadOptions, ParseLimits,
    RateLimit, RetryPolicy, Router, ServeOptions, Server,
};
use mine_store::{StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(OptionKey::A, "alpha"),
                ChoiceOption::new(OptionKey::B, "beta"),
                ChoiceOption::new(OptionKey::C, "gamma"),
                ChoiceOption::new(OptionKey::D, "delta"),
            ],
            OptionKey::C,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_problem(Problem::true_false("q2", "Is the sky blue?", true).unwrap())
        .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .test_time(Duration::from_secs(1800))
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

/// Polls `predicate` until it holds or `deadline` passes.
fn wait_until(deadline: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    predicate()
}

/// Reads everything the server sends until it closes the connection.
fn read_all(stream: &mut TcpStream) -> String {
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    reply
}

#[test]
fn overload_sheds_at_the_edge_with_retry_after() {
    let router = Router::new(repository());
    let server = Server::start(
        router,
        &ServeOptions {
            threads: 2,
            read_timeout: Duration::from_secs(30),
            overload: OverloadOptions {
                queue_depth: 1,
                rate_limit: None,
                shed_retry_after_secs: 2,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let metrics = || server.router().state().metrics.snapshot(0, 0);

    // Two stalled clients pin both workers. Each completes one real
    // keep-alive exchange first, which proves a worker is committed to
    // its connection (blocked reading the next request that never
    // comes) before the next connection arrives.
    let mut stall_a = HttpClient::connect(&addr).expect("stall a");
    assert_eq!(stall_a.get("/healthz").expect("pin a").status, 200);
    let mut stall_b = HttpClient::connect(&addr).expect("stall b");
    assert_eq!(stall_b.get("/healthz").expect("pin b").status, 200);
    // A third connection fills the accept queue (depth 1); no worker
    // will ever take it while the stalls hold.
    let queued = TcpStream::connect(&addr).expect("filler");
    assert!(
        wait_until(Duration::from_secs(5), || metrics().queue_depth == 1),
        "filler connection never queued"
    );

    // Past capacity: the next connections are shed at accept time with
    // a proper 503 + Retry-After, before any request byte is read.
    for _ in 0..3 {
        let mut victim = TcpStream::connect(&addr).expect("victim");
        let reply = read_all(&mut victim);
        assert!(
            reply.starts_with("HTTP/1.1 503 "),
            "expected edge shed, got {reply:?}"
        );
        assert!(reply.contains("retry-after: 2\r\n"), "{reply:?}");
        assert!(reply.contains("connection: close"), "{reply:?}");
    }
    let snapshot = metrics();
    assert!(snapshot.shed_total >= 3, "{}", snapshot.shed_total);
    assert_eq!(snapshot.retry_after_secs, 2);

    // Releasing the stalled clients frees the workers; service resumes
    // without a restart.
    drop(stall_a);
    drop(stall_b);
    let mut client = HttpClient::connect(&addr).expect("connect after storm");
    assert!(
        wait_until(Duration::from_secs(5), || {
            client.get("/healthz").is_ok_and(|r| r.status == 200)
        }),
        "service never recovered after the stalls were released"
    );

    // Bounded latency: the histogram shows the overload never dragged a
    // served request past the 1-second bucket.
    let prom = client.get("/metrics").expect("metrics").body;
    let bucket_le_1s: u64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("mine_request_duration_seconds_bucket{le=\"1\"} "))
        .expect("le=1 bucket")
        .parse()
        .unwrap();
    let count: u64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("mine_request_duration_seconds_count "))
        .expect("histogram count")
        .parse()
        .unwrap();
    assert_eq!(bucket_le_1s, count, "a request exceeded 1s under overload");

    // Close every held connection before shutdown so no worker sits in
    // an idle read waiting for the 30s timeout.
    drop(queued);
    drop(client);
    server.shutdown();
}

#[test]
fn rate_limit_sheds_bursty_peer_with_wait_hint() {
    let server = Server::start(
        Router::new(repository()),
        &ServeOptions {
            threads: 2,
            overload: OverloadOptions {
                queue_depth: 64,
                rate_limit: Some(RateLimit {
                    per_second: 2,
                    burst: 2,
                }),
                shed_retry_after_secs: 2,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // The burst admits two connections; the third is rate-limited with
    // a Retry-After telling the peer when a token will exist.
    let first = TcpStream::connect(&addr).expect("first");
    let second = TcpStream::connect(&addr).expect("second");
    assert!(
        wait_until(Duration::from_secs(5), || {
            server
                .router()
                .state()
                .metrics
                .snapshot(0, 0)
                .rate_limited_total
                > 0
                || {
                    let mut third = TcpStream::connect(&addr).expect("third");
                    !read_all(&mut third).is_empty()
                }
        }),
        "limiter never engaged"
    );
    let mut third = TcpStream::connect(&addr).expect("third");
    let reply = read_all(&mut third);
    assert!(reply.starts_with("HTTP/1.1 503 "), "{reply:?}");
    assert!(reply.contains("retry-after: 1\r\n"), "{reply:?}");
    drop(first);
    drop(second);
    let snapshot = server.router().state().metrics.snapshot(0, 0);
    assert!(snapshot.rate_limited_total >= 1);

    // Honoring the advertised wait admits the peer again.
    std::thread::sleep(Duration::from_millis(1100));
    let mut client = HttpClient::connect(&addr).expect("reconnect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);

    drop(client);
    server.shutdown();
}

#[test]
fn dribbling_and_oversized_clients_get_real_responses() {
    let server = Server::start(
        Router::new(repository()),
        &ServeOptions {
            threads: 2,
            read_timeout: Duration::from_secs(2),
            request_budget: Duration::from_millis(300),
            limits: ParseLimits {
                max_head_bytes: 16 * 1024,
                max_body_bytes: 1024,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // A byte-dribbler: a few head bytes, then silence. The per-request
    // budget (armed at the first byte) cuts it off with a real 408.
    let mut dribbler = TcpStream::connect(&addr).expect("dribbler");
    for byte in b"GET /h" {
        dribbler.write_all(&[*byte]).expect("dribble");
        std::thread::sleep(Duration::from_millis(30));
    }
    let reply = read_all(&mut dribbler);
    assert!(
        reply.starts_with("HTTP/1.1 408 "),
        "expected request-timeout, got {reply:?}"
    );
    assert!(reply.contains("read deadline expired"), "{reply:?}");

    // An oversized declared body is refused up front with 413.
    let mut oversized = TcpStream::connect(&addr).expect("oversized");
    oversized
        .write_all(b"POST /sessions HTTP/1.1\r\ncontent-length: 2048\r\n\r\n")
        .expect("write oversized head");
    let reply = read_all(&mut oversized);
    assert!(
        reply.starts_with("HTTP/1.1 413 "),
        "expected payload-too-large, got {reply:?}"
    );

    // Neither pathological client degraded the service.
    let mut client = HttpClient::connect(&addr).expect("connect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);

    drop(client);
    server.shutdown();
}

#[test]
fn drain_mid_storm_loses_no_finished_sitting_and_analysis_survives_restart() {
    let dir = temp_dir("drain-storm");
    let (state, _) = open_journaled_state(
        repository(),
        &dir,
        StoreOptions {
            sync: SyncPolicy::Never,
            ..StoreOptions::default()
        },
        64,
    )
    .expect("open journal");
    let router = Router::with_state(state);
    let server = Server::start(
        router.clone(),
        &ServeOptions {
            threads: 4,
            read_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // The storm: 2× the worker count, retrying clients, full sittings.
    let storm = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_loadgen(&LoadGenOptions {
                addr,
                exam: "final".to_string(),
                clients: 8,
                seed: 11,
                ramp: Some(Duration::from_millis(120)),
                retry: RetryPolicy {
                    max_attempts: 2,
                    base: Duration::from_millis(30),
                    cap: Duration::from_millis(120),
                },
                ..LoadGenOptions::default()
            })
        })
    };

    // Mid-storm: drain. First flip the lifecycle and observe the
    // contract, then run the full drain to completion.
    std::thread::sleep(Duration::from_millis(60));
    server.begin_drain();
    // Every drain-mode response closes the connection (workers free up
    // after each exchange), so each observation uses a fresh one.
    let mut observer = HttpClient::connect(&addr).expect("observer");
    let health = observer.get("/healthz").expect("healthz while draining");
    assert_eq!(health.status, 503);
    assert!(
        health.body.contains(r#""status":"draining""#),
        "{}",
        health.body
    );
    let mut observer = HttpClient::connect(&addr).expect("observer 2");
    let shed = observer
        .post("/sessions", r#"{"exam":"final","student":"late"}"#)
        .expect("shed response");
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(
        shed.retry_after.is_some(),
        "shed response must carry Retry-After"
    );

    let report = server.drain(Duration::from_secs(5));
    assert!(report.snapshot_written, "{report:?}");
    assert!(report.notes.is_empty(), "{report:?}");
    let _ = storm.join().expect("storm thread");

    // Ground truth: what the drained server itself acknowledged.
    let acked: Vec<Value> = router
        .state()
        .finished
        .records("final")
        .iter()
        .map(serde::Serialize::to_value)
        .collect();
    let live_sessions = router.state().registry.len();

    // Restart from the journal directory.
    let (recovered, recovery) =
        open_journaled_state(repository(), &dir, StoreOptions::default(), 64).expect("recover");
    assert!(recovery.notes.is_empty(), "{:?}", recovery.notes);
    let recovered = Router::with_state(recovered);

    // Zero lost finished sittings: the recovered records are exactly
    // the acknowledged ones, byte for byte.
    let replayed: Vec<Value> = recovered
        .state()
        .finished
        .records("final")
        .iter()
        .map(serde::Serialize::to_value)
        .collect();
    assert_eq!(
        serde_json::to_string(&Value::Array(replayed)).unwrap(),
        serde_json::to_string(&Value::Array(acked)).unwrap(),
        "finished sittings diverged across drain + restart"
    );

    // Every sitting that was mid-flight at the drain came back paused
    // (the journaled `Paused` event), ready to resume.
    assert_eq!(recovered.state().registry.len(), live_sessions);
    for (session, _) in recovered.state().registry.capture() {
        assert_eq!(
            session.state(),
            mine_delivery::SessionState::Paused,
            "session {} not paused",
            session.id().as_str()
        );
    }

    // Byte-identical analysis after restart (when enough sittings
    // finished before the drain hit — the storm timing guarantees that
    // only probabilistically, so gate on it; a class of one cannot form
    // the high/low score groups the analysis needs).
    let records = recovered.state().finished.records("final");
    if records.len() >= 2 {
        let served = recovered.handle(&Request::new("GET", "/exams/final/analysis", ""));
        assert_eq!(served.status, 200, "{}", served.body);
        let exam_id = "final".parse().expect("exam id");
        let (_, problems) = repository().resolve_exam(&exam_id).expect("resolve");
        let class = ExamRecord::new(exam_id, records);
        let direct = BatchAnalyzer::new(AnalysisConfig::default())
            .analyze_records(std::slice::from_ref(&class), &problems)
            .expect("direct analysis");
        assert_eq!(served.body, serde_json::to_string(&direct).unwrap());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn drain_deadline_expiry_still_pauses_and_snapshots() {
    let dir = temp_dir("drain-deadline");
    let (state, _) = open_journaled_state(repository(), &dir, StoreOptions::default(), 64)
        .expect("open journal");
    let router = Router::with_state(state);
    let server = Server::start(
        router.clone(),
        &ServeOptions {
            threads: 1,
            read_timeout: Duration::from_millis(600),
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // One active session, started through the real handler so its
    // `Created` event is journaled.
    let started = router.handle(&Request::new(
        "POST",
        "/sessions",
        r#"{"exam":"final","student":"s1","seed":7}"#,
    ));
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = serde_json::from_str(&started.body).unwrap();
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // A stalled client pins the only worker; a second connection sits
    // in the accept queue, so the drain can never run dry before the
    // deadline.
    let _stall = TcpStream::connect(&addr).expect("stall");
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.router().state().metrics.snapshot(0, 0).queue_depth == 0
        }),
        "worker never picked up the stall"
    );
    let _queued = TcpStream::connect(&addr).expect("queued");
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.router().state().metrics.snapshot(0, 0).queue_depth == 1
        }),
        "second connection never queued"
    );

    let report = server.drain(Duration::from_millis(100));
    assert!(
        !report.drained_cleanly,
        "the pinned worker should have forced deadline expiry: {report:?}"
    );
    // Expiry bounds the wait, not the consistency: the active session
    // was paused through the journal and the final snapshot written.
    assert_eq!(report.sessions_paused, 1, "{report:?}");
    assert!(report.snapshot_written, "{report:?}");
    assert!(report.notes.is_empty(), "{report:?}");

    // The restarted server sees the paused session and can resume it.
    let (recovered, _) =
        open_journaled_state(repository(), &dir, StoreOptions::default(), 64).expect("recover");
    let recovered = Router::with_state(recovered);
    let status = recovered.handle(&Request::new("GET", &format!("/sessions/{session}"), ""));
    assert_eq!(status.status, 200, "{}", status.body);
    assert!(
        status.body.contains(r#""state":"paused""#),
        "{}",
        status.body
    );
    let resumed = recovered.handle(&Request::new(
        "POST",
        &format!("/sessions/{session}/resume"),
        "",
    ));
    assert_eq!(resumed.status, 200, "{}", resumed.body);
    std::fs::remove_dir_all(&dir).unwrap();
}
