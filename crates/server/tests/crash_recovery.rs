//! The durability acceptance test (§5 + the store layer): a journaled
//! server is killed with SIGKILL mid-service, restarted from its data
//! directory, and must serve a byte-identical `/exams/{id}/analysis`
//! report — plus keep the sitting that was mid-flight at the crash
//! alive and finishable.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use serde::{Number, Value};

use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_server::http::Request;
use mine_server::{open_journaled_state, HttpClient, Router, ServeOptions, Server};
use mine_store::{StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same exam in the child and the restarted parent: recovery
/// replays events against the repository, so both must agree.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(mine_core::OptionKey::A, "alpha"),
                ChoiceOption::new(mine_core::OptionKey::B, "beta"),
                ChoiceOption::new(mine_core::OptionKey::C, "gamma"),
                ChoiceOption::new(mine_core::OptionKey::D, "delta"),
            ],
            mine_core::OptionKey::C,
        )
        .unwrap()
        .with_calibration(Calibration::new(1.1, -0.4, 0.2)),
    )
    .unwrap();
    repo.insert_problem(
        Problem::true_false("q2", "Is the sky blue?", true)
            .unwrap()
            .with_calibration(Calibration::new(0.9, 0.6, 0.25)),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

/// The right answer for each bank item, for adaptive steps.
fn correct_answer_json(problem: &str) -> &'static str {
    match problem {
        "q1" => "{\"Choice\":\"C\"}",
        "q2" => "{\"TrueFalse\":true}",
        other => panic!("unexpected problem {other}"),
    }
}

fn answer_json(problem: &str, index: usize) -> String {
    match problem {
        "q1" => format!(
            "{{\"Choice\":\"{}\"}}",
            char::from(b'A' + (index % 4) as u8)
        ),
        "q2" => format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3)),
        other => panic!("unexpected problem {other}"),
    }
}

/// Starts a sitting over TCP and returns `(session id, problem order)`.
fn start_sitting(client: &mut HttpClient, index: usize) -> (String, Vec<String>) {
    let started = client
        .post(
            "/sessions",
            &format!("{{\"exam\":\"final\",\"student\":\"m{index:02}\",\"seed\":{index}}}"),
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = started.json().expect("start body");
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string();
    let order = started
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    (session, order)
}

fn run_full_sitting(addr: &str, index: usize) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let (session, order) = start_sitting(&mut client, index);
    for problem in &order {
        let body = format!(
            "{{\"answer\":{},\"time_spent_secs\":{}}}",
            answer_json(problem, index),
            10 + index % 7
        );
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
}

/// Re-exec helper: with `MINE_SERVER_CRASH_DIR` set this "test" becomes
/// a journaled server that runs until its parent SIGKILLs it. It
/// publishes its bound address at `<dir>/addr.txt` (written atomically
/// via rename). Without the variable it is a no-op.
#[test]
fn crash_server_child() {
    let Some(dir) = std::env::var_os("MINE_SERVER_CRASH_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let options = StoreOptions {
        // `Never` maximizes the unflushed window; a SIGKILL must still
        // lose nothing because every append hit the page cache before
        // the handler acknowledged the request.
        sync: SyncPolicy::Never,
        ..StoreOptions::default()
    };
    let (state, _) = open_journaled_state(repository(), &dir, options, 8).expect("open journal");
    let server =
        Server::start(Router::with_state(state), &ServeOptions::default()).expect("bind loopback");
    let tmp = dir.join(".addr.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");
    server.join();
}

#[test]
fn kill_nine_mid_sitting_then_restart_serves_byte_identical_analysis() {
    let dir = temp_dir("recovery");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["crash_server_child", "--exact", "--nocapture"])
        .env("MINE_SERVER_CRASH_DIR", &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the child to publish its address.
    let addr_path = dir.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !addr_path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let addr = std::fs::read_to_string(&addr_path).expect("child never came up");

    // Six complete sittings, then a seventh left mid-flight: one of two
    // problems answered when the power goes out.
    for index in 0..6 {
        run_full_sitting(&addr, index);
    }
    let mut client = HttpClient::connect(&addr).expect("connect");
    let (mid_session, mid_order) = start_sitting(&mut client, 6);
    let first_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":12}}",
        answer_json(&mid_order[0], 6)
    );
    let answered = client
        .post(&format!("/sessions/{mid_session}/answers"), &first_answer)
        .expect("mid answer");
    assert_eq!(answered.status, 200, "{}", answered.body);

    // An adaptive (CAT) sitting is also mid-flight: one step journaled,
    // the estimator state live only in memory when the power goes out.
    let cat_started = client
        .post(
            "/sessions",
            "{\"exam\":\"final\",\"student\":\"cat1\",\"seed\":7,\"mode\":\"adaptive\",\
             \"max_items\":2,\"se_threshold\":0.001}",
        )
        .expect("start adaptive");
    assert_eq!(cat_started.status, 201, "{}", cat_started.body);
    let cat_status: Value = cat_started.json().expect("adaptive start body");
    let cat_session = cat_status
        .get("session")
        .and_then(Value::as_str)
        .expect("adaptive session id")
        .to_string();
    let cat_first = cat_status
        .get("current")
        .and_then(|c| c.get("id"))
        .and_then(Value::as_str)
        .expect("adaptive current item")
        .to_string();
    let cat_answered = client
        .post(
            &format!("/sessions/{cat_session}/answers"),
            &format!(
                "{{\"answer\":{},\"time_spent_secs\":11}}",
                correct_answer_json(&cat_first)
            ),
        )
        .expect("adaptive answer");
    assert_eq!(cat_answered.status, 200, "{}", cat_answered.body);

    // Controls: the analysis and the adaptive status (θ̂, SE, next item)
    // the uncrashed server serves right now.
    let control = client
        .get("/exams/final/analysis")
        .expect("control analysis");
    assert_eq!(control.status, 200, "{}", control.body);
    let cat_control = client
        .get(&format!("/sessions/{cat_session}"))
        .expect("control adaptive status");
    assert_eq!(cat_control.status, 200, "{}", cat_control.body);

    child.kill().unwrap(); // SIGKILL: no destructors, no flushes
    child.wait().unwrap();

    // Restart from the same directory, in-process this time.
    let (state, report) =
        open_journaled_state(repository(), &dir, StoreOptions::default(), 8).expect("recover");
    assert!(
        report.notes.is_empty(),
        "every journaled event must replay cleanly: {:?}",
        report.notes
    );
    let router = Router::with_state(state);

    // The acceptance bar: byte-identical analysis after the crash.
    // The default mode is streaming, so this also proves the engine
    // rebuilt from WAL replay matches the dead server's live counters.
    let served = router.handle(&Request::new("GET", "/exams/final/analysis", ""));
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(served.body, control.body, "analysis must be byte-identical");
    let served_batch = router.handle(&Request::new("GET", "/exams/final/analysis?mode=batch", ""));
    assert_eq!(served_batch.status, 200, "{}", served_batch.body);
    assert_eq!(
        served_batch.body, control.body,
        "batch recomputation must agree with the replayed streaming report"
    );

    // The mid-flight sitting survived with its answer intact and can be
    // driven to completion on the restarted server.
    let status = router.handle(&Request::new(
        "GET",
        &format!("/sessions/{mid_session}"),
        "",
    ));
    assert_eq!(status.status, 200, "{}", status.body);
    let status: Value = serde_json::from_str(&status.body).expect("status body");
    assert!(
        matches!(
            status.get("answered"),
            Some(Value::Number(Number::PosInt(1)))
        ),
        "{status:?}"
    );
    let second_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":9}}",
        answer_json(&mid_order[1], 6)
    );
    let answered = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{mid_session}/answers"),
        second_answer.as_str(),
    ));
    assert_eq!(answered.status, 200, "{}", answered.body);
    let finished = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{mid_session}/finish"),
        "",
    ));
    assert_eq!(finished.status, 200, "{}", finished.body);

    // The adaptive sitting replayed to the exact pre-crash state: the
    // status body — ability estimate, SE, step count, next item — is
    // byte-identical to what the dead server was serving.
    let cat_replayed = router.handle(&Request::new(
        "GET",
        &format!("/sessions/{cat_session}"),
        "",
    ));
    assert_eq!(cat_replayed.status, 200, "{}", cat_replayed.body);
    assert_eq!(
        cat_replayed.body, cat_control.body,
        "replayed adaptive status must be byte-identical"
    );

    // …and it is still live: the second step and the finish succeed.
    let cat_replayed: Value = serde_json::from_str(&cat_replayed.body).expect("status body");
    let cat_next = cat_replayed
        .get("current")
        .and_then(|c| c.get("id"))
        .and_then(Value::as_str)
        .expect("next adaptive item")
        .to_string();
    let cat_answered = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{cat_session}/answers"),
        format!(
            "{{\"answer\":{},\"time_spent_secs\":8}}",
            correct_answer_json(&cat_next)
        ),
    ));
    assert_eq!(cat_answered.status, 200, "{}", cat_answered.body);
    let cat_finished = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{cat_session}/finish"),
        "",
    ));
    assert_eq!(cat_finished.status, 200, "{}", cat_finished.body);

    // With both mid-flight records filed the report covers them all.
    let after = router.handle(&Request::new("GET", "/exams/final/analysis", ""));
    assert_eq!(after.status, 200);
    assert!(after.body.contains("\"class_size\":8"), "{}", after.body);
    std::fs::remove_dir_all(&dir).unwrap();
}
