//! Anti-entropy acceptance tests: a three-node cluster detects
//! scheduled bit rot online, quarantines the damaged segment (the
//! evidence file survives), repairs from a healthy peer through the
//! existing snapshot-shipping path, and loses **zero acked events** —
//! the repaired follower serves a byte-identical analysis. Separately,
//! a primary whose WAL starts refusing fsyncs flips to degraded
//! read-only serving instead of dying: writes get `503 + Retry-After`
//! naming storage, reads and `/metrics` stay live, the follower's
//! failure detector treats the degraded primary as failed and promotes
//! past it, and the wounded node heals itself once the disk recovers.
//! Both scenarios end with the offline auditor finding every journal
//! coherent.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Number, Value};

use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_server::{
    audit_dirs, open_journaled_state, AckMode, FailoverConfig, HttpClient, ReplListener, ReplState,
    Role, Router, Scrubber, ServeOptions, Server,
};
use mine_store::{FaultPlan, StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-antientropy-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same exam everywhere: replication replays events against the
/// repository, so every node and the parent must agree.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(mine_core::OptionKey::A, "alpha"),
                ChoiceOption::new(mine_core::OptionKey::B, "beta"),
                ChoiceOption::new(mine_core::OptionKey::C, "gamma"),
                ChoiceOption::new(mine_core::OptionKey::D, "delta"),
            ],
            mine_core::OptionKey::C,
        )
        .unwrap()
        .with_calibration(Calibration::new(1.1, -0.4, 0.2)),
    )
    .unwrap();
    repo.insert_problem(
        Problem::true_false("q2", "Is the sky blue?", true)
            .unwrap()
            .with_calibration(Calibration::new(0.9, 0.6, 0.25)),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

fn answer_json(problem: &str, index: usize) -> String {
    match problem {
        "q1" => format!(
            "{{\"Choice\":\"{}\"}}",
            char::from(b'A' + (index % 4) as u8)
        ),
        "q2" => format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3)),
        other => panic!("unexpected problem {other}"),
    }
}

fn start_sitting(client: &mut HttpClient, index: usize) -> (String, Vec<String>) {
    let started = client
        .post(
            "/sessions",
            &format!("{{\"exam\":\"final\",\"student\":\"h{index:02}\",\"seed\":{index}}}"),
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = started.json().expect("start body");
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string();
    let order = started
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    (session, order)
}

fn run_full_sitting(addr: &str, index: usize) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let (session, order) = start_sitting(&mut client, index);
    for problem in &order {
        let body = format!(
            "{{\"answer\":{},\"time_spent_secs\":{}}}",
            answer_json(problem, index),
            10 + index % 7
        );
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
}

fn healthz(addr: &str) -> Value {
    let mut client = HttpClient::connect(addr).expect("connect healthz");
    let response = client.get("/healthz").expect("healthz");
    response.json().expect("healthz json")
}

fn healthz_u64(value: &Value, field: &str) -> u64 {
    match value.get(field) {
        Some(Value::Number(Number::PosInt(n))) => *n,
        other => panic!("healthz field {field} missing or not a number: {other:?}"),
    }
}

/// Scrapes `/metrics` and returns the value of one unlabeled series.
fn metric_value(addr: &str, name: &str) -> u64 {
    let mut client = HttpClient::connect(addr).expect("connect metrics");
    let response = client.get("/metrics").expect("metrics");
    let prefix = format!("{name} ");
    response
        .body
        .lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{}", response.body))
        .trim()
        .parse()
        .expect("metric value")
}

/// Polls `/metrics` until `check` passes on `name`, returning the last
/// value either way.
fn wait_metric(addr: &str, name: &str, what: &str, check: impl Fn(u64) -> bool) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let value = metric_value(addr, name);
        if check(value) {
            return value;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last {name} = {value}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Polls until `check` passes or the deadline expires, returning the
/// last healthz body either way.
fn wait_for(addr: &str, what: &str, check: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let health = healthz(addr);
        if check(&health) {
            return health;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last healthz: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Re-exec helper: with `MINE_AE_DIR` set this "test" becomes a
/// replicating server wired exactly as `mine serve` wires one —
/// `MINE_FAULT_PLAN` arms the seeded fault schedule on the store,
/// `MINE_AE_PRIMARY` makes it a follower, `MINE_AE_SCRUB_MS` starts the
/// background anti-entropy scrubber, `MINE_AE_SEGMENT_BYTES` shrinks
/// segments so early records seal quickly, and `MINE_AE_FAILOVER_MS` +
/// `MINE_AE_PEERS` arm the unsupervised failure detector. It publishes
/// `"<http addr>\n<repl addr>"` at `<dir>/addr.txt` atomically via
/// rename and runs until SIGKILLed.
#[test]
fn antientropy_child() {
    let Some(dir) = std::env::var_os("MINE_AE_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let primary = std::env::var("MINE_AE_PRIMARY").ok();
    let http_addr = std::env::var("MINE_AE_HTTP").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let fault_plan = FaultPlan::from_env()
        .expect("MINE_FAULT_PLAN")
        .map(Arc::new);
    let max_segment_bytes = std::env::var("MINE_AE_SEGMENT_BYTES")
        .ok()
        .map(|bytes| bytes.parse().expect("segment bytes"))
        .unwrap_or(8 * 1024 * 1024);
    let options = StoreOptions {
        // Every acked write is on disk before the ack: the degraded-mode
        // scenario injects fsync failures and the ack must never race
        // them.
        sync: SyncPolicy::Always,
        max_segment_bytes,
        fault_plan: fault_plan.clone(),
        ..StoreOptions::default()
    };
    // No compaction cadence: the bit-rot scenario needs its sealed
    // segments to stay on disk until the scrubber reaches them.
    let (mut state, _) =
        open_journaled_state(repository(), &dir, options, 1_000_000).expect("open");
    let role = if primary.is_some() {
        Role::Follower
    } else {
        Role::Primary
    };
    let repl = Arc::new(ReplState::new(role, AckMode::Leader));
    state.repl = Some(Arc::clone(&repl));
    let router = Router::with_state(state);
    let serve_options = ServeOptions {
        addr: http_addr,
        ..ServeOptions::default()
    };
    let server = Server::start(router.clone(), &serve_options).expect("bind http");
    repl.set_advertise(server.local_addr().to_string());
    if let Some(plan) = &fault_plan {
        repl.set_fault_plan(Arc::clone(plan));
    }
    if let Ok(ms) = std::env::var("MINE_AE_FAILOVER_MS") {
        let timeout = Duration::from_millis(ms.parse().expect("failover ms"));
        let peers: Vec<String> = std::env::var("MINE_AE_PEERS")
            .unwrap_or_default()
            .split(',')
            .map(str::trim)
            .filter(|peer| !peer.is_empty())
            .map(str::to_string)
            .collect();
        repl.set_auto_failover(FailoverConfig { timeout, peers });
    }
    let listener = ReplListener::start("127.0.0.1:0", router.clone()).expect("bind repl");
    let _puller = primary.map(|addr| mine_server::start_follower(addr, router.clone()));
    let _scrubber = std::env::var("MINE_AE_SCRUB_MS").ok().map(|ms| {
        let interval = Duration::from_millis(ms.parse().expect("scrub ms"));
        Scrubber::start(router.clone(), interval)
    });
    let tmp = dir.join(".addr.tmp");
    std::fs::write(
        &tmp,
        format!("{}\n{}", server.local_addr(), listener.local_addr()),
    )
    .expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");
    server.join();
}

struct ChildNode {
    child: Child,
    http: String,
}

fn spawn_node(dir: &PathBuf, envs: &[(&str, &str)]) -> (ChildNode, String) {
    let exe = std::env::current_exe().unwrap();
    let mut command = Command::new(exe);
    command
        .args(["antientropy_child", "--exact", "--nocapture"])
        .env("MINE_AE_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let addr_path = dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_path);
    let child = command.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !addr_path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let published = std::fs::read_to_string(&addr_path).expect("child never came up");
    let (http, repl) = published.split_once('\n').expect("two addresses");
    (
        ChildNode {
            child,
            http: http.to_string(),
        },
        repl.to_string(),
    )
}

/// Reserves a loopback port by binding and immediately releasing it, so
/// peers can know each other's HTTP addresses before launch.
fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

/// Whether the directory holds a quarantined segment: the renamed-not-
/// deleted evidence of a repair.
fn has_quarantine_file(dir: &PathBuf) -> bool {
    std::fs::read_dir(dir).unwrap().any(|entry| {
        entry
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".quarantine")
    })
}

/// Scenario A: scheduled bit rot strikes a sealed segment on a
/// follower. Its scrubber must detect the damage online, quarantine the
/// segment (evidence preserved), re-bootstrap from the primary, and
/// come back serving the identical analysis — with the whole story told
/// in the new metrics, and the auditor finding all three journals
/// coherent afterwards.
#[test]
fn bitrot_on_follower_is_quarantined_and_repaired_online() {
    let a_dir = temp_dir("bitrot-a");
    let b_dir = temp_dir("bitrot-b");
    let c_dir = temp_dir("bitrot-c");

    // Tiny segments so record 3 lands in a sealed segment within the
    // first sittings; a fast scrub cadence so detection is prompt.
    let (mut node_a, a_repl) = spawn_node(
        &a_dir,
        &[
            ("MINE_AE_SEGMENT_BYTES", "256"),
            ("MINE_AE_SCRUB_MS", "200"),
        ],
    );
    let (mut node_b, _) = spawn_node(
        &b_dir,
        &[
            ("MINE_AE_PRIMARY", a_repl.as_str()),
            ("MINE_AE_SEGMENT_BYTES", "256"),
            ("MINE_AE_SCRUB_MS", "200"),
            ("MINE_FAULT_PLAN", "disk.bitrot@3:4"),
        ],
    );
    let (mut node_c, _) = spawn_node(
        &c_dir,
        &[
            ("MINE_AE_PRIMARY", a_repl.as_str()),
            ("MINE_AE_SEGMENT_BYTES", "256"),
            ("MINE_AE_SCRUB_MS", "200"),
        ],
    );
    wait_for(&node_b.http, "b bootstraps as follower", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });
    wait_for(&node_c.http, "c bootstraps as follower", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });

    // Enough acked history to seal several 256-byte segments on every
    // node — including the one record 3 lives in on b.
    for index in 0..4 {
        run_full_sitting(&node_a.http, index);
    }
    let mut client = HttpClient::connect(&node_a.http).expect("connect a");
    let control = client
        .get("/exams/final/analysis")
        .expect("control analysis");
    assert_eq!(control.status, 200, "{}", control.body);
    let head = healthz_u64(&healthz(&node_a.http), "last_applied_seq");
    assert!(head > 0);
    wait_for(&node_b.http, "b catches up", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });
    wait_for(&node_c.http, "c catches up", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });

    // The primary's integrity table is served to peers.
    let ranges = client.get("/admin/ranges").expect("admin ranges");
    assert_eq!(ranges.status, 200, "{}", ranges.body);
    let ranges: Value = ranges.json().expect("ranges json");
    assert_eq!(healthz_u64(&ranges, "head_seq"), head);
    assert!(
        healthz_u64(&ranges, "epoch") >= mine_store::INITIAL_EPOCH,
        "{ranges:?}"
    );

    // The scrubber on b strikes the scheduled rot, must detect it in
    // the same pass, quarantine the segment, and repair through a
    // re-bootstrap — all visible in the metrics.
    wait_metric(
        &node_b.http,
        "mine_scrub_corrupt_segments_total",
        "b detects the injected bit rot",
        |corrupt| corrupt >= 1,
    );
    wait_metric(
        &node_b.http,
        "mine_repair_segments_total",
        "b repairs the quarantined segment",
        |repaired| repaired >= 1,
    );
    assert!(
        has_quarantine_file(&b_dir),
        "quarantine must preserve the damaged segment as evidence"
    );

    // Zero acked loss: after the repair b is caught back up and serves
    // the primary's analysis byte for byte; the clean sibling agrees.
    wait_for(&node_b.http, "b recovers to the acked head", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });
    for node in [&node_b, &node_c] {
        let mut reader = HttpClient::connect(&node.http).expect("connect follower");
        let served = reader
            .get("/exams/final/analysis")
            .expect("follower analysis");
        assert_eq!(served.status, 200, "{}", served.body);
        assert_eq!(
            served.body, control.body,
            "analysis must be byte-identical after repair"
        );
    }

    // The repaired follower is a live replica again: fresh acked work
    // reaches it through the re-established stream.
    run_full_sitting(&node_a.http, 4);
    let new_head = healthz_u64(&healthz(&node_a.http), "last_applied_seq");
    assert!(new_head > head);
    wait_for(&node_b.http, "b applies post-repair work", |health| {
        healthz_u64(health, "last_applied_seq") >= new_head
    });

    // Every node scrubs; nobody is degraded.
    for node in [&node_a, &node_b, &node_c] {
        assert!(metric_value(&node.http, "mine_scrub_passes_total") >= 1);
        assert_eq!(metric_value(&node.http, "mine_storage_degraded"), 0);
        let health = healthz(&node.http);
        assert_eq!(
            health.get("storage").and_then(Value::as_str),
            Some("ok"),
            "{health:?}"
        );
    }

    node_a.child.kill().unwrap();
    node_a.child.wait().unwrap();
    node_b.child.kill().unwrap();
    node_b.child.wait().unwrap();
    node_c.child.kill().unwrap();
    node_c.child.wait().unwrap();

    // The auditor must find all three journals internally sound, the
    // acked prefixes byte-identical, and replay deterministic — the
    // quarantine file is evidence, not part of the log.
    let dirs = [a_dir.clone(), b_dir.clone(), c_dir.clone()];
    let loader = || Ok(repository());
    let report = audit_dirs(&dirs, Some(&loader)).expect("audit runs");
    assert!(
        report.is_clean(),
        "audit must be clean after online repair:\n{}",
        report.render()
    );
    assert_eq!(
        report.to_value().get("clean"),
        Some(&Value::Bool(true)),
        "the JSON report must carry the same verdict"
    );

    std::fs::remove_dir_all(&a_dir).unwrap();
    std::fs::remove_dir_all(&b_dir).unwrap();
    std::fs::remove_dir_all(&c_dir).unwrap();
}

/// Scenario B: the primary's disk starts refusing fsyncs mid-service.
/// Instead of poisoning the store forever, the node flips to degraded
/// read-only serving — writes shed with `503 + Retry-After` naming
/// storage, reads and metrics stay live — the follower's detector
/// treats the degraded primary as failed and promotes past it, and the
/// wounded node heals itself once the disk recovers.
#[test]
fn degraded_primary_sheds_writes_serves_reads_and_is_promoted_past() {
    let p_dir = temp_dir("degraded-p");
    let f_dir = temp_dir("degraded-f");

    // Four full sittings consume fsync calls 1..=16 (one synced append
    // per event); the failure window starts a little later so the
    // degrade trigger below is an ordinary client write. Ten
    // consecutive failing calls keep the healer's retries failing long
    // enough to observe the degraded plateau, then the disk "recovers".
    let plan = (18..=27)
        .map(|call| format!("disk.fsync_err@{call}"))
        .collect::<Vec<_>>()
        .join(";");
    let p_http = reserve_addr();
    let (mut node_p, p_repl) = spawn_node(
        &p_dir,
        &[
            ("MINE_AE_HTTP", p_http.as_str()),
            ("MINE_FAULT_PLAN", plan.as_str()),
        ],
    );
    assert_eq!(node_p.http, p_http, "primary must bind its reserved port");
    let (mut node_f, _) = spawn_node(
        &f_dir,
        &[
            ("MINE_AE_PRIMARY", p_repl.as_str()),
            ("MINE_AE_FAILOVER_MS", "800"),
            // The detector surveys the primary itself: a live but
            // degraded primary must not veto the succession.
            ("MINE_AE_PEERS", p_http.as_str()),
        ],
    );
    wait_for(&node_f.http, "f bootstraps as follower", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });

    for index in 0..4 {
        run_full_sitting(&node_p.http, index);
    }
    let mut client = HttpClient::connect(&node_p.http).expect("connect p");
    let control = client
        .get("/exams/final/analysis")
        .expect("control analysis");
    assert_eq!(control.status, 200, "{}", control.body);
    let head = healthz_u64(&healthz(&node_p.http), "last_applied_seq");
    wait_for(&node_f.http, "f catches up", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });

    // Write until the fsync window opens. The failing append must NOT
    // poison the node: it answers 503 with Retry-After naming storage,
    // exactly like every later write shed at the dispatch gate.
    let mut degraded = None;
    for attempt in 0..6 {
        let response = client
            .post(
                "/sessions",
                &format!("{{\"exam\":\"final\",\"student\":\"t{attempt:02}\"}}"),
            )
            .expect("trigger write");
        if response.status == 503 {
            degraded = Some(response);
            break;
        }
        assert_eq!(response.status, 201, "{}", response.body);
    }
    let first = degraded.expect("the fsync window never opened");
    assert!(first.body.contains("storage degraded"), "{}", first.body);
    assert_eq!(
        first.retry_after,
        Some(2),
        "the degrading request itself must carry Retry-After"
    );

    // Degraded, not dead: writes shed, reads and observability live.
    let shed = client
        .post("/sessions", "{\"exam\":\"final\",\"student\":\"t99\"}")
        .expect("shed write");
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.body.contains("storage degraded"), "{}", shed.body);
    assert_eq!(shed.retry_after, Some(2));
    let read = client.get("/exams/final/analysis").expect("degraded read");
    assert_eq!(read.status, 200, "{}", read.body);
    assert_eq!(read.body, control.body, "reads serve the acked state");
    let health = healthz(&node_p.http);
    assert_eq!(
        health.get("storage").and_then(Value::as_str),
        Some("degraded"),
        "{health:?}"
    );
    assert_eq!(metric_value(&node_p.http, "mine_storage_degraded"), 1);

    // The follower's detector probes the silent leader, sees a live but
    // degraded primary, and promotes past it instead of re-arming.
    wait_for(&node_f.http, "f promotes past the degraded primary", |h| {
        h.get("role").and_then(Value::as_str) == Some("primary")
    });
    assert_eq!(
        healthz_u64(&healthz(&node_f.http), "epoch"),
        mine_store::INITIAL_EPOCH + 1,
        "promotion must fence exactly one epoch ahead"
    );

    // Zero acked loss across the failover, and the new primary accepts
    // fresh work.
    let mut winner = HttpClient::connect(&node_f.http).expect("connect f");
    let served = winner
        .get("/exams/final/analysis")
        .expect("promoted analysis");
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(served.body, control.body);
    run_full_sitting(&node_f.http, 4);

    // The deposed node is fenced behind the new epoch (the winner
    // demotes it; demotion is an admin write and must not be shed)…
    wait_for(&node_p.http, "p adopts the winner's epoch", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
            && healthz_u64(health, "epoch") == mine_store::INITIAL_EPOCH + 1
    });

    // …and once the fsync window closes, the healer un-degrades it:
    // no restart, no operator.
    wait_for(&node_p.http, "p heals itself", |health| {
        health.get("storage").and_then(Value::as_str) == Some("ok")
    });
    assert_eq!(metric_value(&node_p.http, "mine_storage_degraded"), 0);

    node_p.child.kill().unwrap();
    node_p.child.wait().unwrap();
    node_f.child.kill().unwrap();
    node_f.child.wait().unwrap();

    // Nothing acked was lost and nothing unacked leaked into either
    // journal: the histories are coherent and replay deterministically.
    let dirs = [p_dir.clone(), f_dir.clone()];
    let loader = || Ok(repository());
    let report = audit_dirs(&dirs, Some(&loader)).expect("audit runs");
    assert!(
        report.is_clean(),
        "audit must be clean after degraded-mode failover:\n{}",
        report.render()
    );

    std::fs::remove_dir_all(&p_dir).unwrap();
    std::fs::remove_dir_all(&f_dir).unwrap();
}
