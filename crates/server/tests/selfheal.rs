//! The self-healing acceptance test: a three-node cluster runs under a
//! seeded fault schedule (`MINE_FAULT_PLAN=seed=42` on the primary's
//! replication transport), the primary is SIGKILLed mid-sitting, and
//! with **no operator action** exactly one follower suspects the
//! silence, surveys its peer, wins the deterministic succession, and
//! promotes itself through the epoch-fenced path. Every acked event
//! must survive: the new primary serves a byte-identical analysis,
//! finishes the sitting that was mid-flight at the crash, and accepts
//! fresh work. Afterwards `audit_dirs` over all three data directories
//! must come back clean, and the same seed must reproduce the same
//! canonical fault schedule.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Number, Value};

use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_server::{
    audit_dirs, open_journaled_state, AckMode, FailoverConfig, HttpClient, ReplListener, ReplState,
    Role, Router, ServeOptions, Server,
};
use mine_store::{FaultPlan, StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-selfheal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same exam everywhere: replication replays events against the
/// repository, so every node and the parent must agree.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(mine_core::OptionKey::A, "alpha"),
                ChoiceOption::new(mine_core::OptionKey::B, "beta"),
                ChoiceOption::new(mine_core::OptionKey::C, "gamma"),
                ChoiceOption::new(mine_core::OptionKey::D, "delta"),
            ],
            mine_core::OptionKey::C,
        )
        .unwrap()
        .with_calibration(Calibration::new(1.1, -0.4, 0.2)),
    )
    .unwrap();
    repo.insert_problem(
        Problem::true_false("q2", "Is the sky blue?", true)
            .unwrap()
            .with_calibration(Calibration::new(0.9, 0.6, 0.25)),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

fn answer_json(problem: &str, index: usize) -> String {
    match problem {
        "q1" => format!(
            "{{\"Choice\":\"{}\"}}",
            char::from(b'A' + (index % 4) as u8)
        ),
        "q2" => format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3)),
        other => panic!("unexpected problem {other}"),
    }
}

fn start_sitting(client: &mut HttpClient, index: usize) -> (String, Vec<String>) {
    let started = client
        .post(
            "/sessions",
            &format!("{{\"exam\":\"final\",\"student\":\"h{index:02}\",\"seed\":{index}}}"),
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = started.json().expect("start body");
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string();
    let order = started
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    (session, order)
}

fn run_full_sitting(addr: &str, index: usize) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let (session, order) = start_sitting(&mut client, index);
    for problem in &order {
        let body = format!(
            "{{\"answer\":{},\"time_spent_secs\":{}}}",
            answer_json(problem, index),
            10 + index % 7
        );
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
}

fn healthz(addr: &str) -> Value {
    let mut client = HttpClient::connect(addr).expect("connect healthz");
    let response = client.get("/healthz").expect("healthz");
    response.json().expect("healthz json")
}

fn healthz_u64(value: &Value, field: &str) -> u64 {
    match value.get(field) {
        Some(Value::Number(Number::PosInt(n))) => *n,
        other => panic!("healthz field {field} missing or not a number: {other:?}"),
    }
}

fn role_of(addr: &str) -> Option<String> {
    let health = healthz(addr);
    health
        .get("role")
        .and_then(Value::as_str)
        .map(str::to_string)
}

/// Re-exec helper: with `MINE_SELFHEAL_DIR` set this "test" becomes a
/// replicating server wired exactly as `mine serve` wires one —
/// `MINE_FAULT_PLAN` arms the seeded chaos schedule on both the store
/// and the replication transport, `MINE_SELFHEAL_PRIMARY` makes it a
/// follower, and `MINE_SELFHEAL_FAILOVER_MS` + `MINE_SELFHEAL_PEERS`
/// arm the unsupervised failure detector. It publishes
/// `"<http addr>\n<repl addr>"` at `<dir>/addr.txt` atomically via
/// rename and runs until SIGKILLed.
#[test]
fn selfheal_child() {
    let Some(dir) = std::env::var_os("MINE_SELFHEAL_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let primary = std::env::var("MINE_SELFHEAL_PRIMARY").ok();
    let http_addr =
        std::env::var("MINE_SELFHEAL_HTTP").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let fault_plan = FaultPlan::from_env()
        .expect("MINE_FAULT_PLAN")
        .map(Arc::new);
    let options = StoreOptions {
        // `Never` maximizes the unflushed window: the kill must still
        // lose no acked event because a follower holds a copy.
        sync: SyncPolicy::Never,
        fault_plan: fault_plan.clone(),
        ..StoreOptions::default()
    };
    let (mut state, _) = open_journaled_state(repository(), &dir, options, 8).expect("open");
    let role = if primary.is_some() {
        Role::Follower
    } else {
        Role::Primary
    };
    let repl = Arc::new(ReplState::new(role, AckMode::Leader));
    state.repl = Some(Arc::clone(&repl));
    let router = Router::with_state(state);
    let serve_options = ServeOptions {
        addr: http_addr,
        ..ServeOptions::default()
    };
    let server = Server::start(router.clone(), &serve_options).expect("bind http");
    repl.set_advertise(server.local_addr().to_string());
    if let Some(plan) = &fault_plan {
        repl.set_fault_plan(Arc::clone(plan));
    }
    if let Ok(ms) = std::env::var("MINE_SELFHEAL_FAILOVER_MS") {
        let timeout = Duration::from_millis(ms.parse().expect("failover ms"));
        let peers: Vec<String> = std::env::var("MINE_SELFHEAL_PEERS")
            .unwrap_or_default()
            .split(',')
            .map(str::trim)
            .filter(|peer| !peer.is_empty())
            .map(str::to_string)
            .collect();
        repl.set_auto_failover(FailoverConfig { timeout, peers });
    }
    let listener = ReplListener::start("127.0.0.1:0", router.clone()).expect("bind repl");
    let _puller = primary.map(|addr| mine_server::start_follower(addr, router.clone()));
    let tmp = dir.join(".addr.tmp");
    std::fs::write(
        &tmp,
        format!("{}\n{}", server.local_addr(), listener.local_addr()),
    )
    .expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");
    server.join();
}

struct ChildNode {
    child: Child,
    http: String,
}

fn spawn_node(dir: &PathBuf, envs: &[(&str, &str)]) -> (ChildNode, String) {
    let exe = std::env::current_exe().unwrap();
    let mut command = Command::new(exe);
    command
        .args(["selfheal_child", "--exact", "--nocapture"])
        .env("MINE_SELFHEAL_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let addr_path = dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_path);
    let child = command.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !addr_path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let published = std::fs::read_to_string(&addr_path).expect("child never came up");
    let (http, repl) = published.split_once('\n').expect("two addresses");
    (
        ChildNode {
            child,
            http: http.to_string(),
        },
        repl.to_string(),
    )
}

/// Reserves a loopback port by binding and immediately releasing it, so
/// follower peers can know each other's HTTP addresses before launch.
fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

/// Polls until `check` passes or the deadline expires, returning the
/// last healthz body either way.
fn wait_for(addr: &str, what: &str, check: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let health = healthz(addr);
        if check(&health) {
            return health;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last healthz: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn seeded_chaos_kill_nine_auto_failover_audits_clean() {
    let a_dir = temp_dir("a");
    let b_dir = temp_dir("b");
    let c_dir = temp_dir("c");

    // The primary ships every replication frame through a seeded fault
    // schedule: drops, duplicates, delays, and partition windows, all
    // derived from seed 42. Followers must absorb all of it.
    let (mut node_a, a_repl) = spawn_node(&a_dir, &[("MINE_FAULT_PLAN", "seed=42")]);
    let b_http = reserve_addr();
    let c_http = reserve_addr();
    let (mut node_b, _) = spawn_node(
        &b_dir,
        &[
            ("MINE_SELFHEAL_PRIMARY", a_repl.as_str()),
            ("MINE_SELFHEAL_HTTP", b_http.as_str()),
            ("MINE_SELFHEAL_FAILOVER_MS", "1500"),
            ("MINE_SELFHEAL_PEERS", c_http.as_str()),
        ],
    );
    let (mut node_c, _) = spawn_node(
        &c_dir,
        &[
            ("MINE_SELFHEAL_PRIMARY", a_repl.as_str()),
            ("MINE_SELFHEAL_HTTP", c_http.as_str()),
            ("MINE_SELFHEAL_FAILOVER_MS", "1500"),
            ("MINE_SELFHEAL_PEERS", b_http.as_str()),
        ],
    );
    assert_eq!(node_b.http, b_http, "follower must bind its reserved port");
    assert_eq!(node_c.http, c_http, "follower must bind its reserved port");

    wait_for(&node_b.http, "b bootstraps as follower", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });
    wait_for(&node_c.http, "c bootstraps as follower", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });

    // Four complete sittings through the chaotic stream, then a fifth
    // left mid-flight: one of two problems answered at the crash.
    for index in 0..4 {
        run_full_sitting(&node_a.http, index);
    }
    let mut client = HttpClient::connect(&node_a.http).expect("connect");
    let (mid_session, mid_order) = start_sitting(&mut client, 4);
    let first_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":12}}",
        answer_json(&mid_order[0], 4)
    );
    let answered = client
        .post(&format!("/sessions/{mid_session}/answers"), &first_answer)
        .expect("mid answer");
    assert_eq!(answered.status, 200, "{}", answered.body);

    // Control: the analysis the primary serves right now, and its
    // applied position. Both followers must fully absorb the faulty
    // stream before the power goes out.
    let control = client
        .get("/exams/final/analysis")
        .expect("control analysis");
    assert_eq!(control.status, 200, "{}", control.body);
    let head = healthz_u64(&healthz(&node_a.http), "last_applied_seq");
    assert!(head > 0);
    wait_for(&node_b.http, "b catch-up through faults", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });
    wait_for(&node_c.http, "c catch-up through faults", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });

    node_a.child.kill().unwrap(); // SIGKILL: no flushes, no goodbyes
    node_a.child.wait().unwrap();

    // Unsupervised failover: exactly one follower must promote itself.
    // The succession is deterministic — both are caught up, so the
    // higher advertise address wins the (seq, addr) comparison and the
    // other re-arms its detector.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (winner, loser) = loop {
        let b_role = role_of(&node_b.http);
        let c_role = role_of(&node_c.http);
        match (b_role.as_deref(), c_role.as_deref()) {
            (Some("primary"), Some("primary")) => {
                panic!("split brain: both followers promoted themselves")
            }
            (Some("primary"), _) => break (&node_b, &node_c),
            (_, Some("primary")) => break (&node_c, &node_b),
            _ => {}
        }
        assert!(
            Instant::now() < deadline,
            "no follower promoted itself; roles {b_role:?} / {c_role:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let winner_health = healthz(&winner.http);
    assert_eq!(
        healthz_u64(&winner_health, "epoch"),
        mine_store::INITIAL_EPOCH + 1,
        "promotion must fence exactly one epoch ahead"
    );

    // The winner demotes its peer by epoch: the loser adopts the new
    // epoch and stays a follower — at most one primary per epoch.
    wait_for(&loser.http, "loser adopts the winner's epoch", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
            && healthz_u64(health, "epoch") == mine_store::INITIAL_EPOCH + 1
    });

    // Zero acked loss: the promoted node serves the dead primary's
    // analysis byte for byte…
    let mut winner_client = HttpClient::connect(&winner.http).expect("connect winner");
    let served = winner_client
        .get("/exams/final/analysis")
        .expect("promoted analysis");
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(
        served.body, control.body,
        "analysis must be byte-identical after auto-failover"
    );

    // …the mid-flight sitting survived with its acked answer and
    // finishes on the new primary…
    let status = winner_client
        .get(&format!("/sessions/{mid_session}"))
        .expect("mid status");
    assert_eq!(status.status, 200, "{}", status.body);
    let status: Value = status.json().unwrap();
    assert!(
        matches!(
            status.get("answered"),
            Some(Value::Number(Number::PosInt(1)))
        ),
        "{status:?}"
    );
    let second_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":9}}",
        answer_json(&mid_order[1], 4)
    );
    let answered = winner_client
        .post(&format!("/sessions/{mid_session}/answers"), &second_answer)
        .expect("answer on new primary");
    assert_eq!(answered.status, 200, "{}", answered.body);
    let finished = winner_client
        .post(&format!("/sessions/{mid_session}/finish"), "")
        .expect("finish on new primary");
    assert_eq!(finished.status, 200, "{}", finished.body);

    // …and fresh work is accepted.
    run_full_sitting(&winner.http, 5);

    // The detector's work is visible in the metrics.
    let mut scrape = HttpClient::connect(&winner.http).expect("scrape winner");
    let metrics = scrape.get("/metrics").expect("winner metrics");
    assert!(
        metrics.body.contains("mine_repl_role{role=\"primary\"} 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("mine_repl_failovers_total 1"),
        "{}",
        metrics.body
    );
    assert!(
        !metrics.body.contains("mine_repl_suspicions_total 0\n"),
        "at least one suspicion must precede the failover: {}",
        metrics.body
    );

    node_b.child.kill().unwrap();
    node_b.child.wait().unwrap();
    node_c.child.kill().unwrap();
    node_c.child.wait().unwrap();

    // The auditor must find the three journals internally sound, every
    // overlapping acked prefix byte-identical, and the replayed state
    // deterministic — even after seeded chaos and two SIGKILLs.
    let dirs = [a_dir.clone(), b_dir.clone(), c_dir.clone()];
    let loader = || Ok(repository());
    let report = audit_dirs(&dirs, Some(&loader)).expect("audit runs");
    assert!(
        report.is_clean(),
        "audit must be clean after the chaos run:\n{}",
        report.render()
    );

    // The same seed reproduces the same canonical fault schedule: the
    // chaos run is replayable from `seed=42` alone.
    let plan_a = FaultPlan::parse("seed=42").expect("parse seed");
    let plan_b = FaultPlan::parse("seed=42").expect("parse seed again");
    assert!(!plan_a.is_empty(), "a bare seed must derive a schedule");
    assert_eq!(plan_a.to_string(), plan_b.to_string());
    assert_eq!(
        FaultPlan::parse(&plan_a.to_string())
            .expect("round trip")
            .to_string(),
        plan_a.to_string(),
        "the canonical rendering must round-trip"
    );

    std::fs::remove_dir_all(&a_dir).unwrap();
    std::fs::remove_dir_all(&b_dir).unwrap();
    std::fs::remove_dir_all(&c_dir).unwrap();
}
