//! The failover acceptance test: a primary ships its WAL to a live
//! follower, is SIGKILLed mid-sitting, the follower is promoted via
//! `POST /admin/promote`, and every acked event must be present — the
//! promoted node serves a byte-identical analysis and finishes the
//! sitting that was mid-flight at the crash. The deposed primary,
//! restarted as a replica of the new leader, must adopt the higher
//! epoch (demote) and answer writes with `421` naming the new leader.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde::{Number, Value};

use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_server::{
    open_journaled_state, AckMode, HttpClient, ReplListener, ReplState, Role, Router, ServeOptions,
    Server,
};
use mine_store::{StoreOptions, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mine-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same exam everywhere: replication replays events against the
/// repository, so primary, follower, and parent must agree.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(mine_core::OptionKey::A, "alpha"),
                ChoiceOption::new(mine_core::OptionKey::B, "beta"),
                ChoiceOption::new(mine_core::OptionKey::C, "gamma"),
                ChoiceOption::new(mine_core::OptionKey::D, "delta"),
            ],
            mine_core::OptionKey::C,
        )
        .unwrap()
        .with_calibration(Calibration::new(1.1, -0.4, 0.2)),
    )
    .unwrap();
    repo.insert_problem(
        Problem::true_false("q2", "Is the sky blue?", true)
            .unwrap()
            .with_calibration(Calibration::new(0.9, 0.6, 0.25)),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("final")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

/// The right answer for each bank item, for adaptive steps.
fn correct_answer_json(problem: &str) -> &'static str {
    match problem {
        "q1" => "{\"Choice\":\"C\"}",
        "q2" => "{\"TrueFalse\":true}",
        other => panic!("unexpected problem {other}"),
    }
}

fn answer_json(problem: &str, index: usize) -> String {
    match problem {
        "q1" => format!(
            "{{\"Choice\":\"{}\"}}",
            char::from(b'A' + (index % 4) as u8)
        ),
        "q2" => format!("{{\"TrueFalse\":{}}}", index.is_multiple_of(3)),
        other => panic!("unexpected problem {other}"),
    }
}

fn start_sitting(client: &mut HttpClient, index: usize) -> (String, Vec<String>) {
    let started = client
        .post(
            "/sessions",
            &format!("{{\"exam\":\"final\",\"student\":\"r{index:02}\",\"seed\":{index}}}"),
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let started: Value = started.json().expect("start body");
    let session = started
        .get("session")
        .and_then(Value::as_str)
        .expect("session id")
        .to_string();
    let order = started
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    (session, order)
}

fn run_full_sitting(addr: &str, index: usize) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let (session, order) = start_sitting(&mut client, index);
    for problem in &order {
        let body = format!(
            "{{\"answer\":{},\"time_spent_secs\":{}}}",
            answer_json(problem, index),
            10 + index % 7
        );
        let answered = client
            .post(&format!("/sessions/{session}/answers"), &body)
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }
    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
}

fn healthz(addr: &str) -> Value {
    let mut client = HttpClient::connect(addr).expect("connect healthz");
    let response = client.get("/healthz").expect("healthz");
    response.json().expect("healthz json")
}

fn healthz_u64(value: &Value, field: &str) -> u64 {
    match value.get(field) {
        Some(Value::Number(Number::PosInt(n))) => *n,
        other => panic!("healthz field {field} missing or not a number: {other:?}"),
    }
}

/// Re-exec helper: with `MINE_REPL_CHILD_DIR` set this "test" becomes a
/// replicating server. `MINE_REPL_CHILD_PRIMARY` (a replication
/// listener address) makes it a follower of that primary; without it,
/// it is a primary. Either way it runs a replication listener of its
/// own (a follower's listener serves no one until promotion flips it).
/// It publishes `"<http addr>\n<repl addr>"` at `<dir>/addr.txt`,
/// atomically via rename, and runs until SIGKILLed.
#[test]
fn repl_server_child() {
    let Some(dir) = std::env::var_os("MINE_REPL_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let primary = std::env::var("MINE_REPL_CHILD_PRIMARY").ok();
    let options = StoreOptions {
        // `Never` maximizes the unflushed window: the kill must still
        // lose no acked event because the follower holds a copy.
        sync: SyncPolicy::Never,
        ..StoreOptions::default()
    };
    let (mut state, _) = open_journaled_state(repository(), &dir, options, 8).expect("open");
    let role = if primary.is_some() {
        Role::Follower
    } else {
        Role::Primary
    };
    let repl = std::sync::Arc::new(ReplState::new(role, AckMode::Leader));
    state.repl = Some(std::sync::Arc::clone(&repl));
    let router = Router::with_state(state);
    let server = Server::start(router.clone(), &ServeOptions::default()).expect("bind http");
    repl.set_advertise(server.local_addr().to_string());
    let listener = ReplListener::start("127.0.0.1:0", router.clone()).expect("bind repl");
    let _puller = primary.map(|addr| mine_server::start_follower(addr, router.clone()));
    let tmp = dir.join(".addr.tmp");
    std::fs::write(
        &tmp,
        format!("{}\n{}", server.local_addr(), listener.local_addr()),
    )
    .expect("write addr");
    std::fs::rename(&tmp, dir.join("addr.txt")).expect("publish addr");
    server.join();
}

struct ChildNode {
    child: Child,
    http: String,
    repl: String,
}

fn spawn_node(dir: &PathBuf, primary_repl_addr: Option<&str>) -> ChildNode {
    let exe = std::env::current_exe().unwrap();
    let mut command = Command::new(exe);
    command
        .args(["repl_server_child", "--exact", "--nocapture"])
        .env("MINE_REPL_CHILD_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(addr) = primary_repl_addr {
        command.env("MINE_REPL_CHILD_PRIMARY", addr);
    }
    // A restarted node must publish fresh addresses, not be read
    // through the previous incarnation's file.
    let addr_path = dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_path);
    let child = command.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !addr_path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let published = std::fs::read_to_string(&addr_path).expect("child never came up");
    let (http, repl) = published.split_once('\n').expect("two addresses");
    ChildNode {
        child,
        http: http.to_string(),
        repl: repl.to_string(),
    }
}

/// Polls until `check` passes or the deadline expires, returning the
/// last healthz body either way.
fn wait_for(addr: &str, what: &str, check: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let health = healthz(addr);
        if check(&health) {
            return health;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last healthz: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn kill_nine_primary_promote_follower_loses_no_acked_event() {
    let primary_dir = temp_dir("primary");
    let follower_dir = temp_dir("follower");
    let mut primary = spawn_node(&primary_dir, None);
    let mut follower = spawn_node(&follower_dir, Some(&primary.repl));

    // The follower must bootstrap and report itself as a follower.
    wait_for(&follower.http, "follower role", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
    });

    // Six complete sittings against the primary, then a seventh left
    // mid-flight: one of two problems answered when the power goes out.
    for index in 0..6 {
        run_full_sitting(&primary.http, index);
    }
    let mut client = HttpClient::connect(&primary.http).expect("connect");
    let (mid_session, mid_order) = start_sitting(&mut client, 6);
    let first_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":12}}",
        answer_json(&mid_order[0], 6)
    );
    let answered = client
        .post(&format!("/sessions/{mid_session}/answers"), &first_answer)
        .expect("mid answer");
    assert_eq!(answered.status, 200, "{}", answered.body);

    // An adaptive (CAT) sitting is also mid-flight on the primary: one
    // step acked and shipped when the power goes out.
    let cat_started = client
        .post(
            "/sessions",
            "{\"exam\":\"final\",\"student\":\"cat1\",\"seed\":7,\"mode\":\"adaptive\",\
             \"max_items\":2,\"se_threshold\":0.001}",
        )
        .expect("start adaptive");
    assert_eq!(cat_started.status, 201, "{}", cat_started.body);
    let cat_status: Value = cat_started.json().expect("adaptive start body");
    let cat_session = cat_status
        .get("session")
        .and_then(Value::as_str)
        .expect("adaptive session id")
        .to_string();
    let cat_first = cat_status
        .get("current")
        .and_then(|c| c.get("id"))
        .and_then(Value::as_str)
        .expect("adaptive current item")
        .to_string();
    let cat_answered = client
        .post(
            &format!("/sessions/{cat_session}/answers"),
            &format!(
                "{{\"answer\":{},\"time_spent_secs\":11}}",
                correct_answer_json(&cat_first)
            ),
        )
        .expect("adaptive answer");
    assert_eq!(cat_answered.status, 200, "{}", cat_answered.body);
    let cat_control = client
        .get(&format!("/sessions/{cat_session}"))
        .expect("control adaptive status");
    assert_eq!(cat_control.status, 200, "{}", cat_control.body);

    // Control: the analysis the primary serves right now — streamed
    // from its live counters by default, and cross-checked against the
    // batch pipeline — and its applied position. Wait until the
    // follower has applied everything.
    let control = client
        .get("/exams/final/analysis")
        .expect("control analysis");
    assert_eq!(control.status, 200, "{}", control.body);
    let control_batch = client
        .get("/exams/final/analysis?mode=batch")
        .expect("control batch analysis");
    assert_eq!(control_batch.status, 200, "{}", control_batch.body);
    assert_eq!(
        control_batch.body, control.body,
        "streaming and batch reports must agree on the primary"
    );
    let primary_health = healthz(&primary.http);
    let head = healthz_u64(&primary_health, "last_applied_seq");
    assert!(head > 0);
    wait_for(&follower.http, "follower catch-up", |health| {
        healthz_u64(health, "last_applied_seq") >= head
    });

    // Both sides expose replication gauges in the Prometheus text.
    let mut scrape = HttpClient::connect(&primary.http).expect("scrape primary");
    let metrics = scrape.get("/metrics").expect("primary metrics");
    assert!(
        metrics.body.contains("mine_repl_role{role=\"primary\"} 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("mine_repl_followers 1"),
        "{}",
        metrics.body
    );
    let mut scrape = HttpClient::connect(&follower.http).expect("scrape follower");
    let metrics = scrape.get("/metrics").expect("follower metrics");
    assert!(
        metrics.body.contains("mine_repl_role{role=\"follower\"} 1"),
        "{}",
        metrics.body
    );

    // A write against the follower is refused with 421 naming the
    // leader — it is a read replica, not a second writer.
    let mut follower_client = HttpClient::connect(&follower.http).expect("connect follower");
    let refused = follower_client
        .post("/sessions", "{\"exam\":\"final\",\"student\":\"rogue\"}")
        .expect("refused write");
    assert_eq!(refused.status, 421, "{}", refused.body);
    let refused: Value = refused.json().unwrap();
    assert_eq!(
        refused.get("leader").and_then(Value::as_str),
        Some(primary.http.as_str())
    );

    primary.child.kill().unwrap(); // SIGKILL: no flushes, no goodbyes
    primary.child.wait().unwrap();

    // Supervised failover: promote the follower.
    let promoted = follower_client.post("/admin/promote", "").expect("promote");
    assert_eq!(promoted.status, 200, "{}", promoted.body);
    let promoted: Value = promoted.json().unwrap();
    assert_eq!(
        promoted.get("role").and_then(Value::as_str),
        Some("primary")
    );
    let new_epoch = healthz_u64(&promoted, "epoch");
    assert_eq!(new_epoch, mine_store::INITIAL_EPOCH + 1);
    let health = healthz(&follower.http);
    assert_eq!(health.get("role").and_then(Value::as_str), Some("primary"));
    assert_eq!(healthz_u64(&health, "epoch"), new_epoch);

    // The acceptance bar: every acked event is present. The promoted
    // node serves the same six-student analysis byte for byte — its
    // streaming engine was rebuilt through the same apply path
    // (bootstrap snapshot + shipped records), so the default streaming
    // report reproduces the dead primary's exactly…
    let mut follower_client = HttpClient::connect(&follower.http).expect("reconnect");
    let served = follower_client
        .get("/exams/final/analysis")
        .expect("promoted analysis");
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(
        served.body, control.body,
        "streaming analysis must be byte-identical"
    );
    // …and so does its batch pipeline over the replicated records.
    let served_batch = follower_client
        .get("/exams/final/analysis?mode=batch")
        .expect("promoted batch analysis");
    assert_eq!(served_batch.status, 200, "{}", served_batch.body);
    assert_eq!(
        served_batch.body, control.body,
        "batch analysis must be byte-identical"
    );

    // …and the mid-flight sitting survived with its acked answer and
    // can be driven to completion on the new primary.
    let status = follower_client
        .get(&format!("/sessions/{mid_session}"))
        .expect("mid status");
    assert_eq!(status.status, 200, "{}", status.body);
    let status: Value = status.json().unwrap();
    assert!(
        matches!(
            status.get("answered"),
            Some(Value::Number(Number::PosInt(1)))
        ),
        "{status:?}"
    );
    let second_answer = format!(
        "{{\"answer\":{},\"time_spent_secs\":9}}",
        answer_json(&mid_order[1], 6)
    );
    let answered = follower_client
        .post(&format!("/sessions/{mid_session}/answers"), &second_answer)
        .expect("answer on new primary");
    assert_eq!(answered.status, 200, "{}", answered.body);
    let finished = follower_client
        .post(&format!("/sessions/{mid_session}/finish"), "")
        .expect("finish on new primary");
    assert_eq!(finished.status, 200, "{}", finished.body);

    // The adaptive sitting replicated to the exact acked state: the
    // promoted node serves a byte-identical status — same ability
    // estimate, SE, step count, and next-item choice — and the sitting
    // finishes there.
    let cat_promoted = follower_client
        .get(&format!("/sessions/{cat_session}"))
        .expect("promoted adaptive status");
    assert_eq!(cat_promoted.status, 200, "{}", cat_promoted.body);
    assert_eq!(
        cat_promoted.body, cat_control.body,
        "replicated adaptive status must be byte-identical"
    );
    let cat_promoted: Value = serde_json::from_str(&cat_promoted.body).unwrap();
    let cat_next = cat_promoted
        .get("current")
        .and_then(|c| c.get("id"))
        .and_then(Value::as_str)
        .expect("next adaptive item")
        .to_string();
    let cat_answered = follower_client
        .post(
            &format!("/sessions/{cat_session}/answers"),
            &format!(
                "{{\"answer\":{},\"time_spent_secs\":8}}",
                correct_answer_json(&cat_next)
            ),
        )
        .expect("adaptive answer on new primary");
    assert_eq!(cat_answered.status, 200, "{}", cat_answered.body);
    let cat_finished = follower_client
        .post(&format!("/sessions/{cat_session}/finish"), "")
        .expect("adaptive finish on new primary");
    assert_eq!(cat_finished.status, 200, "{}", cat_finished.body);

    // Epoch fencing: restart the deposed primary from its own data
    // directory as a replica of the new leader. It must adopt the
    // higher epoch (demote), resync, and redirect writes to the new
    // leader — its stale epoch never wins anything.
    let mut deposed = spawn_node(&primary_dir, Some(&follower.repl));
    wait_for(&deposed.http, "deposed primary to demote", |health| {
        health.get("role").and_then(Value::as_str) == Some("follower")
            && healthz_u64(health, "epoch") == new_epoch
    });
    // It resyncs to the new leader's history, including the seventh
    // sitting it was killed in the middle of.
    let follower_head = healthz_u64(&healthz(&follower.http), "last_applied_seq");
    wait_for(&deposed.http, "deposed primary catch-up", |health| {
        healthz_u64(health, "last_applied_seq") >= follower_head
    });
    let mut deposed_client = HttpClient::connect(&deposed.http).expect("connect deposed");
    let resynced = deposed_client
        .get("/exams/final/analysis")
        .expect("resynced analysis");
    assert_eq!(resynced.status, 200, "{}", resynced.body);
    assert!(
        resynced.body.contains("\"class_size\":8"),
        "{}",
        resynced.body
    );
    let stale_write = deposed_client
        .post("/sessions", "{\"exam\":\"final\",\"student\":\"stale\"}")
        .expect("stale write");
    assert_eq!(stale_write.status, 421, "{}", stale_write.body);
    let stale_write: Value = stale_write.json().unwrap();
    assert_eq!(
        stale_write.get("leader").and_then(Value::as_str),
        Some(follower.http.as_str())
    );

    deposed.child.kill().unwrap();
    deposed.child.wait().unwrap();
    follower.child.kill().unwrap();
    follower.child.wait().unwrap();
    std::fs::remove_dir_all(&primary_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}
