//! Adaptive (CAT) delivery end-to-end: sittings served one item at a
//! time over HTTP, journaled per step, validated with named fields,
//! and filed into the same analysis pipeline fixed-form sittings use.
//! The proptest at the bottom is the durability acceptance bar: WAL
//! replay must reproduce the live estimator state and next-item choice
//! byte for byte over random answer sequences.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use serde::{Number, Value};

use mine_core::OptionKey;
use mine_itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_server::http::Request;
use mine_server::{open_journaled_state, HttpClient, Router, ServeOptions, Server};
use mine_store::StoreOptions;

/// A bank of `n` calibrated two-option problems ("answer A is right")
/// with difficulties spread over [-2, 2], collected into exam `cat`.
fn calibrated_repository(n: usize) -> Repository {
    let repo = Repository::new();
    let mut builder = Exam::builder("cat").unwrap();
    for i in 0..n {
        let id = format!("a{i:02}");
        let difficulty = -2.0 + 4.0 * i as f64 / (n - 1).max(1) as f64;
        repo.insert_problem(
            Problem::multiple_choice(
                id.as_str(),
                format!("Item {i}: pick A."),
                [
                    ChoiceOption::new(OptionKey::A, "yes"),
                    ChoiceOption::new(OptionKey::B, "no"),
                ],
                OptionKey::A,
            )
            .unwrap()
            .with_calibration(Calibration::new(1.2, difficulty, 0.1)),
        )
        .unwrap();
        builder = builder.entry(id.parse().unwrap());
    }
    repo.insert_exam(builder.build().unwrap()).unwrap();
    repo
}

fn as_str<'v>(value: &'v Value, field: &str) -> &'v str {
    value
        .get(field)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {field}: {value:?}"))
}

fn as_u64(value: &Value, field: &str) -> u64 {
    match value.get(field) {
        Some(Value::Number(Number::PosInt(n))) => *n,
        other => panic!("missing numeric field {field}: {other:?}"),
    }
}

/// The id of the item the sitting is currently serving, if any.
fn current_item(status: &Value) -> Option<String> {
    status
        .get("current")
        .and_then(|current| current.get("id"))
        .and_then(Value::as_str)
        .map(str::to_string)
}

fn answer_body(correct: bool) -> String {
    format!(
        "{{\"answer\":{{\"Choice\":\"{}\"}},\"time_spent_secs\":7}}",
        if correct { "A" } else { "B" }
    )
}

#[test]
fn adaptive_sitting_runs_over_http_and_files_into_analysis() {
    let repo = calibrated_repository(8);
    let router = Router::new(repo);
    let server = Server::start(router.clone(), &ServeOptions::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // A tiny SE threshold never fires, so the stop rule is max_items.
    let started = client
        .post(
            "/sessions",
            "{\"exam\":\"cat\",\"student\":\"s1\",\"seed\":5,\"mode\":\"adaptive\",\
             \"min_items\":2,\"max_items\":5,\"se_threshold\":0.001}",
        )
        .expect("start");
    assert_eq!(started.status, 201, "{}", started.body);
    let status: Value = started.json().expect("start body");
    assert_eq!(as_str(&status, "mode"), "adaptive");
    assert_eq!(as_str(&status, "state"), "active");
    assert_eq!(as_u64(&status, "steps"), 0);
    assert_eq!(as_u64(&status, "max_items"), 5);
    let session = as_str(&status, "session").to_string();
    assert!(session.contains('~'), "adaptive ids use ~: {session}");

    // Drive to the stop rule, checking each served item is fresh.
    let mut administered = Vec::new();
    let mut status = status;
    let mut last_answer_body = String::new();
    while !matches!(status.get("done"), Some(Value::Bool(true))) {
        let item = current_item(&status).expect("active sitting serves an item");
        assert!(
            !administered.contains(&item),
            "item {item} served twice: {administered:?}"
        );
        administered.push(item);
        let answered = client
            .post(
                &format!("/sessions/{session}/answers"),
                &answer_body(administered.len() % 2 == 1),
            )
            .expect("answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
        last_answer_body = answered.body.clone();
        status = answered.json().expect("answer body");
    }
    assert_eq!(administered.len(), 5, "stop rule is max_items=5");
    assert_eq!(as_str(&status, "state"), "complete");
    assert!(current_item(&status).is_none(), "{status:?}");

    // GET renders the same body the final answer response carried.
    let polled = client.get(&format!("/sessions/{session}")).expect("status");
    assert_eq!(polled.status, 200, "{}", polled.body);
    assert_eq!(polled.body, last_answer_body);

    // A sixth answer is refused before anything is journaled.
    let overflow = client
        .post(&format!("/sessions/{session}/answers"), &answer_body(true))
        .expect("overflow answer");
    assert_eq!(overflow.status, 409, "{}", overflow.body);

    let finished = client
        .post(&format!("/sessions/{session}/finish"), "")
        .expect("finish");
    assert_eq!(finished.status, 200, "{}", finished.body);
    let record: Value = finished.json().expect("record");
    assert_eq!(as_str(&record, "student"), "s1");
    // The record covers the full exam problem set: administered items
    // graded, the rest padded as skipped.
    assert_eq!(
        record
            .get("responses")
            .and_then(Value::as_array)
            .expect("responses")
            .len(),
        8
    );

    // The slot is a tombstone now: status and answers answer 410.
    let gone = client
        .get(&format!("/sessions/{session}"))
        .expect("status after finish");
    assert_eq!(gone.status, 410, "{}", gone.body);
    let dead_answer = client
        .post(&format!("/sessions/{session}/answers"), &answer_body(true))
        .expect("answer after finish");
    assert_eq!(dead_answer.status, 410, "{}", dead_answer.body);

    // File a fixed-form sitting alongside (the §4 analysis needs more
    // than one student to form high/low score groups), then check the
    // adaptive record reached the same pipeline.
    let fixed = client
        .post(
            "/sessions",
            "{\"exam\":\"cat\",\"student\":\"s2\",\"seed\":1}",
        )
        .expect("start fixed");
    assert_eq!(fixed.status, 201, "{}", fixed.body);
    let fixed_status: Value = fixed.json().expect("fixed body");
    let fixed_session = as_str(&fixed_status, "session").to_string();
    let fixed_count = fixed_status
        .get("problems")
        .and_then(Value::as_array)
        .expect("problems")
        .len();
    for _ in 0..fixed_count {
        let answered = client
            .post(
                &format!("/sessions/{fixed_session}/answers"),
                &answer_body(true),
            )
            .expect("fixed answer");
        assert_eq!(answered.status, 200, "{}", answered.body);
    }
    let fixed_finished = client
        .post(&format!("/sessions/{fixed_session}/finish"), "")
        .expect("fixed finish");
    assert_eq!(fixed_finished.status, 200, "{}", fixed_finished.body);

    let analysis = client.get("/exams/cat/analysis").expect("analysis");
    assert_eq!(analysis.status, 200, "{}", analysis.body);
    assert!(analysis.body.contains("s1"), "{}", analysis.body);
    assert!(
        analysis.body.contains("\"class_size\":2"),
        "{}",
        analysis.body
    );

    // Metrics: lifecycle counters, step histogram, and the gauge.
    let metrics = client.get("/metrics?format=json").expect("metrics json");
    let metrics: Value = metrics.json().expect("metrics body");
    assert_eq!(as_u64(&metrics, "adaptive_sessions_started"), 1);
    assert_eq!(as_u64(&metrics, "adaptive_sessions_finished"), 1);
    assert_eq!(as_u64(&metrics, "adaptive_sessions_active"), 0);
    assert_eq!(as_u64(&metrics, "adaptive_steps_total"), 5);
    let text = client.get("/metrics").expect("metrics text");
    assert!(
        text.body.contains("mine_adaptive_steps_total 5"),
        "{}",
        text.body
    );
    assert!(
        text.body.contains("mine_adaptive_sessions_active 0"),
        "{}",
        text.body
    );
    assert!(
        text.body
            .contains("# TYPE mine_adaptive_step_seconds histogram"),
        "{}",
        text.body
    );

    server.shutdown();
}

#[test]
fn adaptive_validation_names_the_offending_field() {
    let router = Router::new(calibrated_repository(4));
    let start = |body: &str| router.handle(&Request::new("POST", "/sessions", body));

    let cases = [
        (
            "{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"adaptive\",\"se_threshold\":-0.5}",
            "se_threshold",
        ),
        (
            "{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"adaptive\",\"max_items\":0}",
            "max_items",
        ),
        (
            "{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"adaptive\",\"max_items\":99}",
            "max_items",
        ),
        (
            "{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"adaptive\",\
             \"min_items\":4,\"max_items\":2}",
            "min_items",
        ),
    ];
    for (body, field) in cases {
        let response = start(body);
        assert_eq!(response.status, 422, "{body} → {}", response.body);
        let rejection: Value = serde_json::from_str(&response.body).expect("rejection body");
        assert_eq!(as_str(&rejection, "field"), field, "{body}");
        assert!(
            as_str(&rejection, "error").contains(field),
            "{}",
            response.body
        );
    }

    // An unknown mode is a 400, not a silent fixed-form sitting.
    let unknown = start("{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"teleport\"}");
    assert_eq!(unknown.status, 400, "{}", unknown.body);

    // A bank with an uncalibrated item cannot be served adaptively, and
    // the rejection names the offending problem.
    let uncalibrated = Repository::new();
    uncalibrated
        .insert_problem(Problem::true_false("raw", "Uncalibrated?", true).unwrap())
        .unwrap();
    uncalibrated
        .insert_exam(
            Exam::builder("cat")
                .unwrap()
                .entry("raw".parse().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
    let router = Router::new(uncalibrated);
    let response = router.handle(&Request::new(
        "POST",
        "/sessions",
        "{\"exam\":\"cat\",\"student\":\"v1\",\"mode\":\"adaptive\"}",
    ));
    assert_eq!(response.status, 422, "{}", response.body);
    let rejection: Value = serde_json::from_str(&response.body).expect("rejection body");
    assert_eq!(as_str(&rejection, "field"), "item_bank");
    assert!(
        as_str(&rejection, "error").contains("raw"),
        "{}",
        response.body
    );
}

#[test]
fn adaptive_sittings_refuse_pause_and_duplicate_starts() {
    let router = Router::new(calibrated_repository(4));
    let start_body = "{\"exam\":\"cat\",\"student\":\"p1\",\"seed\":3,\"mode\":\"adaptive\"}";
    let started = router.handle(&Request::new("POST", "/sessions", start_body));
    assert_eq!(started.status, 201, "{}", started.body);
    let status: Value = serde_json::from_str(&started.body).unwrap();
    let session = as_str(&status, "session").to_string();

    // CAT has no pause checkpoint: one item is pending, answer or quit.
    let paused = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{session}/pause"),
        "",
    ));
    assert_eq!(paused.status, 409, "{}", paused.body);
    let resumed = router.handle(&Request::new(
        "POST",
        &format!("/sessions/{session}/resume"),
        "",
    ));
    assert_eq!(resumed.status, 409, "{}", resumed.body);

    // The same (exam, student, seed) cannot sit twice.
    let duplicate = router.handle(&Request::new("POST", "/sessions", start_body));
    assert_eq!(duplicate.status, 409, "{}", duplicate.body);
}

#[test]
fn mixed_adaptive_and_fixed_population_streams_identical_to_batch() {
    let router = Router::new(calibrated_repository(6));

    // Six fixed-form sittings with a spread of answers…
    for index in 0..6_usize {
        let started = router.handle(&Request::new(
            "POST",
            "/sessions",
            format!("{{\"exam\":\"cat\",\"student\":\"f{index:02}\",\"seed\":{index}}}"),
        ));
        assert_eq!(started.status, 201, "{}", started.body);
        let status: Value = serde_json::from_str(&started.body).unwrap();
        let session = as_str(&status, "session").to_string();
        let order: Vec<String> = status
            .get("problems")
            .and_then(Value::as_array)
            .expect("problems")
            .iter()
            .map(|p| as_str(p, "id").to_string())
            .collect();
        for (position, _) in order.iter().enumerate() {
            let answered = router.handle(&Request::new(
                "POST",
                &format!("/sessions/{session}/answers"),
                answer_body((index + position) % 2 == 0).as_str(),
            ));
            assert_eq!(answered.status, 200, "{}", answered.body);
        }
        let finished = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/finish"),
            "",
        ));
        assert_eq!(finished.status, 200, "{}", finished.body);
    }

    // …and six adaptive sittings of varying ability over the same exam.
    for index in 0..6_usize {
        let started = router.handle(&Request::new(
            "POST",
            "/sessions",
            format!(
                "{{\"exam\":\"cat\",\"student\":\"c{index:02}\",\"seed\":{index},\
                 \"mode\":\"adaptive\",\"max_items\":4,\"se_threshold\":0.001}}"
            ),
        ));
        assert_eq!(started.status, 201, "{}", started.body);
        let mut status: Value = serde_json::from_str(&started.body).unwrap();
        let session = as_str(&status, "session").to_string();
        let mut step = 0_usize;
        while !matches!(status.get("done"), Some(Value::Bool(true))) {
            let answered = router.handle(&Request::new(
                "POST",
                &format!("/sessions/{session}/answers"),
                answer_body(!(index + step).is_multiple_of(3)).as_str(),
            ));
            assert_eq!(answered.status, 200, "{}", answered.body);
            status = serde_json::from_str(&answered.body).unwrap();
            step += 1;
        }
        let finished = router.handle(&Request::new(
            "POST",
            &format!("/sessions/{session}/finish"),
            "",
        ));
        assert_eq!(finished.status, 200, "{}", finished.body);
    }

    assert_eq!(router.state().finished.records("cat").len(), 12);
    assert!(router.state().adaptive.is_empty());

    // The acceptance bar: the streaming report over the mixed
    // population is byte-identical to the batch recomputation.
    let streaming = router.handle(&Request::new("GET", "/exams/cat/analysis", ""));
    assert_eq!(streaming.status, 200, "{}", streaming.body);
    assert!(
        streaming.body.contains("\"class_size\":12"),
        "{}",
        streaming.body
    );
    let batch = router.handle(&Request::new("GET", "/exams/cat/analysis?mode=batch", ""));
    assert_eq!(batch.status, 200, "{}", batch.body);
    assert_eq!(
        streaming.body, batch.body,
        "streaming and batch must agree over a mixed population"
    );
}

static REPLAY_CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replaying `AdaptiveStep` events through the journal's apply path
    /// reproduces the live sitting byte for byte: identical θ̂/SE
    /// rendering and the identical next-item choice, whatever the
    /// answer sequence was.
    #[test]
    fn journal_replay_reproduces_live_adaptive_state(
        pattern in proptest::collection::vec(any::<bool>(), 1..10),
        seed in 0_u64..64,
    ) {
        let case = REPLAY_CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "mine-adaptive-replay-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (state, _) = open_journaled_state(
            calibrated_repository(8),
            &dir,
            StoreOptions::default(),
            4, // snapshot often: replay exercises image restore too
        )
        .expect("open journal");
        let router = Router::with_state(state);
        let started = router.handle(&Request::new(
            "POST",
            "/sessions",
            format!(
                "{{\"exam\":\"cat\",\"student\":\"pp\",\"seed\":{seed},\
                 \"mode\":\"adaptive\",\"se_threshold\":0.001}}"
            ),
        ));
        prop_assert_eq!(started.status, 201, "{}", started.body);
        let status: Value = serde_json::from_str(&started.body).unwrap();
        let session = as_str(&status, "session").to_string();
        let mut status = status;
        for &correct in &pattern {
            if matches!(status.get("done"), Some(Value::Bool(true))) {
                break;
            }
            let answered = router.handle(&Request::new(
                "POST",
                &format!("/sessions/{session}/answers"),
                answer_body(correct).as_str(),
            ));
            prop_assert_eq!(answered.status, 200, "{}", answered.body);
            status = serde_json::from_str(&answered.body).unwrap();
        }
        let live = router.handle(&Request::new("GET", &format!("/sessions/{session}"), ""));
        prop_assert_eq!(live.status, 200, "{}", live.body);
        drop(router);

        let (state, report) = open_journaled_state(
            calibrated_repository(8),
            &dir,
            StoreOptions::default(),
            4,
        )
        .expect("recover");
        prop_assert!(report.notes.is_empty(), "replay notes: {:?}", report.notes);
        let recovered = Router::with_state(state);
        let replayed = recovered.handle(&Request::new("GET", &format!("/sessions/{session}"), ""));
        prop_assert_eq!(replayed.status, 200, "{}", replayed.body);
        prop_assert_eq!(
            &replayed.body, &live.body,
            "estimator state and next item must replay byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
