//! Server-level acceptance for the streaming engine (PR 7): random
//! interleavings of start/answer/pause/resume/finish — including
//! abandoned sittings and resits — driven through a journaled router
//! must produce a streaming `/exams/{id}/analysis` report that is
//! byte-identical to the batch analyzer's, and reopening the journal
//! directory must replay to the same bytes in both modes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use mine_core::OptionKey;
use mine_itembank::{ChoiceOption, Exam, Problem, Repository};
use mine_server::http::Request;
use mine_server::{open_journaled_state, Router};
use mine_store::StoreOptions;

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mine-streamparity-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replay resolves events against the repository, so the reopened
/// state must be built over the same problems as the live one.
fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(OptionKey::A, "alpha"),
                ChoiceOption::new(OptionKey::B, "beta"),
                ChoiceOption::new(OptionKey::C, "gamma"),
                ChoiceOption::new(OptionKey::D, "delta"),
            ],
            OptionKey::C,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_problem(Problem::true_false("q2", "Is the sky blue?", true).unwrap())
        .unwrap();
    repo.insert_problem(
        Problem::multiple_choice(
            "q3",
            "Pick A.",
            [
                ChoiceOption::new(OptionKey::A, "one"),
                ChoiceOption::new(OptionKey::B, "two"),
                ChoiceOption::new(OptionKey::C, "three"),
            ],
            OptionKey::A,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("quiz")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .entry("q3".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

/// Answer for `problem`, varied by student and sitting so resits
/// change the score the second sitting must overwrite.
fn answer_json(problem: &str, student: usize, sitting: usize) -> String {
    let salt = student * 3 + sitting * 5;
    match problem {
        "q1" => format!("{{\"Choice\":\"{}\"}}", char::from(b'A' + (salt % 4) as u8)),
        "q2" => format!("{{\"TrueFalse\":{}}}", salt % 3 != 1),
        "q3" => format!("{{\"Choice\":\"{}\"}}", char::from(b'A' + (salt % 3) as u8)),
        other => panic!("unexpected problem {other}"),
    }
}

/// One scripted step of one student's sitting.
#[derive(Clone, Copy, Debug)]
enum Op {
    Start { sitting: usize },
    Answer { index: usize, sitting: usize },
    Pause,
    Resume,
    Finish,
}

/// Builds the per-student script: one or two sittings, each either
/// finished or abandoned mid-flight, with an optional pause/resume
/// wedged between answers.
fn script(flags: u8) -> Vec<Op> {
    let mut ops = Vec::new();
    let sittings = if flags & 0b100 != 0 { 2 } else { 1 };
    for sitting in 0..sittings {
        ops.push(Op::Start { sitting });
        ops.push(Op::Answer { index: 0, sitting });
        if flags & 0b1 != 0 {
            ops.push(Op::Pause);
            ops.push(Op::Resume);
        }
        ops.push(Op::Answer { index: 1, sitting });
        // Abandon only the final sitting (an earlier one must finish
        // before the resit can start); bit 1 set means it finishes.
        if sitting + 1 < sittings || flags & 0b10 != 0 {
            ops.push(Op::Answer { index: 2, sitting });
            ops.push(Op::Finish);
        }
    }
    ops
}

fn handle_ok(router: &Router, method: &str, path: &str, body: &str) -> String {
    let response = router.handle(&Request::new(method, path, body));
    assert!(
        (200..300).contains(&response.status),
        "{method} {path}: {} {}",
        response.status,
        response.body
    );
    response.body
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn random_interleavings_replay_to_identical_reports(
        students in 4usize..9,
        flags in proptest::collection::vec(any::<u8>(), 9),
        picks in proptest::collection::vec(any::<u16>(), 64..192),
    ) {
        let dir = temp_dir();
        let repo = repository();
        let (state, _) = open_journaled_state(repo, &dir, StoreOptions::default(), 8)
            .expect("open journal");
        let router = Router::with_state(state);

        // Students 0..4 always run the plain finishing script so the
        // class is large enough for 25% groups; the rest follow their
        // random flags (pause, abandon, resit).
        let mut scripts: Vec<std::collections::VecDeque<Op>> = (0..students)
            .map(|s| {
                let f = if s < 4 { 0b10 } else { flags[s] };
                script(f).into()
            })
            .collect();
        let mut sessions: Vec<Option<(String, Vec<String>)>> = vec![None; students];
        let mut step = 0usize;
        loop {
            let pending: Vec<usize> = (0..students)
                .filter(|&s| !scripts[s].is_empty())
                .collect();
            if pending.is_empty() {
                break;
            }
            let student = pending[picks[step % picks.len()] as usize % pending.len()];
            step += 1;
            let op = scripts[student].pop_front().unwrap();
            match op {
                Op::Start { sitting } => {
                    let body = format!(
                        "{{\"exam\":\"quiz\",\"student\":\"s{student:02}\",\"seed\":{}}}",
                        student * 10 + sitting
                    );
                    let started = handle_ok(&router, "POST", "/sessions", &body);
                    let started: serde::Value =
                        serde_json::from_str(&started).expect("start body");
                    let session = started
                        .get("session")
                        .and_then(serde::Value::as_str)
                        .expect("session id")
                        .to_string();
                    let order = started
                        .get("problems")
                        .and_then(serde::Value::as_array)
                        .expect("problems")
                        .iter()
                        .map(|p| {
                            p.get("id")
                                .and_then(serde::Value::as_str)
                                .unwrap()
                                .to_string()
                        })
                        .collect();
                    sessions[student] = Some((session, order));
                }
                Op::Answer { index, sitting } => {
                    let (session, order) = sessions[student].as_ref().unwrap();
                    let body = format!(
                        "{{\"answer\":{},\"time_spent_secs\":{}}}",
                        answer_json(&order[index], student, sitting),
                        5 + (student + index) % 9
                    );
                    let path = format!("/sessions/{session}/answers");
                    handle_ok(&router, "POST", &path, &body);
                }
                Op::Pause => {
                    let (session, _) = sessions[student].as_ref().unwrap();
                    handle_ok(&router, "POST", &format!("/sessions/{session}/pause"), "");
                }
                Op::Resume => {
                    let (session, _) = sessions[student].as_ref().unwrap();
                    handle_ok(&router, "POST", &format!("/sessions/{session}/resume"), "");
                }
                Op::Finish => {
                    let (session, _) = sessions[student].as_ref().unwrap();
                    handle_ok(&router, "POST", &format!("/sessions/{session}/finish"), "");
                }
            }
        }

        // Live parity: the default (streaming) report must be
        // byte-identical to the forced batch recomputation.
        let streaming = handle_ok(&router, "GET", "/exams/quiz/analysis", "");
        let batch = handle_ok(&router, "GET", "/exams/quiz/analysis?mode=batch", "");
        prop_assert_eq!(&streaming, &batch, "streaming must match batch on the live server");

        // Replay determinism: reopening the journal directory rebuilds
        // the engine through the same apply path and must serve the
        // same bytes in both modes.
        drop(router);
        let (state, report) = open_journaled_state(repository(), &dir, StoreOptions::default(), 8)
            .expect("reopen journal");
        prop_assert!(
            report.notes.is_empty(),
            "every journaled event must replay cleanly: {:?}",
            report.notes
        );
        let reopened = Router::with_state(state);
        let replayed = handle_ok(&reopened, "GET", "/exams/quiz/analysis", "");
        prop_assert_eq!(&replayed, &streaming, "replayed streaming report must be byte-identical");
        let replayed_batch =
            handle_ok(&reopened, "GET", "/exams/quiz/analysis?mode=batch", "");
        prop_assert_eq!(&replayed_batch, &streaming, "replayed batch report must be byte-identical");
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
