//! Concurrency properties of the sharded [`SessionRegistry`]:
//! threads driving disjoint sessions must produce records
//! byte-identical to a sequential run, and a single session must stay
//! coherent under pause/resume contention.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use serde::Serialize;

use mine_core::{Answer, OptionKey, StudentRecord};
use mine_delivery::{DeliveryOptions, ExamSession, SessionState};
use mine_itembank::{ChoiceOption, Exam, Problem, Repository};
use mine_server::SessionRegistry;

/// One student's scripted sitting: what they answer and how long each
/// item takes.
#[derive(Debug, Clone)]
struct Script {
    choice_q1: usize,
    tf_q2: bool,
    choice_q3: usize,
    item_secs: u64,
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (0usize..4, any::<bool>(), 0usize..2, 1u64..120).prop_map(
        |(choice_q1, tf_q2, choice_q3, item_secs)| Script {
            choice_q1,
            tf_q2,
            choice_q3,
            item_secs,
        },
    )
}

fn repository() -> Repository {
    let repo = Repository::new();
    repo.insert_problem(
        Problem::multiple_choice(
            "q1",
            "Pick C.",
            [
                ChoiceOption::new(OptionKey::A, "a"),
                ChoiceOption::new(OptionKey::B, "b"),
                ChoiceOption::new(OptionKey::C, "c"),
                ChoiceOption::new(OptionKey::D, "d"),
            ],
            OptionKey::C,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_problem(Problem::true_false("q2", "Yes?", true).unwrap())
        .unwrap();
    repo.insert_problem(
        Problem::multiple_choice(
            "q3",
            "Pick A.",
            [
                ChoiceOption::new(OptionKey::A, "a"),
                ChoiceOption::new(OptionKey::B, "b"),
            ],
            OptionKey::A,
        )
        .unwrap(),
    )
    .unwrap();
    repo.insert_exam(
        Exam::builder("quiz")
            .unwrap()
            .entry("q1".parse().unwrap())
            .entry("q2".parse().unwrap())
            .entry("q3".parse().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    repo
}

fn start_session(repo: &Repository, index: usize) -> ExamSession {
    let (exam, problems) = repo.resolve_exam(&"quiz".parse().unwrap()).unwrap();
    ExamSession::start(
        &exam,
        problems,
        format!("p{index:02}").parse().unwrap(),
        DeliveryOptions {
            seed: index as u64,
            ..DeliveryOptions::default()
        },
    )
    .unwrap()
}

/// The scripted answer for a problem id.
fn scripted_answer(problem: &str, script: &Script) -> Answer {
    match problem {
        "q1" => Answer::Choice(OptionKey::from_index(script.choice_q1).unwrap()),
        "q2" => Answer::TrueFalse(script.tf_q2),
        "q3" => Answer::Choice(OptionKey::from_index(script.choice_q3).unwrap()),
        other => panic!("unexpected problem {other}"),
    }
}

/// Runs one scripted sitting to completion on a bare session.
fn run_sequential(repo: &Repository, index: usize, script: &Script) -> StudentRecord {
    let mut session = start_session(repo, index);
    while let Some(problem) = session.current() {
        let answer = scripted_answer(problem.id().as_str(), script);
        session
            .answer(answer, Duration::from_secs(script.item_secs))
            .unwrap();
    }
    session.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N threads answering disjoint sessions through the registry file
    /// records byte-identical to running the same scripts one at a time
    /// on bare sessions.
    #[test]
    fn disjoint_concurrent_sittings_match_sequential(
        scripts in proptest::collection::vec(script_strategy(), 2..10),
    ) {
        let repo = repository();

        // Sequential ground truth.
        let expected: Vec<StudentRecord> = scripts
            .iter()
            .enumerate()
            .map(|(index, script)| run_sequential(&repo, index, script))
            .collect();

        // Concurrent run: one thread per student, same seeds/scripts,
        // all traffic through a shared registry.
        let registry = Arc::new(SessionRegistry::new(4));
        let ids: Vec<String> = scripts
            .iter()
            .enumerate()
            .map(|(index, _)| {
                registry
                    .insert(start_session(&repo, index))
                    .unwrap()
                    .as_str()
                    .to_string()
            })
            .collect();
        let results = Arc::new(Mutex::new(vec![None; scripts.len()]));
        let handles: Vec<_> = scripts
            .iter()
            .cloned()
            .enumerate()
            .map(|(index, script)| {
                let registry = Arc::clone(&registry);
                let results = Arc::clone(&results);
                let id = ids[index].clone();
                thread::spawn(move || {
                    loop {
                        let done = registry
                            .with(&id, |slot| {
                                match slot.session.current() {
                                    Some(problem) => {
                                        let answer =
                                            scripted_answer(problem.id().as_str(), &script);
                                        slot.session
                                            .answer(answer, Duration::from_secs(script.item_secs))
                                            .unwrap();
                                        false
                                    }
                                    None => true,
                                }
                            })
                            .unwrap();
                        if done {
                            break;
                        }
                    }
                    let record = registry
                        .with(&id, |slot| slot.session.finish().unwrap())
                        .unwrap();
                    registry.remove(&id).unwrap();
                    results.lock().unwrap()[index] = Some(record);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        prop_assert!(registry.is_empty());
        let results = results.lock().unwrap();
        for (index, expected_record) in expected.iter().enumerate() {
            let actual = results[index].as_ref().expect("record produced");
            prop_assert_eq!(actual, expected_record, "student {} diverged", index);
            // Byte-identical, not merely equal: the serialized forms
            // (what the wire and the analysis cache see) must match.
            prop_assert_eq!(
                serde_json::to_string(&actual.to_value()).unwrap(),
                serde_json::to_string(&expected_record.to_value()).unwrap()
            );
        }
    }
}

/// Many threads fighting over one session's pause/resume never corrupt
/// its state: transitions serialize, successes pair up, and the sitting
/// still completes correctly afterwards.
#[test]
fn pause_resume_under_contention_stays_coherent() {
    const THREADS: usize = 8;
    const ITERATIONS: usize = 200;

    let repo = repository();
    let registry = Arc::new(SessionRegistry::new(2));
    let id = registry
        .insert(start_session(&repo, 0))
        .unwrap()
        .as_str()
        .to_string();

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let id = id.clone();
            thread::spawn(move || {
                let mut pauses = 0_usize;
                let mut resumes = 0_usize;
                for _ in 0..ITERATIONS {
                    registry
                        .with(&id, |slot| match slot.session.state() {
                            SessionState::Active => {
                                if slot.session.pause().is_ok() {
                                    pauses += 1;
                                }
                            }
                            SessionState::Paused => {
                                if slot.session.reactivate().is_ok() {
                                    resumes += 1;
                                }
                            }
                            SessionState::Finished => unreachable!("nobody finishes"),
                        })
                        .unwrap();
                }
                (pauses, resumes)
            })
        })
        .collect();

    let mut pauses = 0;
    let mut resumes = 0;
    for handle in handles {
        let (p, r) = handle.join().unwrap();
        pauses += p;
        resumes += r;
    }

    // Every resume follows a pause; the difference is exactly the final
    // state (each `with` observed the state under the slot lock, so no
    // transition could be lost or doubled).
    let final_state = registry.with(&id, |slot| slot.session.state()).unwrap();
    match final_state {
        SessionState::Active => assert_eq!(pauses, resumes),
        SessionState::Paused => assert_eq!(pauses, resumes + 1),
        SessionState::Finished => unreachable!(),
    }
    assert!(pauses > 0, "contention never managed a single pause");

    // The session survived the fight: resume if needed, answer all
    // three problems, and the record comes out complete.
    registry
        .with(&id, |slot| {
            if slot.session.state() == SessionState::Paused {
                slot.session.reactivate().unwrap();
            }
            while let Some(problem) = slot.session.current() {
                let answer = match problem.id().as_str() {
                    "q1" => Answer::Choice(OptionKey::C),
                    "q2" => Answer::TrueFalse(true),
                    _ => Answer::Choice(OptionKey::A),
                };
                slot.session.answer(answer, Duration::from_secs(5)).unwrap();
            }
            let record = slot.session.finish().unwrap();
            assert_eq!(record.responses.len(), 3);
        })
        .unwrap();
    registry.remove(&id).unwrap();
    assert!(registry.is_empty());
}
