//! Failure injection for the SCORM RTE: arbitrary call sequences must
//! never panic, must respect the lifecycle state machine, and must
//! always report errors through the standard code set.

use proptest::prelude::*;

use mine_scorm::{ApiAdapter, ApiState, ScormErrorCode};

/// One API call the fuzzer can make.
#[derive(Debug, Clone)]
enum Call {
    Initialize(String),
    Finish(String),
    Commit(String),
    Get(String),
    Set(String, String),
}

fn arb_element() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("cmi.core.student_id".to_string()),
        Just("cmi.core.student_name".to_string()),
        Just("cmi.core.lesson_location".to_string()),
        Just("cmi.core.lesson_status".to_string()),
        Just("cmi.core.score.raw".to_string()),
        Just("cmi.core.score.min".to_string()),
        Just("cmi.core.score.max".to_string()),
        Just("cmi.core.session_time".to_string()),
        Just("cmi.core.exit".to_string()),
        Just("cmi.core.total_time".to_string()),
        Just("cmi.suspend_data".to_string()),
        Just("cmi.core._children".to_string()),
        Just("cmi.interactions._count".to_string()),
        "cmi\\.interactions\\.[0-9]{1,2}\\.(id|type|result|student_response|latency)",
        // garbage elements
        "[a-z.]{1,20}",
    ]
}

fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("passed".to_string()),
        Just("completed".to_string()),
        Just("87.5".to_string()),
        Just("101".to_string()),
        Just("choice".to_string()),
        Just("correct".to_string()),
        Just("00:10:30".to_string()),
        Just("suspend".to_string()),
        "[ -~]{0,24}",
    ]
}

fn arb_call() -> impl Strategy<Value = Call> {
    prop_oneof![
        proptest::option::of("[a-z]{1,4}")
            .prop_map(|arg| Call::Initialize(arg.unwrap_or_default())),
        proptest::option::of("[a-z]{1,4}").prop_map(|arg| Call::Finish(arg.unwrap_or_default())),
        proptest::option::of("[a-z]{1,4}").prop_map(|arg| Call::Commit(arg.unwrap_or_default())),
        arb_element().prop_map(Call::Get),
        (arb_element(), arb_value()).prop_map(|(e, v)| Call::Set(e, v)),
    ]
}

const KNOWN_CODES: [&str; 11] = [
    "0", "101", "201", "202", "203", "301", "401", "402", "403", "404", "405",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn api_never_panics_and_errors_are_standard(calls in proptest::collection::vec(arb_call(), 0..60)) {
        let mut api = ApiAdapter::new();
        for call in calls {
            match call {
                Call::Initialize(arg) => {
                    let before = api.state();
                    let result = api.lms_initialize(&arg);
                    if result == "true" {
                        prop_assert_eq!(before, ApiState::NotInitialized);
                        prop_assert_eq!(api.state(), ApiState::Running);
                    } else {
                        prop_assert_eq!(api.state(), before, "failed init keeps state");
                    }
                }
                Call::Finish(arg) => {
                    let before = api.state();
                    let result = api.lms_finish(&arg);
                    if result == "true" {
                        prop_assert_eq!(before, ApiState::Running);
                        prop_assert_eq!(api.state(), ApiState::Terminated);
                    }
                }
                Call::Commit(arg) => {
                    let result = api.lms_commit(&arg);
                    if result == "true" {
                        prop_assert_eq!(api.state(), ApiState::Running);
                    }
                }
                Call::Get(element) => {
                    match api.lms_get_value(&element) {
                        Ok(_) => prop_assert_eq!(api.last_error(), ScormErrorCode::NoError),
                        Err(code) => {
                            prop_assert!(KNOWN_CODES.contains(&code.as_str()), "code {code}");
                            prop_assert_eq!(api.last_error().code_str(), code);
                        }
                    }
                }
                Call::Set(element, value) => {
                    match api.lms_set_value(&element, &value) {
                        Ok(_) => {
                            prop_assert_eq!(api.last_error(), ScormErrorCode::NoError);
                            prop_assert_eq!(api.state(), ApiState::Running);
                        }
                        Err(code) => {
                            prop_assert!(KNOWN_CODES.contains(&code.as_str()), "code {code}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn writes_outside_running_never_mutate(calls in proptest::collection::vec((arb_element(), arb_value()), 1..20)) {
        // Without LMSInitialize every write must fail with 301 and leave
        // the model untouched.
        let mut api = ApiAdapter::new();
        let baseline = api.model().clone();
        for (element, value) in calls {
            let result = api.lms_set_value(&element, &value);
            prop_assert_eq!(result, Err("301".to_string()));
        }
        prop_assert_eq!(api.model(), &baseline);
    }

    #[test]
    fn committed_model_only_changes_on_commit_or_finish(
        statuses in proptest::collection::vec(
            prop_oneof![Just("passed"), Just("failed"), Just("incomplete")], 1..8
        )
    ) {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        for status in &statuses {
            api.lms_set_value("cmi.core.lesson_status", status).unwrap();
            prop_assert!(
                api.committed_model().is_none(),
                "no commit yet, nothing persisted"
            );
        }
        api.lms_commit("");
        prop_assert_eq!(
            api.committed_model().unwrap().lesson_status.as_str(),
            *statuses.last().unwrap()
        );
    }
}
