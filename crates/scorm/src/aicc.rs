//! AICC CMI course-structure interchange (§2.2).
//!
//! "About course hierarchy, the previous idea is content-block-sco.
//! With the AICC nomenclature, the course structure is divided into two
//! elements" — *assignable units* (launchable content) and *blocks*
//! (grouping). AICC ships a course as a set of flat files: the `.crs`
//! course description (INI-style) and the `.cst` course-structure table
//! (CSV-style). This module writes and parses both, and converts a
//! SCORM [`Manifest`] organization into the AICC form so content can be
//! exchanged with pre-SCORM LMSes.

use std::collections::BTreeMap;

use crate::error::ScormError;
use crate::manifest::{Manifest, OrgItem};

/// An AICC assignable unit: one launchable piece of content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignableUnit {
    /// System id (`A1`, `A2`, …).
    pub system_id: String,
    /// Display title.
    pub title: String,
    /// Launch file name.
    pub file_name: String,
}

/// An AICC block: a named grouping of units and blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// System id (`B1`, `B2`, …).
    pub system_id: String,
    /// Display title.
    pub title: String,
    /// Member system ids (units or blocks), in order.
    pub members: Vec<String>,
}

/// An AICC course: description plus the two structure elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AiccCourse {
    /// Course id.
    pub course_id: String,
    /// Course title.
    pub title: String,
    /// Creator/owner line.
    pub creator: String,
    /// Assignable units, in `A1…An` order.
    pub units: Vec<AssignableUnit>,
    /// Blocks, in `B1…Bn` order (the root block is `ROOT`).
    pub blocks: Vec<Block>,
}

impl AiccCourse {
    /// Builds the AICC form of a SCORM manifest's default organization:
    /// every leaf item becomes an assignable unit launching its
    /// resource's href; every folder item becomes a block.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] when the manifest has no
    /// default organization or a leaf references a missing resource.
    pub fn from_manifest(manifest: &Manifest) -> Result<Self, ScormError> {
        let organization = manifest
            .default_org()
            .ok_or_else(|| ScormError::InvalidManifest {
                reason: "manifest has no default organization".into(),
            })?;
        let mut course = AiccCourse {
            course_id: manifest.identifier.clone(),
            title: organization.title.clone(),
            creator: "mine-assessment".into(),
            units: Vec::new(),
            blocks: Vec::new(),
        };
        let mut root_members = Vec::new();
        for item in &organization.items {
            let member = course.convert_item(manifest, item)?;
            root_members.push(member);
        }
        course.blocks.insert(
            0,
            Block {
                system_id: "ROOT".into(),
                title: organization.title.clone(),
                members: root_members,
            },
        );
        Ok(course)
    }

    fn convert_item(&mut self, manifest: &Manifest, item: &OrgItem) -> Result<String, ScormError> {
        match &item.identifierref {
            Some(reference) => {
                let resource =
                    manifest
                        .resource(reference)
                        .ok_or_else(|| ScormError::InvalidManifest {
                            reason: format!("item references missing resource {reference:?}"),
                        })?;
                let system_id = format!("A{}", self.units.len() + 1);
                self.units.push(AssignableUnit {
                    system_id: system_id.clone(),
                    title: item.title.clone(),
                    file_name: resource.href.clone(),
                });
                Ok(system_id)
            }
            None => {
                // Reserve the block id before recursing so ids stay in
                // discovery order.
                let system_id = format!("B{}", self.blocks.len() + 1);
                self.blocks.push(Block {
                    system_id: system_id.clone(),
                    title: item.title.clone(),
                    members: Vec::new(),
                });
                let index = self.blocks.len() - 1;
                let mut members = Vec::new();
                for child in &item.children {
                    members.push(self.convert_item(manifest, child)?);
                }
                self.blocks[index].members = members;
                Ok(system_id)
            }
        }
    }

    /// Writes the `.crs` course-description file (INI style).
    #[must_use]
    pub fn to_crs(&self) -> String {
        format!(
            "[Course]\nCourse_Creator={}\nCourse_ID={}\nCourse_Title={}\nLevel=1\nTotal_AUs={}\nTotal_Blocks={}\nVersion=2.2\n[Course_Behavior]\nMax_Normal=99\n",
            self.creator,
            self.course_id,
            self.title,
            self.units.len(),
            self.blocks.len(),
        )
    }

    /// Writes the `.au` assignable-unit table (CSV style).
    #[must_use]
    pub fn to_au(&self) -> String {
        let mut out = String::from("\"system_id\",\"title\",\"file_name\"\n");
        for unit in &self.units {
            out.push_str(&format!(
                "\"{}\",\"{}\",\"{}\"\n",
                unit.system_id,
                unit.title.replace('"', "'"),
                unit.file_name,
            ));
        }
        out
    }

    /// Writes the `.cst` course-structure table: one row per block,
    /// `"block","member","member",…`.
    #[must_use]
    pub fn to_cst(&self) -> String {
        let mut out = String::from("\"block\",\"member\"\n");
        for block in &self.blocks {
            out.push_str(&format!("\"{}\"", block.system_id));
            for member in &block.members {
                out.push_str(&format!(",\"{member}\""));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `.crs`/`.au`/`.cst` triple back into a course.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] on malformed rows or a
    /// missing `Course_ID`.
    pub fn parse(crs: &str, au: &str, cst: &str) -> Result<Self, ScormError> {
        let bad = |reason: String| ScormError::InvalidManifest { reason };
        // .crs: INI key=value lines.
        let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
        for line in crs.lines() {
            if let Some((key, value)) = line.split_once('=') {
                fields.insert(key.trim(), value.trim());
            }
        }
        let course_id = fields
            .get("Course_ID")
            .ok_or_else(|| bad("crs missing Course_ID".into()))?
            .to_string();

        let parse_row = |line: &str| -> Vec<String> {
            line.split(',')
                .map(|cell| cell.trim().trim_matches('"').to_string())
                .collect()
        };

        let mut units = Vec::new();
        for line in au.lines().skip(1).filter(|l| !l.trim().is_empty()) {
            let row = parse_row(line);
            if row.len() != 3 {
                return Err(bad(format!("bad au row {line:?}")));
            }
            units.push(AssignableUnit {
                system_id: row[0].clone(),
                title: row[1].clone(),
                file_name: row[2].clone(),
            });
        }

        let mut blocks = Vec::new();
        for line in cst.lines().skip(1).filter(|l| !l.trim().is_empty()) {
            let row = parse_row(line);
            if row.is_empty() {
                return Err(bad(format!("bad cst row {line:?}")));
            }
            blocks.push(Block {
                system_id: row[0].clone(),
                // Titles do not travel in the cst; keep the id.
                title: row[0].clone(),
                members: row[1..].to_vec(),
            });
        }

        Ok(AiccCourse {
            course_id,
            title: fields.get("Course_Title").unwrap_or(&"").to_string(),
            creator: fields.get("Course_Creator").unwrap_or(&"").to_string(),
            units,
            blocks,
        })
    }

    /// Validates that every block member resolves to a unit or block.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] naming the first dangling
    /// member.
    pub fn validate(&self) -> Result<(), ScormError> {
        let mut ids: std::collections::HashSet<&str> =
            self.units.iter().map(|u| u.system_id.as_str()).collect();
        ids.extend(self.blocks.iter().map(|b| b.system_id.as_str()));
        for block in &self.blocks {
            for member in &block.members {
                if !ids.contains(member.as_str()) {
                    return Err(ScormError::InvalidManifest {
                        reason: format!(
                            "block {} references unknown member {member:?}",
                            block.system_id
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Organization, Resource, ScormType};

    fn manifest() -> Manifest {
        Manifest::new("COURSE-1")
            .with_organization(Organization {
                identifier: "ORG".into(),
                title: "Networking course".into(),
                items: vec![
                    OrgItem::folder(
                        "unit1",
                        "Unit 1",
                        vec![
                            OrgItem::leaf("i1", "Quiz 1", "R1"),
                            OrgItem::leaf("i2", "Quiz 2", "R2"),
                        ],
                    ),
                    OrgItem::leaf("i3", "Final", "R3"),
                ],
            })
            .with_resource(Resource::new("R1", ScormType::Sco, "q1/content.xml"))
            .with_resource(Resource::new("R2", ScormType::Sco, "q2/content.xml"))
            .with_resource(Resource::new("R3", ScormType::Sco, "final/content.xml"))
    }

    #[test]
    fn converts_manifest_to_units_and_blocks() {
        let course = AiccCourse::from_manifest(&manifest()).unwrap();
        assert_eq!(course.course_id, "COURSE-1");
        assert_eq!(course.units.len(), 3);
        assert_eq!(course.units[0].system_id, "A1");
        assert_eq!(course.units[0].file_name, "q1/content.xml");
        // ROOT + the Unit 1 folder.
        assert_eq!(course.blocks.len(), 2);
        assert_eq!(course.blocks[0].system_id, "ROOT");
        assert_eq!(course.blocks[0].members, vec!["B1", "A3"]);
        assert_eq!(course.blocks[1].members, vec!["A1", "A2"]);
        course.validate().unwrap();
    }

    #[test]
    fn file_triple_round_trips() {
        let course = AiccCourse::from_manifest(&manifest()).unwrap();
        let crs = course.to_crs();
        let au = course.to_au();
        let cst = course.to_cst();
        assert!(crs.contains("Course_ID=COURSE-1"));
        assert!(crs.contains("Total_AUs=3"));
        assert!(au.contains("\"A1\",\"Quiz 1\",\"q1/content.xml\""));
        assert!(cst.contains("\"ROOT\",\"B1\",\"A3\""));

        let parsed = AiccCourse::parse(&crs, &au, &cst).unwrap();
        assert_eq!(parsed.course_id, course.course_id);
        assert_eq!(parsed.units, course.units);
        assert_eq!(parsed.blocks.len(), course.blocks.len());
        for (a, b) in parsed.blocks.iter().zip(&course.blocks) {
            assert_eq!(a.system_id, b.system_id);
            assert_eq!(a.members, b.members);
        }
        parsed.validate().unwrap();
    }

    #[test]
    fn manifest_without_default_org_fails() {
        let manifest = Manifest::new("X");
        assert!(AiccCourse::from_manifest(&manifest).is_err());
    }

    #[test]
    fn dangling_item_reference_fails() {
        let manifest = Manifest::new("X").with_organization(Organization {
            identifier: "O".into(),
            title: "t".into(),
            items: vec![OrgItem::leaf("i", "q", "MISSING")],
        });
        assert!(AiccCourse::from_manifest(&manifest).is_err());
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(AiccCourse::parse("no id here", "h\n", "h\n").is_err());
        let crs = "Course_ID=C\n";
        assert!(AiccCourse::parse(crs, "h\n\"only\",\"two\"\n", "h\n").is_err());
    }

    #[test]
    fn validate_catches_dangling_members() {
        let course = AiccCourse {
            course_id: "C".into(),
            title: String::new(),
            creator: String::new(),
            units: vec![],
            blocks: vec![Block {
                system_id: "ROOT".into(),
                title: "ROOT".into(),
                members: vec!["A9".into()],
            }],
        };
        assert!(course.validate().is_err());
    }

    #[test]
    fn quotes_in_titles_are_sanitized() {
        let mut course = AiccCourse::from_manifest(&manifest()).unwrap();
        course.units[0].title = "say \"hi\"".into();
        let au = course.to_au();
        assert!(au.contains("say 'hi'"));
        // Still parses.
        assert!(AiccCourse::parse(&course.to_crs(), &au, &course.to_cst()).is_ok());
    }
}
