//! The SCORM 1.2 Run-Time Environment (§2.4, §5.5).
//!
//! "Some API functions are used to set value (ex. learner record, learner
//! progress, learner status), get value, error handler (ex. error message
//! transfer, error status record, error dialog) and course beginning and
//! ending (ex. course initial and course finish)."
//!
//! In the paper those functions are JavaScript shims between the browser
//! and the LMS; here [`ApiAdapter`] is the same state machine natively:
//! `LMSInitialize` → (`LMSGetValue` | `LMSSetValue` | `LMSCommit`)* →
//! `LMSFinish`, over the [`CmiDataModel`] with SCORM 1.2 access rules and
//! error codes.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::ScormErrorCode;

/// Legal values of `cmi.core.lesson_status`.
const LESSON_STATUSES: [&str; 6] = [
    "passed",
    "completed",
    "failed",
    "incomplete",
    "browsed",
    "not attempted",
];

/// One recorded interaction (`cmi.interactions.n`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Interaction {
    /// `cmi.interactions.n.id`.
    pub id: String,
    /// `cmi.interactions.n.type` (e.g. `choice`, `true-false`,
    /// `fill-in`, `matching`, `performance`).
    pub interaction_type: String,
    /// `cmi.interactions.n.student_response`.
    pub student_response: String,
    /// `cmi.interactions.n.result` (`correct`, `wrong`, `unanticipated`,
    /// `neutral`, or a number).
    pub result: String,
    /// `cmi.interactions.n.latency` as `HH:MM:SS[.ss]`.
    pub latency: String,
}

/// The `cmi.*` data model instance for one learner attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmiDataModel {
    /// `cmi.core.student_id` (read-only to the SCO).
    pub student_id: String,
    /// `cmi.core.student_name` (read-only to the SCO).
    pub student_name: String,
    /// `cmi.core.lesson_location` (read/write).
    pub lesson_location: String,
    /// `cmi.core.credit` (read-only): `credit` or `no-credit`.
    pub credit: String,
    /// `cmi.core.lesson_status` (read/write).
    pub lesson_status: String,
    /// `cmi.core.entry` (read-only): `ab-initio`, `resume`, or empty.
    pub entry: String,
    /// `cmi.core.score.raw` (read/write), 0–100.
    pub score_raw: Option<f64>,
    /// `cmi.core.score.min` (read/write).
    pub score_min: Option<f64>,
    /// `cmi.core.score.max` (read/write).
    pub score_max: Option<f64>,
    /// `cmi.core.total_time` (read-only): accumulated across sessions.
    pub total_time: Duration,
    /// `cmi.core.exit` (write-only): `time-out`, `suspend`, `logout`, or
    /// empty.
    pub exit: String,
    /// `cmi.core.session_time` (write-only).
    pub session_time: Duration,
    /// `cmi.suspend_data` (read/write), up to 4096 chars in SCORM 1.2.
    pub suspend_data: String,
    /// `cmi.launch_data` (read-only).
    pub launch_data: String,
    /// Recorded interactions (write-only except `_count`).
    pub interactions: Vec<Interaction>,
}

impl Default for CmiDataModel {
    fn default() -> Self {
        Self {
            student_id: String::new(),
            student_name: String::new(),
            lesson_location: String::new(),
            credit: "credit".into(),
            lesson_status: "not attempted".into(),
            entry: "ab-initio".into(),
            score_raw: None,
            score_min: None,
            score_max: None,
            total_time: Duration::ZERO,
            exit: String::new(),
            session_time: Duration::ZERO,
            suspend_data: String::new(),
            launch_data: String::new(),
            interactions: Vec::new(),
        }
    }
}

impl CmiDataModel {
    /// Creates a model for a named learner, `ab-initio`.
    #[must_use]
    pub fn for_student(id: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            student_id: id.into(),
            student_name: name.into(),
            ..Self::default()
        }
    }
}

/// Formats a `Duration` as the CMITimespan `HHHH:MM:SS.SS`.
#[must_use]
pub fn format_timespan(duration: Duration) -> String {
    let total = duration.as_secs_f64();
    let hours = (total / 3600.0).floor() as u64;
    let minutes = ((total % 3600.0) / 60.0).floor() as u64;
    let seconds = total % 60.0;
    format!("{hours:02}:{minutes:02}:{seconds:05.2}")
}

/// Parses a CMITimespan `HH:MM:SS[.ss]` string.
#[must_use]
pub fn parse_timespan(text: &str) -> Option<Duration> {
    let parts: Vec<&str> = text.trim().split(':').collect();
    if parts.len() != 3 {
        return None;
    }
    let hours: u64 = parts[0].parse().ok()?;
    let minutes: u64 = parts[1].parse().ok()?;
    let seconds: f64 = parts[2].parse().ok()?;
    if minutes >= 60 || !(0.0..60.0).contains(&seconds) {
        return None;
    }
    Some(Duration::from_secs_f64(
        hours as f64 * 3600.0 + minutes as f64 * 60.0 + seconds,
    ))
}

/// Lifecycle state of the API adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiState {
    /// Before `LMSInitialize`.
    NotInitialized,
    /// Between `LMSInitialize` and `LMSFinish`.
    Running,
    /// After `LMSFinish`.
    Terminated,
}

impl fmt::Display for ApiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ApiState::NotInitialized => "not-initialized",
            ApiState::Running => "running",
            ApiState::Terminated => "terminated",
        };
        f.write_str(name)
    }
}

/// The SCORM 1.2 API adapter: the object a SCO calls.
///
/// String-in/string-out signatures mirror the JavaScript API so delivery
/// code and tests exercise the same protocol an LMS would see; the typed
/// [`CmiDataModel`] is available through [`ApiAdapter::model`] after the
/// session.
///
/// # Examples
///
/// ```
/// use mine_scorm::ApiAdapter;
///
/// let mut api = ApiAdapter::new();
/// assert_eq!(api.lms_get_value("cmi.core.lesson_status"), Err("301".to_string()));
/// assert_eq!(api.lms_initialize(""), "true");
/// api.lms_set_value("cmi.core.score.raw", "87").unwrap();
/// assert_eq!(api.lms_commit(""), "true");
/// assert_eq!(api.lms_finish(""), "true");
/// assert_eq!(api.model().score_raw, Some(87.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApiAdapter {
    state: ApiState,
    model: CmiDataModel,
    last_error: ScormErrorCode,
    commits: u64,
    committed: Option<CmiDataModel>,
}

impl Default for ApiAdapter {
    fn default() -> Self {
        Self::new()
    }
}

impl ApiAdapter {
    /// Creates an adapter over a fresh data model.
    #[must_use]
    pub fn new() -> Self {
        Self::with_model(CmiDataModel::default())
    }

    /// Creates an adapter over a pre-filled model (the LMS launch side:
    /// student identity, entry flag, launch data).
    #[must_use]
    pub fn with_model(model: CmiDataModel) -> Self {
        Self {
            state: ApiState::NotInitialized,
            model,
            last_error: ScormErrorCode::NoError,
            commits: 0,
            committed: None,
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ApiState {
        self.state
    }

    /// The live data model.
    #[must_use]
    pub fn model(&self) -> &CmiDataModel {
        &self.model
    }

    /// The model as of the last `LMSCommit`/`LMSFinish`, if any.
    #[must_use]
    pub fn committed_model(&self) -> Option<&CmiDataModel> {
        self.committed.as_ref()
    }

    /// Number of successful commits (including the implicit one in
    /// `LMSFinish`).
    #[must_use]
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// `LMSGetLastError` as a typed code.
    #[must_use]
    pub fn last_error(&self) -> ScormErrorCode {
        self.last_error
    }

    /// `LMSGetErrorString` for a code string.
    #[must_use]
    pub fn lms_get_error_string(&self, code: &str) -> String {
        let known = [
            ScormErrorCode::NoError,
            ScormErrorCode::GeneralException,
            ScormErrorCode::InvalidArgument,
            ScormErrorCode::ElementCannotHaveChildren,
            ScormErrorCode::ElementNotArray,
            ScormErrorCode::NotInitialized,
            ScormErrorCode::NotImplemented,
            ScormErrorCode::InvalidSetValue,
            ScormErrorCode::ElementIsReadOnly,
            ScormErrorCode::ElementIsWriteOnly,
            ScormErrorCode::IncorrectDataType,
        ];
        known
            .iter()
            .find(|c| c.code_str() == code.trim())
            .map(|c| c.error_string().to_string())
            .unwrap_or_default()
    }

    fn ok<T>(&mut self, value: T) -> T {
        self.last_error = ScormErrorCode::NoError;
        value
    }

    fn fail(&mut self, code: ScormErrorCode) -> Result<String, String> {
        self.last_error = code;
        Err(code.code_str())
    }

    /// `LMSInitialize("")` — course beginning.
    ///
    /// Returns `"true"` on success, `"false"` otherwise (check
    /// [`ApiAdapter::last_error`]).
    pub fn lms_initialize(&mut self, arg: &str) -> &'static str {
        if !arg.is_empty() {
            self.last_error = ScormErrorCode::InvalidArgument;
            return "false";
        }
        if self.state != ApiState::NotInitialized {
            self.last_error = ScormErrorCode::GeneralException;
            return "false";
        }
        self.state = ApiState::Running;
        self.last_error = ScormErrorCode::NoError;
        "true"
    }

    /// `LMSFinish("")` — course ending. Accumulates session time into
    /// total time and commits.
    pub fn lms_finish(&mut self, arg: &str) -> &'static str {
        if !arg.is_empty() {
            self.last_error = ScormErrorCode::InvalidArgument;
            return "false";
        }
        if self.state != ApiState::Running {
            self.last_error = ScormErrorCode::NotInitialized;
            return "false";
        }
        self.model.total_time += self.model.session_time;
        self.model.session_time = Duration::ZERO;
        self.committed = Some(self.model.clone());
        self.commits += 1;
        self.state = ApiState::Terminated;
        self.last_error = ScormErrorCode::NoError;
        "true"
    }

    /// `LMSCommit("")` — persist the model.
    pub fn lms_commit(&mut self, arg: &str) -> &'static str {
        if !arg.is_empty() {
            self.last_error = ScormErrorCode::InvalidArgument;
            return "false";
        }
        if self.state != ApiState::Running {
            self.last_error = ScormErrorCode::NotInitialized;
            return "false";
        }
        self.committed = Some(self.model.clone());
        self.commits += 1;
        self.last_error = ScormErrorCode::NoError;
        "true"
    }

    /// `LMSGetValue(element)`.
    ///
    /// # Errors
    ///
    /// Returns the error-code string (also retrievable via
    /// [`ApiAdapter::last_error`]): `301` before initialize, `404` for
    /// write-only elements, `401` for unknown elements.
    pub fn lms_get_value(&mut self, element: &str) -> Result<String, String> {
        if self.state != ApiState::Running {
            return self.fail(ScormErrorCode::NotInitialized);
        }
        let value = match element {
            "cmi.core._children" => {
                "student_id,student_name,lesson_location,credit,lesson_status,entry,score,total_time,exit,session_time"
                    .to_string()
            }
            "cmi.core.score._children" => "raw,min,max".to_string(),
            "cmi.core.student_id" => self.model.student_id.clone(),
            "cmi.core.student_name" => self.model.student_name.clone(),
            "cmi.core.lesson_location" => self.model.lesson_location.clone(),
            "cmi.core.credit" => self.model.credit.clone(),
            "cmi.core.lesson_status" => self.model.lesson_status.clone(),
            "cmi.core.entry" => self.model.entry.clone(),
            "cmi.core.score.raw" => self.model.score_raw.map(|v| v.to_string()).unwrap_or_default(),
            "cmi.core.score.min" => self.model.score_min.map(|v| v.to_string()).unwrap_or_default(),
            "cmi.core.score.max" => self.model.score_max.map(|v| v.to_string()).unwrap_or_default(),
            "cmi.core.total_time" => format_timespan(self.model.total_time),
            "cmi.suspend_data" => self.model.suspend_data.clone(),
            "cmi.launch_data" => self.model.launch_data.clone(),
            "cmi.interactions._count" => self.model.interactions.len().to_string(),
            "cmi.core.exit" | "cmi.core.session_time" => {
                return self.fail(ScormErrorCode::ElementIsWriteOnly)
            }
            other if other.starts_with("cmi.interactions.") => {
                return self.fail(ScormErrorCode::ElementIsWriteOnly)
            }
            _ => return self.fail(ScormErrorCode::NotImplemented),
        };
        Ok(self.ok(value))
    }

    /// `LMSSetValue(element, value)`.
    ///
    /// # Errors
    ///
    /// Returns the error-code string: `301` before initialize, `403` for
    /// read-only elements, `402` for keyword elements (`_children`,
    /// `_count`), `405` for type violations, `401` for unknown elements.
    pub fn lms_set_value(&mut self, element: &str, value: &str) -> Result<String, String> {
        if self.state != ApiState::Running {
            return self.fail(ScormErrorCode::NotInitialized);
        }
        if element.ends_with("._children") || element.ends_with("._count") {
            return self.fail(ScormErrorCode::InvalidSetValue);
        }
        match element {
            "cmi.core.student_id"
            | "cmi.core.student_name"
            | "cmi.core.credit"
            | "cmi.core.entry"
            | "cmi.core.total_time"
            | "cmi.launch_data" => return self.fail(ScormErrorCode::ElementIsReadOnly),
            "cmi.core.lesson_location" => {
                self.model.lesson_location = value.to_string();
            }
            "cmi.core.lesson_status" => {
                if !LESSON_STATUSES.contains(&value) {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                self.model.lesson_status = value.to_string();
            }
            "cmi.core.score.raw" | "cmi.core.score.min" | "cmi.core.score.max" => {
                let Ok(number) = value.trim().parse::<f64>() else {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                };
                if !(0.0..=100.0).contains(&number) {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                match element {
                    "cmi.core.score.raw" => self.model.score_raw = Some(number),
                    "cmi.core.score.min" => self.model.score_min = Some(number),
                    _ => self.model.score_max = Some(number),
                }
            }
            "cmi.core.exit" => {
                if !["time-out", "suspend", "logout", ""].contains(&value) {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                self.model.exit = value.to_string();
            }
            "cmi.core.session_time" => {
                let Some(duration) = parse_timespan(value) else {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                };
                self.model.session_time = duration;
            }
            "cmi.suspend_data" => {
                if value.len() > 4096 {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                self.model.suspend_data = value.to_string();
            }
            other if other.starts_with("cmi.interactions.") => {
                return self.set_interaction(other, value);
            }
            _ => return self.fail(ScormErrorCode::NotImplemented),
        }
        Ok(self.ok("true".to_string()))
    }

    /// Handles `cmi.interactions.<n>.<field>` writes.
    fn set_interaction(&mut self, element: &str, value: &str) -> Result<String, String> {
        let rest = element
            .strip_prefix("cmi.interactions.")
            .expect("caller checked");
        let mut split = rest.splitn(2, '.');
        let (Some(index_str), Some(field)) = (split.next(), split.next()) else {
            return self.fail(ScormErrorCode::InvalidArgument);
        };
        let Ok(index) = index_str.parse::<usize>() else {
            return self.fail(ScormErrorCode::InvalidArgument);
        };
        // SCORM 1.2 requires indices to be used in order.
        if index > self.model.interactions.len() {
            return self.fail(ScormErrorCode::InvalidArgument);
        }
        if index == self.model.interactions.len() {
            self.model.interactions.push(Interaction::default());
        }
        let interaction = &mut self.model.interactions[index];
        match field {
            "id" => interaction.id = value.to_string(),
            "type" => {
                const TYPES: [&str; 7] = [
                    "true-false",
                    "choice",
                    "fill-in",
                    "matching",
                    "performance",
                    "sequencing",
                    "likert",
                ];
                if !TYPES.contains(&value) {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                interaction.interaction_type = value.to_string();
            }
            "student_response" => interaction.student_response = value.to_string(),
            "result" => interaction.result = value.to_string(),
            "latency" => {
                if parse_timespan(value).is_none() {
                    return self.fail(ScormErrorCode::IncorrectDataType);
                }
                interaction.latency = value.to_string();
            }
            _ => return self.fail(ScormErrorCode::NotImplemented),
        }
        Ok(self.ok("true".to_string()))
    }

    /// Exports the committed model as a flat `element → value` map (what
    /// the LMS would persist).
    #[must_use]
    pub fn export_committed(&self) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        let Some(model) = &self.committed else {
            return out;
        };
        out.insert("cmi.core.student_id".into(), model.student_id.clone());
        out.insert("cmi.core.student_name".into(), model.student_name.clone());
        out.insert(
            "cmi.core.lesson_location".into(),
            model.lesson_location.clone(),
        );
        out.insert("cmi.core.lesson_status".into(), model.lesson_status.clone());
        if let Some(raw) = model.score_raw {
            out.insert("cmi.core.score.raw".into(), raw.to_string());
        }
        out.insert(
            "cmi.core.total_time".into(),
            format_timespan(model.total_time),
        );
        if !model.suspend_data.is_empty() {
            out.insert("cmi.suspend_data".into(), model.suspend_data.clone());
        }
        for (i, interaction) in model.interactions.iter().enumerate() {
            out.insert(format!("cmi.interactions.{i}.id"), interaction.id.clone());
            out.insert(
                format!("cmi.interactions.{i}.result"),
                interaction.result.clone(),
            );
            out.insert(
                format!("cmi.interactions.{i}.student_response"),
                interaction.student_response.clone(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut api = ApiAdapter::new();
        assert_eq!(api.state(), ApiState::NotInitialized);
        assert_eq!(api.lms_initialize(""), "true");
        assert_eq!(api.state(), ApiState::Running);
        assert_eq!(api.lms_finish(""), "true");
        assert_eq!(api.state(), ApiState::Terminated);
        assert_eq!(api.commit_count(), 1);
    }

    #[test]
    fn initialize_rejects_argument_and_double_init() {
        let mut api = ApiAdapter::new();
        assert_eq!(api.lms_initialize("x"), "false");
        assert_eq!(api.last_error(), ScormErrorCode::InvalidArgument);
        assert_eq!(api.lms_initialize(""), "true");
        assert_eq!(api.lms_initialize(""), "false");
        assert_eq!(api.last_error(), ScormErrorCode::GeneralException);
    }

    #[test]
    fn calls_before_initialize_fail_301() {
        let mut api = ApiAdapter::new();
        assert_eq!(api.lms_get_value("cmi.core.student_id"), Err("301".into()));
        assert_eq!(
            api.lms_set_value("cmi.core.lesson_status", "passed"),
            Err("301".into())
        );
        assert_eq!(api.lms_commit(""), "false");
        assert_eq!(api.lms_finish(""), "false");
    }

    #[test]
    fn read_only_and_write_only_enforced() {
        let mut api = ApiAdapter::with_model(CmiDataModel::for_student("s1", "Chen"));
        api.lms_initialize("");
        assert_eq!(
            api.lms_set_value("cmi.core.student_id", "hack"),
            Err("403".into())
        );
        assert_eq!(
            api.lms_get_value("cmi.core.session_time"),
            Err("404".into())
        );
        assert_eq!(api.lms_get_value("cmi.core.exit"), Err("404".into()));
        assert_eq!(api.lms_get_value("cmi.core.student_id").unwrap(), "s1");
    }

    #[test]
    fn keyword_elements_cannot_be_set() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        assert_eq!(
            api.lms_set_value("cmi.core._children", "x"),
            Err("402".into())
        );
        assert_eq!(
            api.lms_set_value("cmi.interactions._count", "0"),
            Err("402".into())
        );
    }

    #[test]
    fn lesson_status_vocabulary_enforced() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        for status in LESSON_STATUSES {
            assert!(api.lms_set_value("cmi.core.lesson_status", status).is_ok());
        }
        assert_eq!(
            api.lms_set_value("cmi.core.lesson_status", "victorious"),
            Err("405".into())
        );
    }

    #[test]
    fn score_range_enforced() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        assert!(api.lms_set_value("cmi.core.score.raw", "88.5").is_ok());
        assert_eq!(
            api.lms_set_value("cmi.core.score.raw", "101"),
            Err("405".into())
        );
        assert_eq!(
            api.lms_set_value("cmi.core.score.raw", "-1"),
            Err("405".into())
        );
        assert_eq!(
            api.lms_set_value("cmi.core.score.raw", "NaN"),
            Err("405".into())
        );
        assert_eq!(
            api.lms_set_value("cmi.core.score.raw", "abc"),
            Err("405".into())
        );
    }

    #[test]
    fn session_time_accumulates_into_total_time() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        api.lms_set_value("cmi.core.session_time", "00:30:00")
            .unwrap();
        api.lms_finish("");
        assert_eq!(api.model().total_time, Duration::from_secs(1800));
        // Second attempt resumes with the accumulated total.
        let mut api2 = ApiAdapter::with_model(api.model().clone());
        api2.lms_initialize("");
        api2.lms_set_value("cmi.core.session_time", "00:15:00")
            .unwrap();
        api2.lms_finish("");
        assert_eq!(api2.model().total_time, Duration::from_secs(2700));
    }

    #[test]
    fn timespan_format_and_parse() {
        assert_eq!(format_timespan(Duration::from_secs(3661)), "01:01:01.00");
        assert_eq!(
            parse_timespan("01:01:01.00"),
            Some(Duration::from_secs(3661))
        );
        assert_eq!(
            parse_timespan("00:00:12.5"),
            Some(Duration::from_secs_f64(12.5))
        );
        assert_eq!(parse_timespan("bad"), None);
        assert_eq!(parse_timespan("00:99:00"), None);
        assert_eq!(parse_timespan("0:0"), None);
    }

    #[test]
    fn interactions_append_in_order() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        api.lms_set_value("cmi.interactions.0.id", "q1").unwrap();
        api.lms_set_value("cmi.interactions.0.type", "choice")
            .unwrap();
        api.lms_set_value("cmi.interactions.0.student_response", "C")
            .unwrap();
        api.lms_set_value("cmi.interactions.0.result", "correct")
            .unwrap();
        api.lms_set_value("cmi.interactions.0.latency", "00:00:42")
            .unwrap();
        api.lms_set_value("cmi.interactions.1.id", "q2").unwrap();
        assert_eq!(api.lms_get_value("cmi.interactions._count").unwrap(), "2");
        // Gap in indices is rejected.
        assert_eq!(
            api.lms_set_value("cmi.interactions.5.id", "q6"),
            Err("201".into())
        );
        // Interaction fields are write-only.
        assert_eq!(
            api.lms_get_value("cmi.interactions.0.id"),
            Err("404".into())
        );
        assert_eq!(
            api.lms_set_value("cmi.interactions.0.type", "telepathy"),
            Err("405".into())
        );
    }

    #[test]
    fn unknown_elements_are_401() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        assert_eq!(api.lms_get_value("cmi.bogus"), Err("401".into()));
        assert_eq!(api.lms_set_value("cmi.bogus", "x"), Err("401".into()));
    }

    #[test]
    fn commit_snapshots_model() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        assert!(api.committed_model().is_none());
        api.lms_set_value("cmi.core.lesson_status", "incomplete")
            .unwrap();
        api.lms_commit("");
        api.lms_set_value("cmi.core.lesson_status", "completed")
            .unwrap();
        assert_eq!(
            api.committed_model().unwrap().lesson_status,
            "incomplete",
            "commit is a snapshot, not a live view"
        );
        let exported = {
            api.lms_commit("");
            api.export_committed()
        };
        assert_eq!(exported["cmi.core.lesson_status"], "completed");
    }

    #[test]
    fn suspend_data_length_limit() {
        let mut api = ApiAdapter::new();
        api.lms_initialize("");
        let ok = "x".repeat(4096);
        assert!(api.lms_set_value("cmi.suspend_data", &ok).is_ok());
        let too_long = "x".repeat(4097);
        assert_eq!(
            api.lms_set_value("cmi.suspend_data", &too_long),
            Err("405".into())
        );
    }

    #[test]
    fn error_string_lookup() {
        let api = ApiAdapter::new();
        assert_eq!(api.lms_get_error_string("0"), "No error");
        assert_eq!(api.lms_get_error_string("403"), "Element is read only");
        assert_eq!(api.lms_get_error_string("999"), "");
    }
}
