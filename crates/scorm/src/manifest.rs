//! The `imsmanifest.xml` model (§5.5).
//!
//! "With this imsmanifest.xml, we can parse the whole course structure."
//! The model covers the SCORM 1.2 content-aggregation subset the
//! assessment system emits: manifest → organizations → items, plus the
//! resources they reference.

use mine_xml::{Document, Element};

use crate::error::ScormError;

/// `adlcp:scormtype` of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScormType {
    /// A shareable content object that talks to the LMS API.
    Sco,
    /// A passive asset (image, stylesheet, …).
    Asset,
}

impl ScormType {
    /// The wire keyword.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            ScormType::Sco => "sco",
            ScormType::Asset => "asset",
        }
    }

    /// Parses the wire keyword.
    #[must_use]
    pub fn from_keyword(keyword: &str) -> Option<Self> {
        match keyword.trim().to_ascii_lowercase().as_str() {
            "sco" => Some(ScormType::Sco),
            "asset" => Some(ScormType::Asset),
            _ => None,
        }
    }
}

/// A launchable/packaged resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Unique resource identifier.
    pub identifier: String,
    /// `type` attribute; SCORM uses `webcontent`.
    pub resource_type: String,
    /// SCO or asset.
    pub scorm_type: ScormType,
    /// Launch entry point (package-relative).
    pub href: String,
    /// All files belonging to the resource (package-relative).
    pub files: Vec<String>,
    /// Identifiers of resources this one depends on.
    pub dependencies: Vec<String>,
}

impl Resource {
    /// Creates a web-content resource with its launch file listed.
    #[must_use]
    pub fn new(
        identifier: impl Into<String>,
        scorm_type: ScormType,
        href: impl Into<String>,
    ) -> Self {
        let href = href.into();
        Self {
            identifier: identifier.into(),
            resource_type: "webcontent".into(),
            scorm_type,
            files: vec![href.clone()],
            href,
            dependencies: Vec::new(),
        }
    }

    /// Builder-style extra file.
    #[must_use]
    pub fn with_file(mut self, path: impl Into<String>) -> Self {
        self.files.push(path.into());
        self
    }
}

/// One item of an organization tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgItem {
    /// Unique item identifier.
    pub identifier: String,
    /// The resource this item launches, if it is a leaf.
    pub identifierref: Option<String>,
    /// Display title.
    pub title: String,
    /// Nested items.
    pub children: Vec<OrgItem>,
}

impl OrgItem {
    /// Creates a leaf item launching a resource.
    #[must_use]
    pub fn leaf(
        identifier: impl Into<String>,
        title: impl Into<String>,
        identifierref: impl Into<String>,
    ) -> Self {
        Self {
            identifier: identifier.into(),
            identifierref: Some(identifierref.into()),
            title: title.into(),
            children: Vec::new(),
        }
    }

    /// Creates a folder item with children.
    #[must_use]
    pub fn folder(
        identifier: impl Into<String>,
        title: impl Into<String>,
        children: Vec<OrgItem>,
    ) -> Self {
        Self {
            identifier: identifier.into(),
            identifierref: None,
            title: title.into(),
            children,
        }
    }

    fn collect_refs<'a>(&'a self, refs: &mut Vec<&'a str>) {
        if let Some(r) = &self.identifierref {
            refs.push(r);
        }
        for child in &self.children {
            child.collect_refs(refs);
        }
    }
}

/// An organization (a course structure tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Unique organization identifier.
    pub identifier: String,
    /// Display title.
    pub title: String,
    /// Top-level items.
    pub items: Vec<OrgItem>,
}

/// The whole `imsmanifest.xml`.
///
/// # Examples
///
/// ```
/// use mine_scorm::{Manifest, Organization, OrgItem, Resource, ScormType};
///
/// let manifest = Manifest::new("MANIFEST-1")
///     .with_organization(Organization {
///         identifier: "ORG-1".into(),
///         title: "Quiz".into(),
///         items: vec![OrgItem::leaf("ITEM-1", "Question 1", "RES-1")],
///     })
///     .with_resource(Resource::new("RES-1", ScormType::Sco, "q1/index.xml"));
/// manifest.validate()?;
/// let text = manifest.to_xml_string();
/// let back = Manifest::from_xml_str(&text)?;
/// assert_eq!(back, manifest);
/// # Ok::<(), mine_scorm::ScormError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest identifier.
    pub identifier: String,
    /// Package version label.
    pub version: String,
    /// Metadata schema name (always "ADL SCORM").
    pub schema: String,
    /// Metadata schema version (always "1.2").
    pub schema_version: String,
    /// Identifier of the default organization.
    pub default_organization: Option<String>,
    /// All organizations.
    pub organizations: Vec<Organization>,
    /// All resources.
    pub resources: Vec<Resource>,
}

impl Manifest {
    /// Creates an empty SCORM 1.2 manifest.
    #[must_use]
    pub fn new(identifier: impl Into<String>) -> Self {
        Self {
            identifier: identifier.into(),
            version: "1.0".into(),
            schema: "ADL SCORM".into(),
            schema_version: "1.2".into(),
            default_organization: None,
            organizations: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// Builder-style organization append; the first one becomes the
    /// default.
    #[must_use]
    pub fn with_organization(mut self, organization: Organization) -> Self {
        if self.default_organization.is_none() {
            self.default_organization = Some(organization.identifier.clone());
        }
        self.organizations.push(organization);
        self
    }

    /// Builder-style resource append.
    #[must_use]
    pub fn with_resource(mut self, resource: Resource) -> Self {
        self.resources.push(resource);
        self
    }

    /// Looks up a resource by identifier.
    #[must_use]
    pub fn resource(&self, identifier: &str) -> Option<&Resource> {
        self.resources.iter().find(|r| r.identifier == identifier)
    }

    /// The default organization, if set and present.
    #[must_use]
    pub fn default_org(&self) -> Option<&Organization> {
        let id = self.default_organization.as_ref()?;
        self.organizations.iter().find(|o| &o.identifier == id)
    }

    /// All file paths referenced by resources.
    #[must_use]
    pub fn referenced_files(&self) -> Vec<&str> {
        let mut files: Vec<&str> = self
            .resources
            .iter()
            .flat_map(|r| r.files.iter().map(String::as_str))
            .collect();
        files.sort_unstable();
        files.dedup();
        files
    }

    /// Validates structural consistency: default organization exists,
    /// `identifierref`s resolve, identifiers are unique, resources list
    /// their launch file.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), ScormError> {
        let fail = |reason: String| Err(ScormError::InvalidManifest { reason });
        if self.identifier.trim().is_empty() {
            return fail("manifest identifier is empty".into());
        }
        if let Some(default) = &self.default_organization {
            if !self.organizations.iter().any(|o| &o.identifier == default) {
                return fail(format!("default organization {default:?} does not exist"));
            }
        }
        let mut resource_ids = std::collections::HashSet::new();
        for resource in &self.resources {
            if !resource_ids.insert(&resource.identifier) {
                return fail(format!("duplicate resource {:?}", resource.identifier));
            }
            if !resource.href.is_empty() && !resource.files.contains(&resource.href) {
                return fail(format!(
                    "resource {:?} does not list its launch file {:?}",
                    resource.identifier, resource.href
                ));
            }
            for dep in &resource.dependencies {
                if !self.resources.iter().any(|r| &r.identifier == dep) {
                    return fail(format!(
                        "resource {:?} depends on missing {dep:?}",
                        resource.identifier
                    ));
                }
            }
        }
        let mut item_ids = std::collections::HashSet::new();
        for organization in &self.organizations {
            let mut refs = Vec::new();
            for item in &organization.items {
                item.collect_refs(&mut refs);
                collect_item_ids(item, &mut item_ids, &mut Vec::new())?;
            }
            for reference in refs {
                if !resource_ids.contains(&reference.to_string()) {
                    return fail(format!(
                        "item in {:?} references missing resource {reference:?}",
                        organization.identifier
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes to the `imsmanifest.xml` document.
    #[must_use]
    pub fn to_xml_document(&self) -> Document {
        let mut root = Element::new("manifest")
            .with_attr("identifier", &self.identifier)
            .with_attr("version", &self.version)
            .with_attr("xmlns", "http://www.imsproject.org/xsd/imscp_rootv1p1p2")
            .with_attr("xmlns:adlcp", "http://www.adlnet.org/xsd/adlcp_rootv1p2");

        root.push(
            Element::new("metadata")
                .with_child(Element::new("schema").with_text(&self.schema))
                .with_child(Element::new("schemaversion").with_text(&self.schema_version)),
        );

        let mut organizations = Element::new("organizations");
        if let Some(default) = &self.default_organization {
            organizations.set_attr("default", default);
        }
        for organization in &self.organizations {
            let mut el = Element::new("organization")
                .with_attr("identifier", &organization.identifier)
                .with_child(Element::new("title").with_text(&organization.title));
            for item in &organization.items {
                el.push(item_to_xml(item));
            }
            organizations.push(el);
        }
        root.push(organizations);

        let mut resources = Element::new("resources");
        for resource in &self.resources {
            let mut el = Element::new("resource")
                .with_attr("identifier", &resource.identifier)
                .with_attr("type", &resource.resource_type)
                .with_attr("adlcp:scormtype", resource.scorm_type.keyword());
            if !resource.href.is_empty() {
                el.set_attr("href", &resource.href);
            }
            for file in &resource.files {
                el.push(Element::new("file").with_attr("href", file));
            }
            for dep in &resource.dependencies {
                el.push(Element::new("dependency").with_attr("identifierref", dep));
            }
            resources.push(el);
        }
        root.push(resources);

        Document::new(root)
    }

    /// Serializes to `imsmanifest.xml` text.
    #[must_use]
    pub fn to_xml_string(&self) -> String {
        self.to_xml_document().to_xml_string()
    }

    /// Parses a manifest from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::Xml`] for malformed XML and
    /// [`ScormError::InvalidManifest`] for structural problems.
    pub fn from_xml_str(text: &str) -> Result<Self, ScormError> {
        let doc = mine_xml::parse_document(text)?;
        Self::from_xml_element(&doc.root)
    }

    /// Decodes a manifest from a parsed `<manifest>` element.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] for structural problems.
    pub fn from_xml_element(root: &Element) -> Result<Self, ScormError> {
        if root.local_name() != "manifest" {
            return Err(ScormError::InvalidManifest {
                reason: format!("root element is <{}>, expected <manifest>", root.name),
            });
        }
        let identifier = root.attr("identifier").unwrap_or_default().to_string();
        let version = root.attr("version").unwrap_or("1.0").to_string();
        let (schema, schema_version) = match root.child("metadata") {
            Some(md) => (
                md.child_text("schema").unwrap_or_default(),
                md.child_text("schemaversion").unwrap_or_default(),
            ),
            None => (String::new(), String::new()),
        };

        let mut organizations = Vec::new();
        let mut default_organization = None;
        if let Some(orgs) = root.child("organizations") {
            default_organization = orgs.attr("default").map(str::to_string);
            for org in orgs.children_named("organization") {
                let items = org
                    .children_named("item")
                    .map(item_from_xml)
                    .collect::<Result<Vec<_>, _>>()?;
                organizations.push(Organization {
                    identifier: org.attr("identifier").unwrap_or_default().to_string(),
                    title: org.child_text("title").unwrap_or_default(),
                    items,
                });
            }
        }

        let mut resources = Vec::new();
        if let Some(res) = root.child("resources") {
            for resource in res.children_named("resource") {
                let scorm_type = resource
                    .attr("adlcp:scormtype")
                    .or_else(|| resource.attr("adlcp:scormType"))
                    .and_then(ScormType::from_keyword)
                    .ok_or_else(|| ScormError::InvalidManifest {
                        reason: format!(
                            "resource {:?} missing adlcp:scormtype",
                            resource.attr("identifier").unwrap_or_default()
                        ),
                    })?;
                resources.push(Resource {
                    identifier: resource.attr("identifier").unwrap_or_default().to_string(),
                    resource_type: resource.attr("type").unwrap_or("webcontent").to_string(),
                    scorm_type,
                    href: resource.attr("href").unwrap_or_default().to_string(),
                    files: resource
                        .children_named("file")
                        .filter_map(|f| f.attr("href"))
                        .map(str::to_string)
                        .collect(),
                    dependencies: resource
                        .children_named("dependency")
                        .filter_map(|d| d.attr("identifierref"))
                        .map(str::to_string)
                        .collect(),
                });
            }
        }

        Ok(Manifest {
            identifier,
            version,
            schema,
            schema_version,
            default_organization,
            organizations,
            resources,
        })
    }
}

fn collect_item_ids<'a>(
    item: &'a OrgItem,
    seen: &mut std::collections::HashSet<&'a str>,
    _stack: &mut Vec<&'a str>,
) -> Result<(), ScormError> {
    if !seen.insert(item.identifier.as_str()) {
        return Err(ScormError::InvalidManifest {
            reason: format!("duplicate item identifier {:?}", item.identifier),
        });
    }
    for child in &item.children {
        collect_item_ids(child, seen, _stack)?;
    }
    Ok(())
}

fn item_to_xml(item: &OrgItem) -> Element {
    let mut el = Element::new("item").with_attr("identifier", &item.identifier);
    if let Some(reference) = &item.identifierref {
        el.set_attr("identifierref", reference);
    }
    el.push(Element::new("title").with_text(&item.title));
    for child in &item.children {
        el.push(item_to_xml(child));
    }
    el
}

fn item_from_xml(el: &Element) -> Result<OrgItem, ScormError> {
    Ok(OrgItem {
        identifier: el.attr("identifier").unwrap_or_default().to_string(),
        identifierref: el.attr("identifierref").map(str::to_string),
        title: el.child_text("title").unwrap_or_default(),
        children: el
            .children_named("item")
            .map(item_from_xml)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::new("MANIFEST-QUIZ")
            .with_organization(Organization {
                identifier: "ORG-1".into(),
                title: "Networking quiz".into(),
                items: vec![OrgItem::folder(
                    "ITEM-ROOT",
                    "Quiz",
                    vec![
                        OrgItem::leaf("ITEM-1", "Question 1", "RES-1"),
                        OrgItem::leaf("ITEM-2", "Question 2", "RES-2"),
                    ],
                )],
            })
            .with_resource(
                Resource::new("RES-1", ScormType::Sco, "q1/content.xml")
                    .with_file("q1/descriptor.xml"),
            )
            .with_resource(Resource::new("RES-2", ScormType::Sco, "q2/content.xml"))
            .with_resource(Resource::new("RES-API", ScormType::Asset, "shared/api.js"))
    }

    #[test]
    fn valid_sample_passes() {
        sample().validate().unwrap();
    }

    #[test]
    fn first_organization_becomes_default() {
        let manifest = sample();
        assert_eq!(manifest.default_organization.as_deref(), Some("ORG-1"));
        assert_eq!(manifest.default_org().unwrap().title, "Networking quiz");
    }

    #[test]
    fn xml_round_trip() {
        let manifest = sample();
        let text = manifest.to_xml_string();
        assert!(text.contains("imsmanifest") || text.contains("<manifest"));
        assert!(text.contains("adlcp:scormtype=\"sco\""));
        let back = Manifest::from_xml_str(&text).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn dangling_identifierref_fails_validation() {
        let manifest = Manifest::new("M").with_organization(Organization {
            identifier: "O".into(),
            title: "t".into(),
            items: vec![OrgItem::leaf("I", "q", "RES-MISSING")],
        });
        assert!(matches!(
            manifest.validate(),
            Err(ScormError::InvalidManifest { .. })
        ));
    }

    #[test]
    fn missing_default_org_fails_validation() {
        let mut manifest = sample();
        manifest.default_organization = Some("GHOST".into());
        assert!(manifest.validate().is_err());
    }

    #[test]
    fn duplicate_resources_fail_validation() {
        let manifest = Manifest::new("M")
            .with_resource(Resource::new("R", ScormType::Asset, "a.xml"))
            .with_resource(Resource::new("R", ScormType::Asset, "b.xml"));
        assert!(manifest.validate().is_err());
    }

    #[test]
    fn duplicate_item_ids_fail_validation() {
        let manifest = Manifest::new("M")
            .with_organization(Organization {
                identifier: "O".into(),
                title: "t".into(),
                items: vec![OrgItem::leaf("I", "a", "R"), OrgItem::leaf("I", "b", "R")],
            })
            .with_resource(Resource::new("R", ScormType::Sco, "r.xml"));
        assert!(manifest.validate().is_err());
    }

    #[test]
    fn launch_file_must_be_listed() {
        let mut resource = Resource::new("R", ScormType::Sco, "launch.xml");
        resource.files.clear();
        let manifest = Manifest::new("M").with_resource(resource);
        assert!(manifest.validate().is_err());
    }

    #[test]
    fn missing_dependency_fails_validation() {
        let mut resource = Resource::new("R", ScormType::Sco, "r.xml");
        resource.dependencies.push("GHOST".into());
        let manifest = Manifest::new("M").with_resource(resource);
        assert!(manifest.validate().is_err());
    }

    #[test]
    fn referenced_files_dedup_sorted() {
        let manifest = sample();
        let files = manifest.referenced_files();
        assert_eq!(
            files,
            vec![
                "q1/content.xml",
                "q1/descriptor.xml",
                "q2/content.xml",
                "shared/api.js"
            ]
        );
    }

    #[test]
    fn from_xml_rejects_non_manifest_root() {
        assert!(Manifest::from_xml_str("<notmanifest/>").is_err());
    }

    #[test]
    fn scorm_type_keywords() {
        assert_eq!(ScormType::from_keyword("SCO"), Some(ScormType::Sco));
        assert_eq!(ScormType::from_keyword(" asset "), Some(ScormType::Asset));
        assert_eq!(ScormType::from_keyword("thing"), None);
    }
}
