//! SCORM error codes (API error handler) and the crate error type.

use std::error::Error as StdError;
use std::fmt;

use mine_xml::XmlError;

/// SCORM 1.2 API error codes, as returned by `LMSGetLastError`.
///
/// The paper (§5.5) requires "error handler (ex. error message transfer,
/// error status record, error dialog)" functions; these are the standard
/// codes those functions speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ScormErrorCode {
    /// 0 — no error.
    NoError = 0,
    /// 101 — general exception.
    GeneralException = 101,
    /// 201 — invalid argument error.
    InvalidArgument = 201,
    /// 202 — element cannot have children.
    ElementCannotHaveChildren = 202,
    /// 203 — element not an array, cannot have count.
    ElementNotArray = 203,
    /// 301 — not initialized.
    NotInitialized = 301,
    /// 401 — not implemented error.
    NotImplemented = 401,
    /// 402 — invalid set value, element is a keyword.
    InvalidSetValue = 402,
    /// 403 — element is read only.
    ElementIsReadOnly = 403,
    /// 404 — element is write only.
    ElementIsWriteOnly = 404,
    /// 405 — incorrect data type.
    IncorrectDataType = 405,
}

impl ScormErrorCode {
    /// The numeric code string the JavaScript API would return.
    #[must_use]
    pub fn code_str(self) -> String {
        (self as u16).to_string()
    }

    /// The standard error string for `LMSGetErrorString`.
    #[must_use]
    pub fn error_string(self) -> &'static str {
        match self {
            ScormErrorCode::NoError => "No error",
            ScormErrorCode::GeneralException => "General exception",
            ScormErrorCode::InvalidArgument => "Invalid argument error",
            ScormErrorCode::ElementCannotHaveChildren => "Element cannot have children",
            ScormErrorCode::ElementNotArray => "Element not an array. Cannot have count",
            ScormErrorCode::NotInitialized => "Not initialized",
            ScormErrorCode::NotImplemented => "Not implemented error",
            ScormErrorCode::InvalidSetValue => "Invalid set value, element is a keyword",
            ScormErrorCode::ElementIsReadOnly => "Element is read only",
            ScormErrorCode::ElementIsWriteOnly => "Element is write only",
            ScormErrorCode::IncorrectDataType => "Incorrect data type",
        }
    }
}

impl fmt::Display for ScormErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code_str(), self.error_string())
    }
}

/// Errors raised by packaging and manifest processing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScormError {
    /// The RTE API rejected a call.
    Api(ScormErrorCode),
    /// The manifest failed validation.
    InvalidManifest {
        /// Why the manifest is invalid.
        reason: String,
    },
    /// A file referenced by the manifest is missing from the package.
    MissingFile {
        /// The package-relative path.
        path: String,
    },
    /// The package is missing its `imsmanifest.xml`.
    MissingManifest,
    /// An XML error surfaced while reading a package.
    Xml(XmlError),
}

impl fmt::Display for ScormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScormError::Api(code) => write!(f, "scorm api error {code}"),
            ScormError::InvalidManifest { reason } => write!(f, "invalid manifest: {reason}"),
            ScormError::MissingFile { path } => {
                write!(f, "manifest references missing file {path:?}")
            }
            ScormError::MissingManifest => write!(f, "package has no imsmanifest.xml"),
            ScormError::Xml(err) => write!(f, "xml error: {err}"),
        }
    }
}

impl StdError for ScormError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ScormError::Xml(err) => Some(err),
            _ => None,
        }
    }
}

impl From<XmlError> for ScormError {
    fn from(err: XmlError) -> Self {
        ScormError::Xml(err)
    }
}

impl From<ScormErrorCode> for ScormError {
    fn from(code: ScormErrorCode) -> Self {
        ScormError::Api(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_scorm_12() {
        assert_eq!(ScormErrorCode::NoError.code_str(), "0");
        assert_eq!(ScormErrorCode::NotInitialized.code_str(), "301");
        assert_eq!(ScormErrorCode::ElementIsReadOnly.code_str(), "403");
        assert_eq!(ScormErrorCode::IncorrectDataType.code_str(), "405");
    }

    #[test]
    fn error_strings_are_standard() {
        assert_eq!(ScormErrorCode::NoError.error_string(), "No error");
        assert_eq!(
            ScormErrorCode::InvalidSetValue.error_string(),
            "Invalid set value, element is a keyword"
        );
    }

    #[test]
    fn display_combines_code_and_string() {
        assert_eq!(
            ScormErrorCode::NotInitialized.to_string(),
            "301 (Not initialized)"
        );
    }
}
