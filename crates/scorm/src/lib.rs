//! SCORM 1.2 support: content packaging and a run-time environment.
//!
//! §5.5 of the paper: "In SCORM standard, each file … has a descriptive
//! xml file with the same level in the course structure. In addition to
//! these descriptive xml files, a main description is an xml file called
//! `imsmanifest.xml`. … Thirdly, java script files to communicate with
//! API and learning management system are necessary." This crate builds
//! all three pieces natively:
//!
//! * [`Manifest`] — the `imsmanifest.xml` model with organizations,
//!   items, and resources, bound to XML through [`mine_xml`],
//! * [`ContentPackage`] — a full package: manifest, per-resource
//!   descriptor XML, problem/exam content files, and the API adapter
//!   stub; round-trips through an in-memory file map,
//! * [`ApiAdapter`]/[`CmiDataModel`] — the SCORM 1.2 RTE: the
//!   `LMSInitialize`/`LMSGetValue`/`LMSSetValue`/`LMSCommit`/`LMSFinish`
//!   state machine over the `cmi.*` data model with the standard error
//!   codes ("some API functions are used to set value (ex. learner
//!   record, learner progress, learner status), get value, error
//!   handler … and course beginning and ending").
//!
//! # Examples
//!
//! ```
//! use mine_scorm::{ApiAdapter, ScormErrorCode};
//!
//! let mut api = ApiAdapter::new();
//! assert_eq!(api.lms_initialize(""), "true");
//! api.lms_set_value("cmi.core.lesson_status", "completed").unwrap();
//! assert_eq!(api.lms_get_value("cmi.core.lesson_status").unwrap(), "completed");
//! assert_eq!(api.lms_finish(""), "true");
//! assert_eq!(api.last_error(), ScormErrorCode::NoError);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aicc;
pub mod error;
pub mod manifest;
pub mod package;
pub mod rte;

pub use aicc::AiccCourse;
pub use error::{ScormError, ScormErrorCode};
pub use manifest::{Manifest, OrgItem, Organization, Resource, ScormType};
pub use package::{ContentPackage, PackageBuilder};
pub use rte::{ApiAdapter, ApiState, CmiDataModel};
