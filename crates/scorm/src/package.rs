//! SCORM content packages (§5.5): "the service can package the original
//! problem and exam files to SCORM compatible files. Other instructors
//! may reuse the problem and exam files from SCORM compatible external
//! repository."
//!
//! A [`ContentPackage`] is an in-memory file tree: `imsmanifest.xml`, one
//! directory per problem holding `content.xml` (the problem body) and
//! `descriptor.xml` (its MINE metadata — "each file has a descriptive xml
//! file with the same level"), an `exam/` directory with the exam
//! structure, and `shared/api.js`, the API-adapter stub the paper ships
//! as JavaScript.

use std::collections::BTreeMap;

use mine_core::OptionKey;
use mine_itembank::{ChoiceOption, Exam, ExamEntry, MatchPairs, Problem, ProblemBody};
use mine_metadata::{DisplayOrder, MineMetadata};
use mine_xml::Element;

use crate::error::ScormError;
use crate::manifest::{Manifest, OrgItem, Organization, Resource, ScormType};

/// The JavaScript API-adapter stub included in every package. A real LMS
/// replaces this with its own adapter; the delivery crate talks to the
/// native [`crate::ApiAdapter`] instead.
pub const API_ADAPTER_JS: &str = "\
// SCORM 1.2 API adapter stub (see mine_scorm::ApiAdapter for the native implementation)\n\
var API = {\n\
  LMSInitialize: function (arg) { return 'true'; },\n\
  LMSFinish: function (arg) { return 'true'; },\n\
  LMSGetValue: function (element) { return ''; },\n\
  LMSSetValue: function (element, value) { return 'true'; },\n\
  LMSCommit: function (arg) { return 'true'; },\n\
  LMSGetLastError: function () { return '0'; },\n\
  LMSGetErrorString: function (code) { return 'No error'; },\n\
  LMSGetDiagnostic: function (code) { return ''; }\n\
};\n";

/// A complete SCORM package held in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentPackage {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// All files by package-relative path (including `imsmanifest.xml`).
    pub files: BTreeMap<String, String>,
}

impl ContentPackage {
    /// Starts building a package for one exam.
    #[must_use]
    pub fn builder(package_id: impl Into<String>) -> PackageBuilder {
        PackageBuilder {
            package_id: package_id.into(),
            exam: None,
            problems: Vec::new(),
        }
    }

    /// Reassembles a package from a file map (e.g. read back from an
    /// external repository).
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::MissingManifest`] without an
    /// `imsmanifest.xml`, [`ScormError::MissingFile`] when the manifest
    /// references absent files, and XML/manifest errors from parsing.
    pub fn from_files(files: BTreeMap<String, String>) -> Result<Self, ScormError> {
        let manifest_text = files
            .get("imsmanifest.xml")
            .ok_or(ScormError::MissingManifest)?;
        let manifest = Manifest::from_xml_str(manifest_text)?;
        manifest.validate()?;
        for path in manifest.referenced_files() {
            if !files.contains_key(path) {
                return Err(ScormError::MissingFile {
                    path: path.to_string(),
                });
            }
        }
        Ok(Self { manifest, files })
    }

    /// The file map, consumed (e.g. to hand to an uploader).
    #[must_use]
    pub fn into_files(self) -> BTreeMap<String, String> {
        self.files
    }

    /// Total size of all files in bytes.
    #[must_use]
    pub fn total_size(&self) -> usize {
        self.files.values().map(String::len).sum()
    }

    /// Writes the package as a real file tree rooted at `dir` (the
    /// on-disk form an LMS would zip and upload).
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] on filesystem failure.
    pub fn write_to_dir(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        for (path, contents) in &self.files {
            let full = dir.join(path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, contents)?;
        }
        Ok(())
    }

    /// Reads a package back from a file tree rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::MissingManifest`] when `imsmanifest.xml` is
    /// absent and any parse/validation error from the stored files;
    /// filesystem errors surface as [`ScormError::InvalidManifest`].
    pub fn read_from_dir(dir: impl AsRef<std::path::Path>) -> Result<Self, ScormError> {
        fn walk(
            root: &std::path::Path,
            dir: &std::path::Path,
            files: &mut BTreeMap<String, String>,
        ) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(root, &path, files)?;
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .expect("walk stays under root")
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    files.insert(rel, std::fs::read_to_string(&path)?);
                }
            }
            Ok(())
        }
        let root = dir.as_ref();
        let mut files = BTreeMap::new();
        walk(root, root, &mut files).map_err(|err| ScormError::InvalidManifest {
            reason: format!("reading package tree: {err}"),
        })?;
        Self::from_files(files)
    }

    /// Extracts every problem stored in the package, with metadata.
    ///
    /// # Errors
    ///
    /// Returns XML/manifest errors when a problem file fails to decode.
    pub fn extract_problems(&self) -> Result<Vec<Problem>, ScormError> {
        let mut problems = Vec::new();
        for resource in &self.manifest.resources {
            let Some(content_path) = resource
                .files
                .iter()
                .find(|f| f.ends_with("content.xml") && f.starts_with("problems/"))
            else {
                continue;
            };
            let content = self
                .files
                .get(content_path)
                .ok_or_else(|| ScormError::MissingFile {
                    path: content_path.clone(),
                })?;
            let doc = mine_xml::parse_document(content)?;
            let mut problem = problem_from_content_xml(&doc.root)?;
            let descriptor_path = content_path.replace("content.xml", "descriptor.xml");
            if let Some(descriptor) = self.files.get(&descriptor_path) {
                let meta = MineMetadata::from_xml_str(descriptor).map_err(|err| {
                    ScormError::InvalidManifest {
                        reason: format!("bad descriptor {descriptor_path}: {err}"),
                    }
                })?;
                *problem.metadata_mut() = meta;
            }
            problems.push(problem);
        }
        Ok(problems)
    }

    /// Extracts the packaged exam structure, if present.
    ///
    /// # Errors
    ///
    /// Returns XML errors when the exam file fails to decode.
    pub fn extract_exam(&self) -> Result<Option<Exam>, ScormError> {
        let Some(text) = self.files.get("exam/exam.xml") else {
            return Ok(None);
        };
        let doc = mine_xml::parse_document(text)?;
        exam_from_xml(&doc.root).map(Some)
    }
}

/// Builder assembling a [`ContentPackage`] (the §5 "SCORM format output
/// service").
#[derive(Debug, Clone)]
pub struct PackageBuilder {
    package_id: String,
    exam: Option<Exam>,
    problems: Vec<Problem>,
}

impl PackageBuilder {
    /// Sets the exam whose structure the package carries.
    #[must_use]
    pub fn exam(mut self, exam: Exam) -> Self {
        self.exam = Some(exam);
        self
    }

    /// Adds a problem (with its metadata descriptor).
    #[must_use]
    pub fn problem(mut self, problem: Problem) -> Self {
        self.problems.push(problem);
        self
    }

    /// Adds many problems.
    #[must_use]
    pub fn problems(mut self, problems: impl IntoIterator<Item = Problem>) -> Self {
        self.problems.extend(problems);
        self
    }

    /// Assembles the package.
    ///
    /// # Errors
    ///
    /// Returns [`ScormError::InvalidManifest`] when the generated
    /// manifest fails validation (e.g. duplicate problem ids).
    pub fn build(self) -> Result<ContentPackage, ScormError> {
        let mut files = BTreeMap::new();
        files.insert("shared/api.js".to_string(), API_ADAPTER_JS.to_string());

        let mut manifest = Manifest::new(&self.package_id);
        manifest
            .resources
            .push(Resource::new("RES-API", ScormType::Asset, "shared/api.js"));

        let mut items = Vec::new();
        for problem in &self.problems {
            let pid = problem.id().as_str();
            let dir = format!("problems/{pid}");
            let content_path = format!("{dir}/content.xml");
            let descriptor_path = format!("{dir}/descriptor.xml");
            files.insert(
                content_path.clone(),
                xml_doc(problem_to_content_xml(problem)),
            );
            files.insert(
                descriptor_path.clone(),
                xml_doc(problem.metadata().to_xml_element()),
            );
            let res_id = format!("RES-{pid}");
            let mut resource =
                Resource::new(&res_id, ScormType::Sco, &content_path).with_file(&descriptor_path);
            resource.dependencies.push("RES-API".into());
            manifest.resources.push(resource);
            items.push(OrgItem::leaf(
                format!("ITEM-{pid}"),
                problem.metadata().general.title.clone(),
                res_id,
            ));
        }

        let title = self
            .exam
            .as_ref()
            .map_or_else(|| self.package_id.clone(), |e| e.title().to_string());
        if let Some(exam) = &self.exam {
            files.insert("exam/exam.xml".to_string(), xml_doc(exam_to_xml(exam)));
            let res = Resource::new("RES-EXAM", ScormType::Asset, "exam/exam.xml");
            manifest.resources.push(res);
        }

        manifest = manifest.with_organization(Organization {
            identifier: "ORG-DEFAULT".into(),
            title,
            items: vec![OrgItem::folder("ITEM-ROOT", "Assessment", items)],
        });

        manifest.validate()?;
        files.insert("imsmanifest.xml".to_string(), manifest.to_xml_string());
        Ok(ContentPackage { manifest, files })
    }
}

fn xml_doc(root: Element) -> String {
    mine_xml::Document::new(root).to_xml_string()
}

/// Serializes a problem body (not its metadata) to `content.xml`.
#[must_use]
pub fn problem_to_content_xml(problem: &Problem) -> Element {
    let mut root = Element::new("problem")
        .with_attr("id", problem.id().as_str())
        .with_attr("points", problem.points().to_string());
    match problem.body() {
        ProblemBody::MultipleChoice {
            stem,
            options,
            correct,
        } => {
            root.set_attr("style", "multiple-choice");
            root.push(Element::new("stem").with_text(stem));
            for option in options {
                root.push(
                    Element::new("option")
                        .with_attr("key", option.key.letter().to_string())
                        .with_text(&option.text),
                );
            }
            root.push(Element::new("correct").with_text(correct.letter().to_string()));
        }
        ProblemBody::TrueFalse {
            stem,
            hint,
            correct,
        } => {
            root.set_attr("style", "true-false");
            root.push(Element::new("stem").with_text(stem));
            root.push(Element::new("hint").with_text(hint));
            root.push(Element::new("correct").with_text(correct.to_string()));
        }
        ProblemBody::Essay {
            question,
            hint,
            keywords,
        } => {
            root.set_attr("style", "essay");
            root.push(Element::new("question").with_text(question));
            root.push(Element::new("hint").with_text(hint));
            for keyword in keywords {
                root.push(Element::new("keyword").with_text(keyword));
            }
        }
        ProblemBody::Completion { stem, blanks } => {
            root.set_attr("style", "completion");
            root.push(Element::new("stem").with_text(stem));
            for blank in blanks {
                root.push(Element::new("blank").with_text(blank));
            }
        }
        ProblemBody::Match(pairs) => {
            root.set_attr("style", "match");
            for left in &pairs.left {
                root.push(Element::new("left").with_text(left));
            }
            for right in &pairs.right {
                root.push(Element::new("right").with_text(right));
            }
            for (i, &r) in pairs.correct.iter().enumerate() {
                root.push(
                    Element::new("pair")
                        .with_attr("left", i.to_string())
                        .with_attr("right", r.to_string()),
                );
            }
        }
        ProblemBody::Questionnaire { prompt, options } => {
            root.set_attr("style", "questionnaire");
            root.push(Element::new("prompt").with_text(prompt));
            for option in options {
                root.push(
                    Element::new("option")
                        .with_attr("key", option.key.letter().to_string())
                        .with_text(&option.text),
                );
            }
        }
    }
    root
}

/// Decodes a problem body from `content.xml`.
///
/// # Errors
///
/// Returns [`ScormError::InvalidManifest`] for schema violations.
pub fn problem_from_content_xml(root: &Element) -> Result<Problem, ScormError> {
    let bad = |reason: String| ScormError::InvalidManifest { reason };
    if root.name != "problem" {
        return Err(bad(format!("expected <problem>, got <{}>", root.name)));
    }
    let id = root
        .attr("id")
        .ok_or_else(|| bad("problem missing id".into()))?
        .to_string();
    let style = root.attr("style").unwrap_or_default();
    let options = || -> Result<Vec<ChoiceOption>, ScormError> {
        root.children_named("option")
            .map(|o| {
                let key = o
                    .attr("key")
                    .and_then(|k| k.chars().next())
                    .and_then(|c| OptionKey::from_letter(c).ok())
                    .ok_or_else(|| bad("option missing key".into()))?;
                Ok(ChoiceOption::new(key, o.text()))
            })
            .collect()
    };
    let body = match style {
        "multiple-choice" => {
            let correct = root
                .child_text("correct")
                .and_then(|c| c.trim().parse::<OptionKey>().ok())
                .ok_or_else(|| bad("choice problem missing correct key".into()))?;
            ProblemBody::MultipleChoice {
                stem: root.child_text("stem").unwrap_or_default(),
                options: options()?,
                correct,
            }
        }
        "true-false" => ProblemBody::TrueFalse {
            stem: root.child_text("stem").unwrap_or_default(),
            hint: root.child_text("hint").unwrap_or_default(),
            correct: root.child_text("correct").unwrap_or_default().trim() == "true",
        },
        "essay" => ProblemBody::Essay {
            question: root.child_text("question").unwrap_or_default(),
            hint: root.child_text("hint").unwrap_or_default(),
            keywords: root.children_named("keyword").map(Element::text).collect(),
        },
        "completion" => ProblemBody::Completion {
            stem: root.child_text("stem").unwrap_or_default(),
            blanks: root.children_named("blank").map(Element::text).collect(),
        },
        "match" => {
            let mut pairs: Vec<(usize, usize)> = root
                .children_named("pair")
                .filter_map(|p| {
                    Some((
                        p.attr("left")?.parse().ok()?,
                        p.attr("right")?.parse().ok()?,
                    ))
                })
                .collect();
            pairs.sort_unstable();
            ProblemBody::Match(MatchPairs {
                left: root.children_named("left").map(Element::text).collect(),
                right: root.children_named("right").map(Element::text).collect(),
                correct: pairs.into_iter().map(|(_, r)| r).collect(),
            })
        }
        "questionnaire" => ProblemBody::Questionnaire {
            prompt: root.child_text("prompt").unwrap_or_default(),
            options: options()?,
        },
        other => return Err(bad(format!("unknown problem style {other:?}"))),
    };
    let mut problem =
        Problem::new(id, body).map_err(|err| bad(format!("invalid problem: {err}")))?;
    if let Some(points) = root.attr("points").and_then(|p| p.parse::<f64>().ok()) {
        problem.set_points(points);
    }
    Ok(problem)
}

fn exam_to_xml(exam: &Exam) -> Element {
    let mut root = Element::new("exam")
        .with_attr("id", exam.id().as_str())
        .with_attr("title", exam.title())
        .with_attr("displayOrder", exam.display_order().keyword());
    if let Some(limit) = exam.meta().test_time {
        root.set_attr("testTime", limit.as_secs_f64().to_string());
    }
    for group in exam.groups() {
        root.push(
            Element::new("group")
                .with_attr("id", group.id.as_str())
                .with_attr("columns", group.style.columns.to_string())
                .with_attr("shuffle", group.style.shuffle_within.to_string())
                .with_attr("pageBreak", group.style.page_break.to_string())
                .with_attr("heading", &group.style.heading),
        );
    }
    for entry in exam.entries() {
        let mut el = Element::new("entry").with_attr("problem", entry.problem.as_str());
        if let Some(points) = entry.points {
            el.set_attr("points", points.to_string());
        }
        if let Some(group) = &entry.group {
            el.set_attr("group", group.as_str());
        }
        root.push(el);
    }
    root
}

fn exam_from_xml(root: &Element) -> Result<Exam, ScormError> {
    let bad = |reason: String| ScormError::InvalidManifest { reason };
    if root.name != "exam" {
        return Err(bad(format!("expected <exam>, got <{}>", root.name)));
    }
    let id = root
        .attr("id")
        .ok_or_else(|| bad("exam missing id".into()))?;
    let mut builder = Exam::builder(id)
        .map_err(|err| bad(err.to_string()))?
        .title(root.attr("title").unwrap_or_default());
    if let Some(order) = root
        .attr("displayOrder")
        .and_then(DisplayOrder::from_keyword)
    {
        builder = builder.display_order(order);
    }
    if let Some(limit) = root.attr("testTime").and_then(|t| t.parse::<f64>().ok()) {
        builder = builder.test_time(std::time::Duration::from_secs_f64(limit));
    }
    for group in root.children_named("group") {
        let gid = group
            .attr("id")
            .ok_or_else(|| bad("group missing id".into()))?
            .parse()
            .map_err(|_| bad("bad group id".into()))?;
        builder = builder.group(
            mine_itembank::PresentationGroup::new(gid).with_style(mine_itembank::GroupStyle {
                columns: group
                    .attr("columns")
                    .and_then(|c| c.parse().ok())
                    .unwrap_or(1),
                shuffle_within: group.attr("shuffle") == Some("true"),
                page_break: group.attr("pageBreak") == Some("true"),
                heading: group.attr("heading").unwrap_or_default().to_string(),
            }),
        );
    }
    for entry in root.children_named("entry") {
        let pid = entry
            .attr("problem")
            .ok_or_else(|| bad("entry missing problem".into()))?
            .parse()
            .map_err(|_| bad("bad problem id".into()))?;
        let mut exam_entry = ExamEntry::new(pid);
        if let Some(points) = entry.attr("points").and_then(|p| p.parse().ok()) {
            exam_entry.points = Some(points);
        }
        if let Some(group) = entry.attr("group") {
            exam_entry.group = Some(group.parse().map_err(|_| bad("bad group ref".into()))?);
        }
        builder = builder.entry_with(exam_entry);
    }
    builder.build().map_err(|err| bad(err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_itembank::{GroupStyle, PresentationGroup};

    fn problems() -> Vec<Problem> {
        vec![
            Problem::multiple_choice(
                "q1",
                "Which is the transport layer protocol?",
                [
                    ChoiceOption::new(OptionKey::A, "TCP"),
                    ChoiceOption::new(OptionKey::B, "IP"),
                    ChoiceOption::new(OptionKey::C, "Ethernet"),
                ],
                OptionKey::A,
            )
            .unwrap()
            .with_subject("networking"),
            Problem::true_false("q2", "UDP guarantees delivery.", false).unwrap(),
            Problem::completion("q3", "HTTP runs over ___.", vec!["tcp".to_string()]).unwrap(),
        ]
    }

    fn exam() -> Exam {
        Exam::builder("quiz-1")
            .unwrap()
            .title("Networking Quiz")
            .group(
                PresentationGroup::new("part1".parse().unwrap()).with_style(GroupStyle {
                    columns: 2,
                    shuffle_within: true,
                    page_break: false,
                    heading: "Part I".into(),
                }),
            )
            .entry_with(ExamEntry::new("q1".parse().unwrap()).in_group("part1".parse().unwrap()))
            .entry_with(ExamEntry::new("q2".parse().unwrap()).worth(2.0))
            .entry("q3".parse().unwrap())
            .test_time(std::time::Duration::from_secs(1200))
            .build()
            .unwrap()
    }

    fn package() -> ContentPackage {
        ContentPackage::builder("PKG-QUIZ-1")
            .exam(exam())
            .problems(problems())
            .build()
            .unwrap()
    }

    #[test]
    fn build_produces_expected_layout() {
        let pkg = package();
        assert!(pkg.files.contains_key("imsmanifest.xml"));
        assert!(pkg.files.contains_key("shared/api.js"));
        assert!(pkg.files.contains_key("problems/q1/content.xml"));
        assert!(pkg.files.contains_key("problems/q1/descriptor.xml"));
        assert!(pkg.files.contains_key("exam/exam.xml"));
        assert!(pkg.total_size() > 0);
        pkg.manifest.validate().unwrap();
    }

    #[test]
    fn package_round_trips_through_files() {
        let pkg = package();
        let files = pkg.clone().into_files();
        let back = ContentPackage::from_files(files).unwrap();
        assert_eq!(back.manifest, pkg.manifest);
    }

    #[test]
    fn extract_problems_round_trips_bodies_and_metadata() {
        let pkg = package();
        let extracted = pkg.extract_problems().unwrap();
        assert_eq!(extracted.len(), 3);
        let original = problems();
        for problem in &original {
            let found = extracted
                .iter()
                .find(|p| p.id() == problem.id())
                .unwrap_or_else(|| panic!("missing {}", problem.id()));
            assert_eq!(found.body(), problem.body());
            assert_eq!(found.metadata(), problem.metadata());
        }
    }

    #[test]
    fn extract_exam_round_trips() {
        let pkg = package();
        let back = pkg.extract_exam().unwrap().unwrap();
        assert_eq!(back, exam());
    }

    #[test]
    fn package_without_exam_extracts_none() {
        let pkg = ContentPackage::builder("PKG")
            .problems(problems())
            .build()
            .unwrap();
        assert!(pkg.extract_exam().unwrap().is_none());
    }

    #[test]
    fn disk_round_trip() {
        let pkg = package();
        let dir = std::env::temp_dir().join(format!("mine-scorm-pkg-{}", std::process::id()));
        pkg.write_to_dir(&dir).unwrap();
        assert!(dir.join("imsmanifest.xml").is_file());
        assert!(dir.join("problems/q1/content.xml").is_file());
        let back = ContentPackage::read_from_dir(&dir).unwrap();
        assert_eq!(back, pkg);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_from_missing_dir_errors() {
        let missing = std::env::temp_dir().join("mine-scorm-does-not-exist");
        assert!(ContentPackage::read_from_dir(&missing).is_err());
    }

    #[test]
    fn from_files_requires_manifest() {
        let err = ContentPackage::from_files(BTreeMap::new()).unwrap_err();
        assert!(matches!(err, ScormError::MissingManifest));
    }

    #[test]
    fn from_files_detects_missing_referenced_file() {
        let pkg = package();
        let mut files = pkg.into_files();
        files.remove("problems/q2/content.xml");
        let err = ContentPackage::from_files(files).unwrap_err();
        assert!(matches!(err, ScormError::MissingFile { .. }));
    }

    #[test]
    fn from_files_rejects_corrupt_manifest() {
        let mut files = BTreeMap::new();
        files.insert("imsmanifest.xml".to_string(), "<broken".to_string());
        assert!(matches!(
            ContentPackage::from_files(files),
            Err(ScormError::Xml(_))
        ));
    }

    #[test]
    fn all_problem_styles_round_trip_content_xml() {
        let all = vec![
            problems().remove(0),
            Problem::essay("e1", "Discuss.").unwrap(),
            Problem::new(
                "e2",
                ProblemBody::Essay {
                    question: "Explain AIMD.".into(),
                    hint: "think additive".into(),
                    keywords: vec!["additive".into(), "multiplicative".into()],
                },
            )
            .unwrap(),
            Problem::match_items(
                "m1",
                MatchPairs {
                    left: vec!["TCP".into(), "IP".into()],
                    right: vec!["L3".into(), "L4".into()],
                    correct: vec![1, 0],
                },
            )
            .unwrap(),
            Problem::questionnaire(
                "s1",
                "Rate the course.",
                OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("{k}"))),
            )
            .unwrap(),
            Problem::completion(
                "c1",
                "Fill ___ and ___",
                vec!["a".to_string(), "b".to_string()],
            )
            .unwrap()
            .with_points(3.0),
        ];
        for problem in all {
            let xml = problem_to_content_xml(&problem);
            let text = mine_xml::Document::new(xml).to_xml_string();
            let doc = mine_xml::parse_document(&text).unwrap();
            let back = problem_from_content_xml(&doc.root).unwrap();
            assert_eq!(back.body(), problem.body(), "style {:?}", problem.style());
            assert_eq!(back.points(), problem.points());
        }
    }

    #[test]
    fn content_xml_rejects_unknown_style() {
        let el = Element::new("problem")
            .with_attr("id", "x")
            .with_attr("style", "hologram");
        assert!(problem_from_content_xml(&el).is_err());
        let el = Element::new("notproblem");
        assert!(problem_from_content_xml(&el).is_err());
    }

    #[test]
    fn duplicate_problem_ids_fail_manifest_validation() {
        let p = problems().remove(0);
        let result = ContentPackage::builder("PKG")
            .problem(p.clone())
            .problem(p)
            .build();
        assert!(result.is_err());
    }
}
