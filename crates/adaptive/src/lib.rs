//! Adaptive testing — the extension the paper's conclusion promises.
//!
//! "In the near future, we will add the adaptive test algorithm and
//! assessment feedback in our assessment system" (§6). This crate
//! delivers both on top of the item bank and the simulator's IRT model:
//!
//! * [`estimate`] — ability estimation from response patterns
//!   (expected-a-posteriori over a quadrature grid, plus a
//!   Newton–Raphson maximum-likelihood refinement),
//! * [`select`] — item selection: maximum Fisher information at the
//!   current ability estimate, with a random baseline for the ablation
//!   bench,
//! * [`driver`] — [`AdaptiveTest`], the select → answer → re-estimate
//!   loop with stopping rules (standard-error target or item budget),
//! * [`feedback`] — per-student assessment feedback: estimated ability,
//!   weak subjects, and the cognition levels to revisit.
//!
//! # Examples
//!
//! ```
//! use mine_adaptive::{AdaptiveTest, ItemPool, StopRule};
//! use mine_simulator::ItemParams;
//!
//! let mut pool = ItemPool::new();
//! for i in 0..30 {
//!     let b = (i as f64 - 15.0) / 5.0;
//!     pool.add(format!("q{i}").parse()?, ItemParams::new(1.2, b, 0.0));
//! }
//! let mut test = AdaptiveTest::new(pool, StopRule::default());
//! // A strong student: answers correctly whenever b < 1.0.
//! while let Some((item, params)) = test.next_item() {
//!     let correct = params.b < 1.0;
//!     test.record(item, correct)?;
//! }
//! assert!(test.estimate().theta > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod estimate;
pub mod feedback;
pub mod options;
pub mod select;

pub use driver::{AdaptiveError, AdaptiveTest, ItemPool, StopRule};
pub use estimate::{eap_estimate, mle_estimate, AbilityEstimate};
pub use feedback::{generate_feedback, StudentFeedback};
pub use options::{AdaptiveOptions, InvalidAdaptiveOptions};
pub use select::{max_information, random_item, SelectionStrategy};
