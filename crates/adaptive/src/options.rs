//! Typed validation of adaptive sitting parameters.
//!
//! Mirrors `DeliveryOptions::validate` in `mine-delivery`: a served
//! adaptive sitting is configured by client-supplied numbers, and every
//! rejection names the offending field so an HTTP layer can surface a
//! 422 with a precise error instead of a generic "bad request".

use std::error::Error as StdError;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::driver::StopRule;

/// Parameters of a served adaptive (CAT) sitting.
///
/// `seed` does not influence maximum-information selection (which is
/// deterministic); it distinguishes repeat sittings by the same student
/// in the session identifier, exactly as fixed-form delivery does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOptions {
    /// Seed folded into the session identifier.
    pub seed: u64,
    /// Never ask fewer than this many items.
    pub min_items: usize,
    /// Never ask more than this many items.
    pub max_items: usize,
    /// Stop once the ability standard error drops to this value.
    pub se_threshold: f64,
}

impl AdaptiveOptions {
    /// Default stop parameters for a bank of `bank_size` calibrated
    /// items: ask 1–20 items (clamped to the bank), SE target 0.35.
    #[must_use]
    pub fn for_bank(bank_size: usize) -> Self {
        Self {
            seed: 0,
            min_items: 1,
            max_items: bank_size.clamp(1, 20),
            se_threshold: 0.35,
        }
    }

    /// Validates the parameters against a bank of `bank_size` calibrated
    /// items.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAdaptiveOptions`] naming the first offending
    /// field: `se_threshold` must be finite and positive, `max_items`
    /// must lie in `1..=bank_size`, and `min_items` must not exceed
    /// `max_items`.
    pub fn validate(&self, bank_size: usize) -> Result<(), InvalidAdaptiveOptions> {
        if !(self.se_threshold.is_finite() && self.se_threshold > 0.0) {
            return Err(InvalidAdaptiveOptions {
                field: "se_threshold",
                reason: format!(
                    "se_threshold must be finite and > 0, got {}",
                    self.se_threshold
                ),
            });
        }
        if self.max_items == 0 || self.max_items > bank_size {
            return Err(InvalidAdaptiveOptions {
                field: "max_items",
                reason: format!(
                    "max_items must be in 1..={bank_size} (the calibrated bank size), got {}",
                    self.max_items
                ),
            });
        }
        if self.min_items > self.max_items {
            return Err(InvalidAdaptiveOptions {
                field: "min_items",
                reason: format!(
                    "min_items ({}) must not exceed max_items ({})",
                    self.min_items, self.max_items
                ),
            });
        }
        Ok(())
    }

    /// The driver stopping rule these options describe.
    #[must_use]
    pub fn stop_rule(&self) -> StopRule {
        StopRule {
            min_items: self.min_items,
            max_items: self.max_items,
            se_target: self.se_threshold,
        }
    }
}

/// A rejected adaptive parameter, naming the field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidAdaptiveOptions {
    /// The offending field (`"se_threshold"`, `"max_items"`, …).
    pub field: &'static str,
    /// Human-readable explanation including the rejected value.
    pub reason: String,
}

impl fmt::Display for InvalidAdaptiveOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid adaptive option {}: {}", self.field, self.reason)
    }
}

impl StdError for InvalidAdaptiveOptions {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_for_any_nonempty_bank() {
        for bank in [1, 2, 5, 20, 500] {
            let options = AdaptiveOptions::for_bank(bank);
            options.validate(bank).unwrap();
            assert!(options.max_items <= bank);
        }
    }

    #[test]
    fn rejects_bad_se_threshold() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let options = AdaptiveOptions {
                se_threshold: bad,
                ..AdaptiveOptions::for_bank(10)
            };
            let err = options.validate(10).unwrap_err();
            assert_eq!(err.field, "se_threshold", "{bad}");
        }
    }

    #[test]
    fn rejects_max_items_outside_bank() {
        for bad in [0, 11, usize::MAX] {
            let options = AdaptiveOptions {
                max_items: bad,
                ..AdaptiveOptions::for_bank(10)
            };
            let err = options.validate(10).unwrap_err();
            assert_eq!(err.field, "max_items", "{bad}");
        }
    }

    #[test]
    fn rejects_min_items_above_max() {
        let options = AdaptiveOptions {
            min_items: 9,
            max_items: 4,
            ..AdaptiveOptions::for_bank(10)
        };
        let err = options.validate(10).unwrap_err();
        assert_eq!(err.field, "min_items");
    }

    #[test]
    fn stop_rule_maps_fields() {
        let options = AdaptiveOptions {
            seed: 7,
            min_items: 2,
            max_items: 9,
            se_threshold: 0.25,
        };
        let rule = options.stop_rule();
        assert_eq!(rule.min_items, 2);
        assert_eq!(rule.max_items, 9);
        assert!((rule.se_target - 0.25).abs() < f64::EPSILON);
    }
}
