//! The adaptive test driver: select → answer → re-estimate → stop.

use std::collections::HashSet;
use std::error::Error as StdError;
use std::fmt;

use mine_core::ProblemId;
use mine_simulator::ItemParams;
use serde::{Deserialize, Serialize};

use crate::estimate::{eap_estimate, AbilityEstimate};
use crate::select::{max_information, random_item, randomesque, SelectionStrategy};

/// The calibrated item pool an adaptive test draws from.
#[derive(Debug, Clone, Default)]
pub struct ItemPool {
    items: Vec<(ProblemId, ItemParams)>,
    subjects: std::collections::BTreeMap<ProblemId, String>,
}

impl ItemPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a calibrated item.
    pub fn add(&mut self, id: ProblemId, params: ItemParams) {
        self.items.push((id, params));
    }

    /// Adds a calibrated item tagged with its subject (enables
    /// content-balanced selection).
    pub fn add_with_subject(
        &mut self,
        id: ProblemId,
        params: ItemParams,
        subject: impl Into<String>,
    ) {
        self.subjects.insert(id.clone(), subject.into());
        self.items.push((id, params));
    }

    /// The subject an item was tagged with, if any.
    #[must_use]
    pub fn subject_of(&self, id: &ProblemId) -> Option<&str> {
        self.subjects.get(id).map(String::as_str)
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items as a slice.
    #[must_use]
    pub fn items(&self) -> &[(ProblemId, ItemParams)] {
        &self.items
    }

    /// Looks up an item's parameters.
    #[must_use]
    pub fn params(&self, id: &ProblemId) -> Option<ItemParams> {
        self.items
            .iter()
            .find(|(item, _)| item == id)
            .map(|(_, p)| *p)
    }
}

impl FromIterator<(ProblemId, ItemParams)> for ItemPool {
    fn from_iter<I: IntoIterator<Item = (ProblemId, ItemParams)>>(iter: I) -> Self {
        Self {
            items: iter.into_iter().collect(),
            subjects: std::collections::BTreeMap::new(),
        }
    }
}

/// When the adaptive test stops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopRule {
    /// Never ask fewer than this many items.
    pub min_items: usize,
    /// Never ask more than this many items.
    pub max_items: usize,
    /// Stop once the ability standard error drops to this value.
    pub se_target: f64,
}

impl Default for StopRule {
    /// 5–20 items, SE target 0.35.
    fn default() -> Self {
        Self {
            min_items: 5,
            max_items: 20,
            se_target: 0.35,
        }
    }
}

/// Errors raised by the adaptive driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdaptiveError {
    /// `record` was called for an item that was not the pending one.
    UnexpectedItem {
        /// The item recorded.
        got: String,
    },
    /// `record` was called with no item pending.
    NothingPending,
}

impl fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveError::UnexpectedItem { got } => {
                write!(
                    f,
                    "recorded answer for {got:?} which is not the pending item"
                )
            }
            AdaptiveError::NothingPending => write!(f, "no item is pending an answer"),
        }
    }
}

impl StdError for AdaptiveError {}

/// One adaptive sitting.
///
/// Call [`AdaptiveTest::next_item`] to obtain the next question, then
/// [`AdaptiveTest::record`] with the graded outcome; repeat until
/// `next_item` returns `None`.
#[derive(Debug, Clone)]
pub struct AdaptiveTest {
    pool: ItemPool,
    rule: StopRule,
    strategy: SelectionStrategy,
    /// Content quotas: subject → target count across the sitting.
    balance: Option<std::collections::BTreeMap<String, usize>>,
    used: HashSet<ProblemId>,
    pending: Option<ProblemId>,
    responses: Vec<(ItemParams, bool)>,
    administered: Vec<(ProblemId, bool)>,
    estimate: AbilityEstimate,
}

impl AdaptiveTest {
    /// Starts a sitting with max-information selection.
    #[must_use]
    pub fn new(pool: ItemPool, rule: StopRule) -> Self {
        Self::with_strategy(pool, rule, SelectionStrategy::MaxInformation)
    }

    /// Starts a sitting with an explicit selection strategy.
    #[must_use]
    pub fn with_strategy(pool: ItemPool, rule: StopRule, strategy: SelectionStrategy) -> Self {
        Self {
            pool,
            rule,
            strategy,
            balance: None,
            used: HashSet::new(),
            pending: None,
            responses: Vec::new(),
            administered: Vec::new(),
            estimate: AbilityEstimate::default(),
        }
    }

    /// Enables content balancing: selection follows the subject with the
    /// largest remaining quota deficit (items must be tagged via
    /// [`ItemPool::add_with_subject`]); once every quota is met, or when
    /// the needy subject has no unused items, selection falls back to
    /// the whole pool.
    #[must_use]
    pub fn with_balancing(mut self, quotas: std::collections::BTreeMap<String, usize>) -> Self {
        self.balance = Some(quotas);
        self
    }

    /// The subject with the largest unmet quota that still has unused
    /// items, if balancing is enabled.
    fn needy_subject(&self) -> Option<&str> {
        let quotas = self.balance.as_ref()?;
        let mut administered: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for (id, _) in &self.administered {
            if let Some(subject) = self.pool.subject_of(id) {
                *administered.entry(subject).or_insert(0) += 1;
            }
        }
        quotas
            .iter()
            .filter_map(|(subject, &quota)| {
                let given = administered.get(subject.as_str()).copied().unwrap_or(0);
                let deficit = quota.checked_sub(given).filter(|d| *d > 0)?;
                let has_unused = self.pool.items().iter().any(|(id, _)| {
                    !self.used.contains(id) && self.pool.subject_of(id) == Some(subject)
                });
                has_unused.then_some((deficit, subject.as_str()))
            })
            .max_by_key(|(deficit, _)| *deficit)
            .map(|(_, subject)| subject)
    }

    /// The current ability estimate.
    #[must_use]
    pub fn estimate(&self) -> AbilityEstimate {
        self.estimate
    }

    /// Items administered so far with their outcomes.
    #[must_use]
    pub fn administered(&self) -> &[(ProblemId, bool)] {
        &self.administered
    }

    /// Whether the stopping rule is satisfied.
    #[must_use]
    pub fn is_done(&self) -> bool {
        let asked = self.administered.len();
        if asked >= self.rule.max_items {
            return true;
        }
        if asked >= self.pool.len() {
            return true;
        }
        asked >= self.rule.min_items && self.estimate.se <= self.rule.se_target
    }

    /// Selects (and remembers) the next item, or `None` when the test is
    /// over. Calling again without recording returns the same item.
    pub fn next_item(&mut self) -> Option<(ProblemId, ItemParams)> {
        if let Some(pending) = &self.pending {
            let params = self.pool.params(pending).expect("pending item is pooled");
            return Some((pending.clone(), params));
        }
        if self.is_done() {
            return None;
        }
        // Content balancing narrows the candidate set to the needy
        // subject before the strategy picks within it.
        let restricted: Option<Vec<(ProblemId, ItemParams)>> =
            self.needy_subject().map(|subject| {
                self.pool
                    .items()
                    .iter()
                    .filter(|(id, _)| self.pool.subject_of(id) == Some(subject))
                    .cloned()
                    .collect()
            });
        let candidates: &[(ProblemId, ItemParams)] = match &restricted {
            Some(items) => items,
            None => self.pool.items(),
        };
        let picked = match self.strategy {
            SelectionStrategy::MaxInformation => {
                max_information(candidates, &self.used, self.estimate.theta)
            }
            SelectionStrategy::Random { seed } => {
                random_item(candidates, &self.used, seed, self.administered.len())
            }
            SelectionStrategy::Randomesque { top_k, seed } => randomesque(
                candidates,
                &self.used,
                self.estimate.theta,
                top_k,
                seed,
                self.administered.len(),
            ),
        }?;
        let (id, params) = picked.clone();
        self.pending = Some(id.clone());
        Some((id, params))
    }

    /// Records the graded outcome of the pending item and re-estimates
    /// ability.
    ///
    /// # Errors
    ///
    /// * [`AdaptiveError::NothingPending`] when no item was selected,
    /// * [`AdaptiveError::UnexpectedItem`] when `item` differs from the
    ///   pending selection.
    pub fn record(&mut self, item: ProblemId, correct: bool) -> Result<(), AdaptiveError> {
        match &self.pending {
            None => return Err(AdaptiveError::NothingPending),
            Some(pending) if pending != &item => {
                return Err(AdaptiveError::UnexpectedItem {
                    got: item.to_string(),
                })
            }
            Some(_) => {}
        }
        let params = self.pool.params(&item).expect("pending item is pooled");
        self.pending = None;
        self.used.insert(item.clone());
        self.responses.push((params, correct));
        self.administered.push((item, correct));
        self.estimate = eap_estimate(&self.responses, 0.0, 1.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ItemPool {
        (0..n)
            .map(|i| {
                (
                    format!("q{i:02}").parse().unwrap(),
                    ItemParams::new(1.5, (i as f64 / n as f64) * 6.0 - 3.0, 0.0),
                )
            })
            .collect()
    }

    /// Runs a deterministic student of true ability θ through the test.
    fn run(theta: f64, mut test: AdaptiveTest) -> AdaptiveTest {
        while let Some((item, params)) = test.next_item() {
            let correct = params.p_correct(theta) > 0.5;
            test.record(item, correct).unwrap();
        }
        test
    }

    #[test]
    fn converges_toward_true_ability() {
        let test = run(1.2, AdaptiveTest::new(pool(60), StopRule::default()));
        let estimate = test.estimate();
        assert!(
            (estimate.theta - 1.2).abs() < 0.6,
            "θ̂ = {} for θ = 1.2",
            estimate.theta
        );
        assert!(estimate.se <= 0.4, "se = {}", estimate.se);
    }

    #[test]
    fn stops_within_budget() {
        let rule = StopRule {
            min_items: 3,
            max_items: 8,
            se_target: 0.0, // never reached → max_items governs
        };
        let test = run(0.0, AdaptiveTest::new(pool(60), rule));
        assert_eq!(test.administered().len(), 8);
    }

    #[test]
    fn stops_early_when_se_target_met() {
        let rule = StopRule {
            min_items: 3,
            max_items: 50,
            se_target: 0.5,
        };
        let test = run(0.0, AdaptiveTest::new(pool(60), rule));
        assert!(test.administered().len() < 50);
        assert!(test.estimate().se <= 0.5);
        assert!(test.administered().len() >= 3);
    }

    #[test]
    fn exhausting_a_small_pool_ends_the_test() {
        let test = run(0.0, AdaptiveTest::new(pool(4), StopRule::default()));
        assert_eq!(test.administered().len(), 4);
    }

    #[test]
    fn next_item_is_idempotent_until_recorded() {
        let mut test = AdaptiveTest::new(pool(10), StopRule::default());
        let (a, _) = test.next_item().unwrap();
        let (b, _) = test.next_item().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn record_requires_the_pending_item() {
        let mut test = AdaptiveTest::new(pool(10), StopRule::default());
        assert_eq!(
            test.record("q00".parse().unwrap(), true).unwrap_err(),
            AdaptiveError::NothingPending
        );
        let (item, _) = test.next_item().unwrap();
        let wrong: ProblemId = "zz".parse().unwrap();
        assert!(matches!(
            test.record(wrong, true).unwrap_err(),
            AdaptiveError::UnexpectedItem { .. }
        ));
        test.record(item, true).unwrap();
    }

    #[test]
    fn no_item_repeats() {
        let test = run(0.3, AdaptiveTest::new(pool(30), StopRule::default()));
        let ids: HashSet<&ProblemId> = test.administered().iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), test.administered().len());
    }

    #[test]
    fn content_balancing_meets_quotas() {
        let mut pool = ItemPool::new();
        for i in 0..20 {
            let subject = if i % 2 == 0 { "algorithms" } else { "systems" };
            pool.add_with_subject(
                format!("q{i:02}").parse().unwrap(),
                ItemParams::new(1.2, (i as f64 - 10.0) / 4.0, 0.0),
                subject,
            );
        }
        let quotas: std::collections::BTreeMap<String, usize> =
            [("algorithms".to_string(), 4), ("systems".to_string(), 2)]
                .into_iter()
                .collect();
        let rule = StopRule {
            min_items: 6,
            max_items: 6,
            se_target: 0.0,
        };
        let test = run(
            0.0,
            AdaptiveTest::new(pool.clone(), rule).with_balancing(quotas),
        );
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for (id, _) in test.administered() {
            *counts.entry(pool.subject_of(id).unwrap()).or_insert(0) += 1;
        }
        assert_eq!(counts["algorithms"], 4);
        assert_eq!(counts["systems"], 2);
    }

    #[test]
    fn balancing_falls_back_when_quota_exceeds_pool() {
        let mut pool = ItemPool::new();
        pool.add_with_subject("only".parse().unwrap(), ItemParams::default(), "rare");
        for i in 0..8 {
            pool.add_with_subject(
                format!("c{i}").parse().unwrap(),
                ItemParams::default(),
                "common",
            );
        }
        let quotas: std::collections::BTreeMap<String, usize> =
            [("rare".to_string(), 5)].into_iter().collect();
        let rule = StopRule {
            min_items: 4,
            max_items: 4,
            se_target: 0.0,
        };
        let test = run(0.0, AdaptiveTest::new(pool, rule).with_balancing(quotas));
        // The single rare item is given, then selection falls back.
        assert_eq!(test.administered().len(), 4);
        assert!(test
            .administered()
            .iter()
            .any(|(id, _)| id.as_str() == "only"));
    }

    #[test]
    fn randomesque_spreads_first_items_across_examinees() {
        // With pure max-information every examinee starts on the same
        // item; randomesque top-5 spreads the opening item.
        let rule = StopRule {
            min_items: 3,
            max_items: 3,
            se_target: 0.0,
        };
        let mut max_info_firsts = HashSet::new();
        let mut randomesque_firsts = HashSet::new();
        for examinee in 0..10u64 {
            let mut a = AdaptiveTest::new(pool(40), rule);
            let (first, _) = a.next_item().unwrap();
            max_info_firsts.insert(first);
            let mut b = AdaptiveTest::with_strategy(
                pool(40),
                rule,
                SelectionStrategy::Randomesque {
                    top_k: 5,
                    seed: examinee,
                },
            );
            let (first, _) = b.next_item().unwrap();
            randomesque_firsts.insert(first);
        }
        assert_eq!(max_info_firsts.len(), 1);
        assert!(randomesque_firsts.len() > 1);
    }

    #[test]
    fn randomesque_still_converges() {
        let test = run(
            1.0,
            AdaptiveTest::with_strategy(
                pool(60),
                StopRule::default(),
                SelectionStrategy::Randomesque { top_k: 4, seed: 3 },
            ),
        );
        assert!((test.estimate().theta - 1.0).abs() < 0.8);
    }

    #[test]
    fn max_information_beats_random_on_se() {
        // At the same item budget the adaptive rule should measure at
        // least as precisely as random selection (ablation A3).
        let rule = StopRule {
            min_items: 12,
            max_items: 12,
            se_target: 0.0,
        };
        let adaptive = run(1.0, AdaptiveTest::new(pool(60), rule));
        let random = run(
            1.0,
            AdaptiveTest::with_strategy(pool(60), rule, SelectionStrategy::Random { seed: 5 }),
        );
        assert!(
            adaptive.estimate().se <= random.estimate().se + 1e-9,
            "adaptive se {} vs random se {}",
            adaptive.estimate().se,
            random.estimate().se
        );
    }
}
