//! Assessment feedback (§6 future work).
//!
//! "Assessment responses to the learners in terms of what is the major
//! and most important part in each subject and course" (§1). Given a
//! graded [`StudentRecord`] and the exam's problems, this module builds
//! the learner-facing summary: estimated ability, the subjects they
//! struggled with, and the Bloom levels to revisit.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mine_core::{CognitionLevel, StudentId, StudentRecord};
use mine_itembank::Problem;

use crate::driver::ItemPool;
use crate::estimate::{eap_estimate, AbilityEstimate};
use mine_simulator::ItemParams;

/// Feedback for one learner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudentFeedback {
    /// The learner.
    pub student: StudentId,
    /// Estimated ability θ.
    pub theta: f64,
    /// Standard error of the estimate.
    pub se: f64,
    /// Per subject: `(correct, attempted)`.
    pub subject_breakdown: BTreeMap<String, (usize, usize)>,
    /// Subjects with below-half accuracy, worst first.
    pub weak_subjects: Vec<String>,
    /// Bloom levels with below-half accuracy, shallowest first.
    pub weak_levels: Vec<CognitionLevel>,
}

impl StudentFeedback {
    /// Renders the feedback as learner-facing text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "Feedback for {} — estimated ability {:+.2} (±{:.2})\n",
            self.student, self.theta, self.se
        );
        for (subject, (correct, attempted)) in &self.subject_breakdown {
            out.push_str(&format!("  {subject}: {correct}/{attempted} correct\n"));
        }
        if self.weak_subjects.is_empty() {
            out.push_str("  no weak subjects — well done\n");
        } else {
            out.push_str(&format!(
                "  review these subjects: {}\n",
                self.weak_subjects.join(", ")
            ));
        }
        if !self.weak_levels.is_empty() {
            let levels: Vec<&str> = self.weak_levels.iter().map(|l| l.name()).collect();
            out.push_str(&format!("  practice at levels: {}\n", levels.join(", ")));
        }
        out
    }
}

/// Builds feedback from a graded record.
///
/// `pool` supplies IRT parameters for ability estimation; problems
/// missing from the pool fall back to default parameters.
#[must_use]
pub fn generate_feedback(
    record: &StudentRecord,
    problems: &[Problem],
    pool: &ItemPool,
) -> StudentFeedback {
    let mut responses: Vec<(ItemParams, bool)> = Vec::new();
    let mut by_subject: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut by_level: BTreeMap<CognitionLevel, (usize, usize)> = BTreeMap::new();

    for response in &record.responses {
        let Some(problem) = problems.iter().find(|p| p.id() == &response.problem) else {
            continue;
        };
        let params = pool.params(&response.problem).unwrap_or_default();
        responses.push((params, response.is_correct));

        let subject = problem.subject().as_str().to_string();
        if !subject.is_empty() {
            let slot = by_subject.entry(subject).or_insert((0, 0));
            slot.1 += 1;
            if response.is_correct {
                slot.0 += 1;
            }
        }
        if let Some(level) = problem.cognition_level() {
            let slot = by_level.entry(level).or_insert((0, 0));
            slot.1 += 1;
            if response.is_correct {
                slot.0 += 1;
            }
        }
    }

    let estimate: AbilityEstimate = eap_estimate(&responses, 0.0, 1.0);
    let mut weak_subjects: Vec<(String, f64)> = by_subject
        .iter()
        .filter(|(_, (correct, attempted))| (*correct as f64) < 0.5 * *attempted as f64)
        .map(|(subject, (correct, attempted))| {
            (subject.clone(), *correct as f64 / *attempted as f64)
        })
        .collect();
    weak_subjects.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let weak_levels: Vec<CognitionLevel> = CognitionLevel::ALL
        .into_iter()
        .filter(|level| {
            by_level
                .get(level)
                .is_some_and(|(correct, attempted)| (*correct as f64) < 0.5 * *attempted as f64)
        })
        .collect();

    StudentFeedback {
        student: record.student.clone(),
        theta: estimate.theta,
        se: estimate.se,
        subject_breakdown: by_subject,
        weak_subjects: weak_subjects.into_iter().map(|(s, _)| s).collect(),
        weak_levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::{Answer, ItemResponse};

    fn problems() -> Vec<Problem> {
        vec![
            Problem::true_false("q1", "a", true)
                .unwrap()
                .with_subject("tcp")
                .with_cognition_level(CognitionLevel::Knowledge),
            Problem::true_false("q2", "b", true)
                .unwrap()
                .with_subject("tcp")
                .with_cognition_level(CognitionLevel::Knowledge),
            Problem::true_false("q3", "c", true)
                .unwrap()
                .with_subject("routing")
                .with_cognition_level(CognitionLevel::Analysis),
            Problem::true_false("q4", "d", true)
                .unwrap()
                .with_subject("routing")
                .with_cognition_level(CognitionLevel::Analysis),
        ]
    }

    fn record(correct: [bool; 4]) -> StudentRecord {
        let responses = correct
            .iter()
            .enumerate()
            .map(|(i, &ok)| {
                let pid = format!("q{}", i + 1).parse().unwrap();
                if ok {
                    ItemResponse::correct(pid, Answer::TrueFalse(true), 1.0)
                } else {
                    ItemResponse::incorrect(pid, Answer::TrueFalse(false), 1.0)
                }
            })
            .collect();
        StudentRecord::new("alice".parse().unwrap(), responses)
    }

    #[test]
    fn weak_subject_and_level_detected() {
        let feedback = generate_feedback(
            &record([true, true, false, false]),
            &problems(),
            &ItemPool::new(),
        );
        assert_eq!(feedback.weak_subjects, vec!["routing".to_string()]);
        assert_eq!(feedback.weak_levels, vec![CognitionLevel::Analysis]);
        assert_eq!(feedback.subject_breakdown["tcp"], (2, 2));
        assert_eq!(feedback.subject_breakdown["routing"], (0, 2));
    }

    #[test]
    fn perfect_record_has_no_weaknesses_and_positive_theta() {
        let feedback = generate_feedback(
            &record([true, true, true, true]),
            &problems(),
            &ItemPool::new(),
        );
        assert!(feedback.weak_subjects.is_empty());
        assert!(feedback.weak_levels.is_empty());
        assert!(feedback.theta > 0.0);
    }

    #[test]
    fn failing_record_has_negative_theta() {
        let feedback = generate_feedback(
            &record([false, false, false, false]),
            &problems(),
            &ItemPool::new(),
        );
        assert!(feedback.theta < 0.0);
        assert_eq!(feedback.weak_subjects.len(), 2);
    }

    #[test]
    fn pool_parameters_influence_estimate() {
        let mut pool = ItemPool::new();
        for i in 1..=4 {
            // Very hard items: answering them right means high ability.
            pool.add(
                format!("q{i}").parse().unwrap(),
                ItemParams::new(1.5, 2.0, 0.0),
            );
        }
        let with_pool = generate_feedback(&record([true, true, true, true]), &problems(), &pool);
        let without = generate_feedback(
            &record([true, true, true, true]),
            &problems(),
            &ItemPool::new(),
        );
        assert!(with_pool.theta > without.theta);
    }

    #[test]
    fn render_mentions_weak_subjects() {
        let feedback = generate_feedback(
            &record([true, true, false, false]),
            &problems(),
            &ItemPool::new(),
        );
        let text = feedback.render();
        assert!(text.contains("routing"));
        assert!(text.contains("Analysis"));
        assert!(text.contains("alice"));
    }

    #[test]
    fn unknown_problems_are_skipped() {
        let mut rec = record([true, true, true, true]);
        rec.responses.push(ItemResponse::correct(
            "ghost".parse().unwrap(),
            Answer::TrueFalse(true),
            1.0,
        ));
        let feedback = generate_feedback(&rec, &problems(), &ItemPool::new());
        assert_eq!(
            feedback
                .subject_breakdown
                .values()
                .map(|(_, attempted)| attempted)
                .sum::<usize>(),
            4
        );
    }
}
