//! Item selection strategies.

use std::collections::HashSet;

use mine_core::ProblemId;
use mine_simulator::ItemParams;

/// How the adaptive driver picks the next item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionStrategy {
    /// Maximum Fisher information at the current ability estimate — the
    /// standard CAT rule.
    #[default]
    MaxInformation,
    /// Uniform random among unused items — the ablation baseline.
    Random {
        /// Seed for the deterministic pseudo-random pick.
        seed: u64,
    },
    /// Randomesque exposure control (Kingsbury–Zara): pick uniformly
    /// among the `top_k` most informative unused items, so the same few
    /// items are not shown to every examinee.
    Randomesque {
        /// How many of the most informative items to draw from.
        top_k: usize,
        /// Seed for the deterministic pseudo-random pick.
        seed: u64,
    },
}

/// Picks the unused item with maximum information at `theta`.
///
/// Ties break toward the lexicographically smallest id for determinism.
#[must_use]
pub fn max_information<'a>(
    pool: &'a [(ProblemId, ItemParams)],
    used: &HashSet<ProblemId>,
    theta: f64,
) -> Option<&'a (ProblemId, ItemParams)> {
    pool.iter()
        .filter(|(id, _)| !used.contains(id))
        .max_by(|(id_a, a), (id_b, b)| {
            a.information(theta)
                .partial_cmp(&b.information(theta))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| id_b.cmp(id_a))
        })
}

/// Picks a pseudo-random unused item, deterministic in `(seed, step)`.
#[must_use]
pub fn random_item<'a>(
    pool: &'a [(ProblemId, ItemParams)],
    used: &HashSet<ProblemId>,
    seed: u64,
    step: usize,
) -> Option<&'a (ProblemId, ItemParams)> {
    let remaining: Vec<&(ProblemId, ItemParams)> =
        pool.iter().filter(|(id, _)| !used.contains(id)).collect();
    if remaining.is_empty() {
        return None;
    }
    // SplitMix64 over (seed, step) — no RNG state to carry.
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Some(remaining[(z % remaining.len() as u64) as usize])
}

/// Picks uniformly among the `top_k` most informative unused items.
///
/// With `top_k = 1` this degenerates to [`max_information`]. Ties and
/// ordering are deterministic (information descending, then id), and the
/// draw is deterministic in `(seed, step)`.
#[must_use]
pub fn randomesque<'a>(
    pool: &'a [(ProblemId, ItemParams)],
    used: &HashSet<ProblemId>,
    theta: f64,
    top_k: usize,
    seed: u64,
    step: usize,
) -> Option<&'a (ProblemId, ItemParams)> {
    let mut remaining: Vec<&(ProblemId, ItemParams)> =
        pool.iter().filter(|(id, _)| !used.contains(id)).collect();
    if remaining.is_empty() {
        return None;
    }
    remaining.sort_by(|(id_a, a), (id_b, b)| {
        b.information(theta)
            .partial_cmp(&a.information(theta))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| id_a.cmp(id_b))
    });
    let k = top_k.clamp(1, remaining.len());
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Some(remaining[(z % k as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<(ProblemId, ItemParams)> {
        (0..10)
            .map(|i| {
                (
                    format!("q{i}").parse().unwrap(),
                    ItemParams::new(1.0, i as f64 - 5.0, 0.0),
                )
            })
            .collect()
    }

    #[test]
    fn max_information_picks_item_near_theta() {
        let pool = pool();
        let used = HashSet::new();
        // θ = 0 → closest difficulty is b = 0 (q5).
        let (id, params) = max_information(&pool, &used, 0.0).unwrap();
        assert_eq!(id.as_str(), "q5");
        assert_eq!(params.b, 0.0);
        // θ = −4 → the item with b = −4 (q1) is the most informative.
        assert_eq!(
            max_information(&pool, &used, -4.0).unwrap().0.as_str(),
            "q1"
        );
    }

    #[test]
    fn used_items_are_skipped_until_pool_exhausts() {
        let pool = pool();
        let mut used = HashSet::new();
        for _ in 0..10 {
            let (id, _) = *max_information(&pool, &used, 0.0).as_ref().unwrap();
            assert!(used.insert(id.clone()));
        }
        assert!(max_information(&pool, &used, 0.0).is_none());
    }

    #[test]
    fn max_information_tie_breaks_deterministically() {
        let pool: Vec<(ProblemId, ItemParams)> = vec![
            ("b".parse().unwrap(), ItemParams::new(1.0, 0.0, 0.0)),
            ("a".parse().unwrap(), ItemParams::new(1.0, 0.0, 0.0)),
        ];
        let used = HashSet::new();
        assert_eq!(max_information(&pool, &used, 0.0).unwrap().0.as_str(), "a");
    }

    #[test]
    fn random_item_is_deterministic_and_respects_used() {
        let pool = pool();
        let mut used = HashSet::new();
        let first = random_item(&pool, &used, 7, 0).unwrap().0.clone();
        assert_eq!(random_item(&pool, &used, 7, 0).unwrap().0, first);
        used.insert(first.clone());
        let second = random_item(&pool, &used, 7, 1).unwrap().0.clone();
        assert_ne!(second, first);
        // Exhausting the pool returns None.
        for (id, _) in &pool {
            used.insert(id.clone());
        }
        assert!(random_item(&pool, &used, 7, 2).is_none());
    }

    #[test]
    fn randomesque_one_equals_max_information() {
        let pool = pool();
        let used = HashSet::new();
        for theta in [-2.0, 0.0, 2.0] {
            assert_eq!(
                randomesque(&pool, &used, theta, 1, 7, 0).unwrap().0,
                max_information(&pool, &used, theta).unwrap().0,
            );
        }
    }

    #[test]
    fn randomesque_stays_within_top_k() {
        let pool = pool();
        let used = HashSet::new();
        // θ = 0: the top-3 by information are b ∈ {0, ±1} → q4, q5, q6.
        let allowed = ["q4", "q5", "q6"];
        for step in 0..40 {
            let (id, _) = randomesque(&pool, &used, 0.0, 3, 11, step).unwrap();
            assert!(allowed.contains(&id.as_str()), "picked {id}");
        }
    }

    #[test]
    fn randomesque_spreads_exposure() {
        let pool = pool();
        let used = HashSet::new();
        let picks: HashSet<String> = (0..60)
            .map(|step| {
                randomesque(&pool, &used, 0.0, 3, 11, step)
                    .unwrap()
                    .0
                    .to_string()
            })
            .collect();
        assert!(
            picks.len() >= 2,
            "top-3 draw should not always pick one item"
        );
    }

    #[test]
    fn randomesque_exhausts_pool() {
        let pool = pool();
        let mut used = HashSet::new();
        for (id, _) in &pool {
            used.insert(id.clone());
        }
        assert!(randomesque(&pool, &used, 0.0, 3, 1, 0).is_none());
    }

    #[test]
    fn different_seeds_vary_the_pick() {
        let pool = pool();
        let used = HashSet::new();
        let picks: HashSet<String> = (0..20)
            .map(|seed| random_item(&pool, &used, seed, 0).unwrap().0.to_string())
            .collect();
        assert!(picks.len() > 1);
    }
}
