//! Ability estimation from scored responses.

use mine_simulator::ItemParams;
use serde::{Deserialize, Serialize};

/// An ability estimate with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbilityEstimate {
    /// The estimated latent ability θ.
    pub theta: f64,
    /// Standard error of the estimate.
    pub se: f64,
}

impl Default for AbilityEstimate {
    /// The standard-normal prior: θ = 0, SE = 1.
    fn default() -> Self {
        Self {
            theta: 0.0,
            se: 1.0,
        }
    }
}

/// Expected-a-posteriori estimate over a fixed quadrature grid with a
/// normal prior.
///
/// Robust for short tests and all-correct/all-wrong patterns (where
/// maximum likelihood diverges).
#[must_use]
pub fn eap_estimate(
    responses: &[(ItemParams, bool)],
    prior_mean: f64,
    prior_sd: f64,
) -> AbilityEstimate {
    const GRID: usize = 81;
    const SPAN: f64 = 4.0;
    let sd = prior_sd.max(1e-6);
    let mut numerator = 0.0;
    let mut denominator = 0.0;
    let mut second_moment = 0.0;
    let mut weights = Vec::with_capacity(GRID);
    let mut thetas = Vec::with_capacity(GRID);
    for i in 0..GRID {
        let theta = prior_mean - SPAN * sd + 2.0 * SPAN * sd * i as f64 / (GRID - 1) as f64;
        let z = (theta - prior_mean) / sd;
        // Work in log space to avoid underflow on long tests.
        let mut log_w = -0.5 * z * z;
        for (params, correct) in responses {
            let p = params.p_correct(theta).clamp(1e-9, 1.0 - 1e-9);
            log_w += if *correct { p.ln() } else { (1.0 - p).ln() };
        }
        thetas.push(theta);
        weights.push(log_w);
    }
    let max_log = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for (theta, log_w) in thetas.iter().zip(&weights) {
        let w = (log_w - max_log).exp();
        numerator += theta * w;
        denominator += w;
    }
    let mean = numerator / denominator;
    for (theta, log_w) in thetas.iter().zip(&weights) {
        let w = (log_w - max_log).exp();
        second_moment += (theta - mean) * (theta - mean) * w;
    }
    AbilityEstimate {
        theta: mean,
        se: (second_moment / denominator).sqrt(),
    }
}

/// Maximum-likelihood estimate via Newton–Raphson, starting from `start`
/// and clamped to `[-4, 4]`.
///
/// Returns `None` when the response pattern has no interior maximum
/// (all correct or all wrong) or the iteration fails to converge.
#[must_use]
pub fn mle_estimate(responses: &[(ItemParams, bool)], start: f64) -> Option<AbilityEstimate> {
    if responses.is_empty()
        || responses.iter().all(|(_, c)| *c)
        || responses.iter().all(|(_, c)| !*c)
    {
        return None;
    }
    let mut theta = start.clamp(-4.0, 4.0);
    for _ in 0..50 {
        let mut score = 0.0; // dL/dθ
        let mut info = 0.0; // −E[d²L/dθ²]
        for (params, correct) in responses {
            let p = params.p_correct(theta).clamp(1e-9, 1.0 - 1e-9);
            // 3PL score function component.
            let w = (p - params.c) / (p * (1.0 - params.c));
            let y = if *correct { 1.0 } else { 0.0 };
            score += params.a * w * (y - p);
            info += params.information(theta);
        }
        if info <= 1e-9 {
            return None;
        }
        let step = (score / info).clamp(-1.0, 1.0);
        theta = (theta + step).clamp(-4.0, 4.0);
        if step.abs() < 1e-6 {
            return Some(AbilityEstimate {
                theta,
                se: 1.0 / info.sqrt(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize) -> Vec<ItemParams> {
        (0..n)
            .map(|i| ItemParams::new(1.5, (i as f64 / n as f64) * 4.0 - 2.0, 0.0))
            .collect()
    }

    /// A deterministic student of ability θ answers correctly iff
    /// `p_correct(θ) > 0.5`.
    fn answers(theta: f64, items: &[ItemParams]) -> Vec<(ItemParams, bool)> {
        items
            .iter()
            .map(|p| (*p, p.p_correct(theta) > 0.5))
            .collect()
    }

    #[test]
    fn eap_recovers_ability_direction() {
        let items = ladder(30);
        let strong = eap_estimate(&answers(1.5, &items), 0.0, 1.0);
        let weak = eap_estimate(&answers(-1.5, &items), 0.0, 1.0);
        assert!(strong.theta > 0.8, "strong θ = {}", strong.theta);
        assert!(weak.theta < -0.8, "weak θ = {}", weak.theta);
    }

    #[test]
    fn eap_with_no_responses_returns_prior() {
        let estimate = eap_estimate(&[], 0.3, 1.0);
        assert!((estimate.theta - 0.3).abs() < 1e-6);
        assert!((estimate.se - 1.0).abs() < 0.05, "se ≈ prior sd");
    }

    #[test]
    fn eap_se_shrinks_with_more_items() {
        let short = eap_estimate(&answers(0.5, &ladder(5)), 0.0, 1.0);
        let long = eap_estimate(&answers(0.5, &ladder(40)), 0.0, 1.0);
        assert!(long.se < short.se, "{} < {}", long.se, short.se);
    }

    #[test]
    fn eap_handles_extreme_patterns() {
        let items = ladder(10);
        let all_correct: Vec<_> = items.iter().map(|p| (*p, true)).collect();
        let estimate = eap_estimate(&all_correct, 0.0, 1.0);
        assert!(estimate.theta > 1.0);
        assert!(estimate.theta.is_finite());
        let all_wrong: Vec<_> = items.iter().map(|p| (*p, false)).collect();
        assert!(eap_estimate(&all_wrong, 0.0, 1.0).theta < -1.0);
    }

    #[test]
    fn mle_agrees_with_eap_on_long_tests() {
        let items = ladder(40);
        let responses = answers(0.7, &items);
        let eap = eap_estimate(&responses, 0.0, 1.0);
        let mle = mle_estimate(&responses, 0.0).expect("mixed pattern converges");
        assert!(
            (eap.theta - mle.theta).abs() < 0.3,
            "eap {} vs mle {}",
            eap.theta,
            mle.theta
        );
        assert!(mle.se > 0.0);
    }

    #[test]
    fn mle_rejects_degenerate_patterns() {
        let items = ladder(10);
        let all: Vec<_> = items.iter().map(|p| (*p, true)).collect();
        assert!(mle_estimate(&all, 0.0).is_none());
        assert!(mle_estimate(&[], 0.0).is_none());
    }

    #[test]
    fn estimates_are_monotone_in_correct_count() {
        // More correct answers on the same ladder → higher θ.
        let items = ladder(20);
        let mut last = f64::NEG_INFINITY;
        for k in [5, 10, 15, 20] {
            let responses: Vec<_> = items.iter().enumerate().map(|(i, p)| (*p, i < k)).collect();
            let estimate = eap_estimate(&responses, 0.0, 1.0);
            assert!(estimate.theta > last, "k={k}");
            last = estimate.theta;
        }
    }
}
