//! QTI 1.2 `<item>` encoding and decoding.
//!
//! The mapping per question style:
//!
//! | style | QTI rendering |
//! |---|---|
//! | multiple choice | `response_lid`/`render_choice`, `respcondition` sets SCORE |
//! | true/false | `response_lid` with `T`/`F` labels |
//! | completion | one `response_str`/`render_fib` per blank |
//! | match | one `response_lid` per left entry, labels = right column |
//! | essay | `response_str`/`render_fib` with rows, no resprocessing |
//! | questionnaire | `response_lid`, no resprocessing |
//!
//! MINE metadata travels in `qtimetadatafield` entries: `qmd_itemtype`,
//! `qmd_weighting` (points), `mine_cognitionlevel`, `mine_subject`,
//! `mine_difficulty`, `mine_discrimination`.

use mine_core::{CognitionLevel, OptionKey};
use mine_itembank::{ChoiceOption, MatchPairs, Problem, ProblemBody};
use mine_metadata::{CognitionMeta, DifficultyIndex, DiscriminationIndex, IndividualTestMeta};
use mine_xml::Element;

use crate::error::QtiError;

fn material(text: &str) -> Element {
    Element::new("material").with_child(Element::new("mattext").with_text(text))
}

fn metadata_field(label: &str, entry: &str) -> Element {
    Element::new("qtimetadatafield")
        .with_child(Element::new("fieldlabel").with_text(label))
        .with_child(Element::new("fieldentry").with_text(entry))
}

fn response_label(key: &str, text: &str) -> Element {
    Element::new("response_label")
        .with_attr("ident", key)
        .with_child(material(text))
}

fn score_condition(respident: &str, value: &str, score: f64) -> Element {
    Element::new("respcondition")
        .with_child(
            Element::new("conditionvar").with_child(
                Element::new("varequal")
                    .with_attr("respident", respident)
                    .with_text(value),
            ),
        )
        .with_child(
            Element::new("setvar")
                .with_attr("action", "Add")
                .with_attr("varname", "SCORE")
                .with_text(score.to_string()),
        )
}

/// Encodes a problem as a QTI 1.2 `<item>` element.
#[must_use]
pub fn item_to_qti(problem: &Problem) -> Element {
    let mut item = Element::new("item")
        .with_attr("ident", problem.id().as_str())
        .with_attr("title", problem.metadata().general.title.clone());

    // --- itemmetadata -------------------------------------------------
    let mut qtimetadata = Element::new("qtimetadata")
        .with_child(metadata_field("qmd_itemtype", problem.style().keyword()))
        .with_child(metadata_field(
            "qmd_weighting",
            &problem.points().to_string(),
        ));
    if let Some(level) = problem.cognition_level() {
        qtimetadata.push(metadata_field(
            "mine_cognitionlevel",
            &level.letter().to_string(),
        ));
    }
    let subject = problem.subject();
    if !subject.as_str().is_empty() {
        qtimetadata.push(metadata_field("mine_subject", subject.as_str()));
    }
    if let Some(test) = &problem.metadata().individual_test {
        if let Some(p) = test.difficulty {
            qtimetadata.push(metadata_field("mine_difficulty", &p.value().to_string()));
        }
        if let Some(d) = test.discrimination {
            qtimetadata.push(metadata_field(
                "mine_discrimination",
                &d.value().to_string(),
            ));
        }
    }
    item.push(Element::new("itemmetadata").with_child(qtimetadata));

    // --- presentation + resprocessing ---------------------------------
    let mut presentation = Element::new("presentation");
    let mut resprocessing: Option<Element> = None;

    match problem.body() {
        ProblemBody::MultipleChoice {
            stem,
            options,
            correct,
        } => {
            presentation.push(material(stem));
            let mut render = Element::new("render_choice");
            for option in options {
                render.push(response_label(
                    &option.key.letter().to_string(),
                    &option.text,
                ));
            }
            presentation.push(
                Element::new("response_lid")
                    .with_attr("ident", "RESP")
                    .with_attr("rcardinality", "Single")
                    .with_child(render),
            );
            resprocessing = Some(Element::new("resprocessing").with_child(score_condition(
                "RESP",
                &correct.letter().to_string(),
                problem.points(),
            )));
        }
        ProblemBody::TrueFalse {
            stem,
            hint,
            correct,
        } => {
            presentation.push(material(stem));
            let render = Element::new("render_choice")
                .with_child(response_label("T", "True"))
                .with_child(response_label("F", "False"));
            presentation.push(
                Element::new("response_lid")
                    .with_attr("ident", "RESP")
                    .with_attr("rcardinality", "Single")
                    .with_child(render),
            );
            resprocessing = Some(Element::new("resprocessing").with_child(score_condition(
                "RESP",
                if *correct { "T" } else { "F" },
                problem.points(),
            )));
            if !hint.is_empty() {
                item.push(
                    Element::new("itemfeedback")
                        .with_attr("ident", "HINT")
                        .with_child(material(hint)),
                );
            }
        }
        ProblemBody::Completion { stem, blanks } => {
            presentation.push(material(stem));
            let mut processing = Element::new("resprocessing");
            for (i, blank) in blanks.iter().enumerate() {
                let ident = format!("FIB_{i}");
                presentation.push(
                    Element::new("response_str")
                        .with_attr("ident", &ident)
                        .with_child(Element::new("render_fib").with_attr("rows", "1")),
                );
                processing.push(score_condition(
                    &ident,
                    blank,
                    problem.points() / blanks.len() as f64,
                ));
            }
            resprocessing = Some(processing);
        }
        ProblemBody::Match(pairs) => {
            let mut processing = Element::new("resprocessing");
            for (i, left) in pairs.left.iter().enumerate() {
                let ident = format!("MATCH_{i}");
                presentation.push(material(left));
                let mut render = Element::new("render_choice");
                for (j, right) in pairs.right.iter().enumerate() {
                    render.push(response_label(&format!("R{j}"), right));
                }
                presentation.push(
                    Element::new("response_lid")
                        .with_attr("ident", &ident)
                        .with_attr("rcardinality", "Single")
                        .with_child(render),
                );
                processing.push(score_condition(
                    &ident,
                    &format!("R{}", pairs.correct[i]),
                    problem.points() / pairs.left.len() as f64,
                ));
            }
            resprocessing = Some(processing);
        }
        ProblemBody::Essay {
            question,
            hint,
            keywords,
        } => {
            presentation.push(material(question));
            presentation.push(
                Element::new("response_str")
                    .with_attr("ident", "ESSAY")
                    .with_child(Element::new("render_fib").with_attr("rows", "10")),
            );
            if !hint.is_empty() {
                item.push(
                    Element::new("itemfeedback")
                        .with_attr("ident", "HINT")
                        .with_child(material(hint)),
                );
            }
            for keyword in keywords {
                item.push(
                    Element::new("itemfeedback")
                        .with_attr("ident", "KEYWORD")
                        .with_child(material(keyword)),
                );
            }
        }
        ProblemBody::Questionnaire { prompt, options } => {
            presentation.push(material(prompt));
            let mut render = Element::new("render_choice");
            for option in options {
                render.push(response_label(
                    &option.key.letter().to_string(),
                    &option.text,
                ));
            }
            presentation.push(
                Element::new("response_lid")
                    .with_attr("ident", "SURVEY")
                    .with_attr("rcardinality", "Single")
                    .with_child(render),
            );
        }
    }

    // presentation must precede itemfeedback per the DTD ordering; we
    // rebuild children in order: itemmetadata, presentation,
    // resprocessing, feedback.
    let feedback: Vec<Element> = item.children_named("itemfeedback").cloned().collect();
    let metadata_el = item.child("itemmetadata").cloned().expect("just added");
    let mut ordered = Element::new("item");
    ordered.attributes = item.attributes.clone();
    ordered.push(metadata_el);
    ordered.push(presentation);
    if let Some(processing) = resprocessing {
        ordered.push(processing);
    }
    for fb in feedback {
        ordered.push(fb);
    }
    ordered
}

/// Reads a `qtimetadatafield` map out of an item.
fn read_metadata(item: &Element) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(qtimetadata) = item.find_path(&["itemmetadata", "qtimetadata"]) {
        for field in qtimetadata.children_named("qtimetadatafield") {
            let label = field.child_text("fieldlabel").unwrap_or_default();
            let entry = field.child_text("fieldentry").unwrap_or_default();
            out.push((label, entry));
        }
    }
    out
}

fn field<'a>(fields: &'a [(String, String)], label: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, e)| e.as_str())
}

fn mattext(el: &Element) -> String {
    el.find_path(&["material", "mattext"])
        .map(Element::text)
        .unwrap_or_default()
}

/// Collects `respident → correct value` pairs from resprocessing.
fn correct_values(item: &Element) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(processing) = item.child("resprocessing") {
        for condition in processing.children_named("respcondition") {
            if let Some(varequal) = condition.find_path(&["conditionvar", "varequal"]) {
                out.push((
                    varequal.attr("respident").unwrap_or_default().to_string(),
                    varequal.text(),
                ));
            }
        }
    }
    out
}

fn read_choice_options(response_lid: &Element) -> Result<Vec<ChoiceOption>, QtiError> {
    let render = response_lid
        .child("render_choice")
        .ok_or_else(|| QtiError::Schema {
            reason: "response_lid without render_choice".into(),
        })?;
    render
        .children_named("response_label")
        .map(|label| {
            let ident = label.attr("ident").unwrap_or_default();
            let key = ident
                .chars()
                .next()
                .and_then(|c| OptionKey::from_letter(c).ok())
                .ok_or_else(|| QtiError::Schema {
                    reason: format!("bad response_label ident {ident:?}"),
                })?;
            Ok(ChoiceOption::new(key, mattext(label)))
        })
        .collect()
}

/// Decodes a QTI 1.2 `<item>` back into a [`Problem`].
///
/// # Errors
///
/// Returns [`QtiError::Schema`] when the item does not match the subset
/// this crate emits, and [`QtiError::Bank`] when the decoded problem
/// fails validation.
pub fn item_from_qti(item: &Element) -> Result<Problem, QtiError> {
    if item.local_name() != "item" {
        return Err(QtiError::Schema {
            reason: format!("expected <item>, got <{}>", item.name),
        });
    }
    let ident = item.attr("ident").ok_or_else(|| QtiError::Schema {
        reason: "item missing ident".into(),
    })?;
    let fields = read_metadata(item);
    let itemtype = field(&fields, "qmd_itemtype").unwrap_or("multiple-choice");
    let presentation = item.child("presentation").ok_or_else(|| QtiError::Schema {
        reason: "item missing presentation".into(),
    })?;
    let corrects = correct_values(item);
    let first_material = presentation
        .child("material")
        .map(|m| m.child_text("mattext").unwrap_or_default())
        .unwrap_or_default();

    let body = match itemtype {
        "multiple-choice" => {
            let lid = presentation
                .child("response_lid")
                .ok_or_else(|| QtiError::Schema {
                    reason: "choice item missing response_lid".into(),
                })?;
            let options = read_choice_options(lid)?;
            let correct = corrects
                .iter()
                .find(|(resp, _)| resp == "RESP")
                .and_then(|(_, v)| v.trim().parse::<OptionKey>().ok())
                .ok_or_else(|| QtiError::Schema {
                    reason: "choice item missing correct response".into(),
                })?;
            ProblemBody::MultipleChoice {
                stem: first_material,
                options,
                correct,
            }
        }
        "true-false" => {
            let correct = corrects
                .iter()
                .find(|(resp, _)| resp == "RESP")
                .map(|(_, v)| v.trim() == "T")
                .ok_or_else(|| QtiError::Schema {
                    reason: "true-false item missing correct response".into(),
                })?;
            let hint = item
                .children_named("itemfeedback")
                .find(|fb| fb.attr("ident") == Some("HINT"))
                .map(mattext)
                .unwrap_or_default();
            ProblemBody::TrueFalse {
                stem: first_material,
                hint,
                correct,
            }
        }
        "completion" => {
            let mut blanks: Vec<(usize, String)> = corrects
                .iter()
                .filter_map(|(resp, value)| {
                    resp.strip_prefix("FIB_")
                        .and_then(|i| i.parse::<usize>().ok())
                        .map(|i| (i, value.clone()))
                })
                .collect();
            blanks.sort_unstable_by_key(|(i, _)| *i);
            ProblemBody::Completion {
                stem: first_material,
                blanks: blanks.into_iter().map(|(_, v)| v).collect(),
            }
        }
        "match" => {
            let left: Vec<String> = presentation
                .children_named("material")
                .map(|m| m.child_text("mattext").unwrap_or_default())
                .collect();
            let right: Vec<String> = presentation
                .child("response_lid")
                .and_then(|lid| lid.child("render_choice"))
                .map(|render| {
                    render
                        .children_named("response_label")
                        .map(mattext)
                        .collect()
                })
                .unwrap_or_default();
            let mut pairing: Vec<(usize, usize)> = corrects
                .iter()
                .filter_map(|(resp, value)| {
                    let i = resp.strip_prefix("MATCH_")?.parse::<usize>().ok()?;
                    let j = value.trim().strip_prefix('R')?.parse::<usize>().ok()?;
                    Some((i, j))
                })
                .collect();
            pairing.sort_unstable();
            ProblemBody::Match(MatchPairs {
                left,
                right,
                correct: pairing.into_iter().map(|(_, j)| j).collect(),
            })
        }
        "essay" => {
            let hint = item
                .children_named("itemfeedback")
                .find(|fb| fb.attr("ident") == Some("HINT"))
                .map(mattext)
                .unwrap_or_default();
            let keywords = item
                .children_named("itemfeedback")
                .filter(|fb| fb.attr("ident") == Some("KEYWORD"))
                .map(mattext)
                .collect();
            ProblemBody::Essay {
                question: first_material,
                hint,
                keywords,
            }
        }
        "questionnaire" => {
            let lid = presentation
                .child("response_lid")
                .ok_or_else(|| QtiError::Schema {
                    reason: "questionnaire missing response_lid".into(),
                })?;
            ProblemBody::Questionnaire {
                prompt: first_material,
                options: read_choice_options(lid)?,
            }
        }
        other => {
            return Err(QtiError::Schema {
                reason: format!("unknown qmd_itemtype {other:?}"),
            })
        }
    };

    let mut problem = Problem::new(ident, body)?;
    if let Some(points) = field(&fields, "qmd_weighting").and_then(|w| w.parse::<f64>().ok()) {
        problem.set_points(points);
    }
    if let Some(title) = item.attr("title") {
        problem.metadata_mut().general.title = title.to_string();
    }
    if let Some(level) = field(&fields, "mine_cognitionlevel")
        .and_then(|l| l.chars().next())
        .and_then(|c| CognitionLevel::from_letter(c).ok())
    {
        problem.metadata_mut().cognition = Some(CognitionMeta::new(level));
    }
    if let Some(subject) = field(&fields, "mine_subject") {
        problem.set_subject(subject);
    }
    let difficulty = field(&fields, "mine_difficulty")
        .and_then(|p| p.parse::<f64>().ok())
        .and_then(|p| DifficultyIndex::new(p).ok());
    let discrimination = field(&fields, "mine_discrimination")
        .and_then(|d| d.parse::<f64>().ok())
        .and_then(|d| DiscriminationIndex::new(d).ok());
    if difficulty.is_some() || discrimination.is_some() {
        let test = problem
            .metadata_mut()
            .individual_test
            .get_or_insert_with(IndividualTestMeta::default);
        test.difficulty = difficulty;
        test.discrimination = discrimination;
    }
    Ok(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_metadata::QuestionStyle;

    fn round_trip(problem: &Problem) -> Problem {
        let xml = item_to_qti(problem);
        let text = mine_xml::Document::new(xml).to_xml_string();
        let doc = mine_xml::parse_document(&text).unwrap();
        item_from_qti(&doc.root).unwrap()
    }

    #[test]
    fn multiple_choice_round_trip() {
        let problem = Problem::multiple_choice(
            "q1",
            "Pick A.",
            [
                ChoiceOption::new(OptionKey::A, "first"),
                ChoiceOption::new(OptionKey::B, "second"),
                ChoiceOption::new(OptionKey::C, "third"),
            ],
            OptionKey::B,
        )
        .unwrap()
        .with_points(2.5)
        .with_subject("sorting")
        .with_cognition_level(CognitionLevel::Application);
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
        assert_eq!(back.points(), 2.5);
        assert_eq!(back.subject().as_str(), "sorting");
        assert_eq!(back.cognition_level(), Some(CognitionLevel::Application));
    }

    #[test]
    fn true_false_round_trip_with_hint() {
        let problem = Problem::new(
            "q2",
            ProblemBody::TrueFalse {
                stem: "The moon is a star.".into(),
                hint: "think about fusion".into(),
                correct: false,
            },
        )
        .unwrap();
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
    }

    #[test]
    fn completion_round_trip() {
        let problem = Problem::completion(
            "q3",
            "___ and ___ are transport protocols.",
            vec!["tcp".to_string(), "udp".to_string()],
        )
        .unwrap();
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
    }

    #[test]
    fn match_round_trip() {
        let problem = Problem::match_items(
            "q4",
            MatchPairs {
                left: vec!["TCP".into(), "IP".into(), "ARP".into()],
                right: vec!["L2".into(), "L3".into(), "L4".into()],
                correct: vec![2, 1, 0],
            },
        )
        .unwrap();
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
    }

    #[test]
    fn essay_round_trip_with_keywords() {
        let problem = Problem::new(
            "q5",
            ProblemBody::Essay {
                question: "Explain AIMD.".into(),
                hint: "two phases".into(),
                keywords: vec!["additive".into(), "multiplicative".into()],
            },
        )
        .unwrap();
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
    }

    #[test]
    fn questionnaire_round_trip() {
        let problem = Problem::questionnaire(
            "q6",
            "Rate this course.",
            OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("rank {k}"))),
        )
        .unwrap();
        let back = round_trip(&problem);
        assert_eq!(back.body(), problem.body());
        assert_eq!(back.style(), QuestionStyle::Questionnaire);
    }

    #[test]
    fn difficulty_metadata_round_trips() {
        let mut problem = Problem::true_false("q7", "x", true).unwrap();
        {
            let test = problem
                .metadata_mut()
                .individual_test
                .get_or_insert_with(IndividualTestMeta::default);
            test.difficulty = Some(DifficultyIndex::new(0.635).unwrap());
            test.discrimination = Some(DiscriminationIndex::new(0.55).unwrap());
        }
        let back = round_trip(&problem);
        let test = back.metadata().individual_test.as_ref().unwrap();
        assert_eq!(test.difficulty.unwrap().value(), 0.635);
        assert_eq!(test.discrimination.unwrap().value(), 0.55);
    }

    #[test]
    fn rejects_foreign_items() {
        assert!(item_from_qti(&Element::new("notitem")).is_err());
        let no_ident = Element::new("item");
        assert!(item_from_qti(&no_ident).is_err());
        let bad_type = Element::new("item")
            .with_attr("ident", "x")
            .with_child(Element::new("presentation"))
            .with_child(
                Element::new("itemmetadata").with_child(
                    Element::new("qtimetadata").with_child(
                        Element::new("qtimetadatafield")
                            .with_child(Element::new("fieldlabel").with_text("qmd_itemtype"))
                            .with_child(Element::new("fieldentry").with_text("hologram")),
                    ),
                ),
            );
        assert!(item_from_qti(&bad_type).is_err());
    }

    #[test]
    fn emitted_item_has_dtd_ordering() {
        let problem = Problem::new(
            "q8",
            ProblemBody::TrueFalse {
                stem: "s".into(),
                hint: "h".into(),
                correct: true,
            },
        )
        .unwrap();
        let xml = item_to_qti(&problem);
        let names: Vec<&str> = xml.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "itemmetadata",
                "presentation",
                "resprocessing",
                "itemfeedback"
            ]
        );
    }
}
