//! QTI results reporting: exporting graded sittings as XML.
//!
//! IMS QTI pairs the item/assessment interchange (§2.3) with a results
//! vocabulary so LMSes can exchange *outcomes*, not just questions.
//! This module renders an [`ExamRecord`] as a `qti_result_report`
//! document — one `<result>` per student with a summary `<outcomes>`
//! block and one `<item_result>` per response — and parses it back.

use std::time::Duration;

use mine_core::{Answer, ExamId, ExamRecord, ItemResponse, OptionKey, StudentId, StudentRecord};
use mine_xml::{Document, Element};

use crate::error::QtiError;

/// Encodes a whole class's sitting as a `qti_result_report` document.
#[must_use]
pub fn results_to_qti(record: &ExamRecord) -> Document {
    let mut report =
        Element::new("qti_result_report").with_attr("assessment", record.exam.as_str());
    for student in &record.students {
        report.push(student_result(student));
    }
    Document::new(report)
}

fn student_result(student: &StudentRecord) -> Element {
    let mut result = Element::new("result").with_attr("participant", student.student.as_str());
    result.push(
        Element::new("outcomes")
            .with_child(Element::new("score").with_text(format!("{}", student.score())))
            .with_child(Element::new("score_max").with_text(format!("{}", student.max_score())))
            .with_child(
                Element::new("duration").with_text(format!("{}", student.total_time.as_secs_f64())),
            ),
    );
    for response in &student.responses {
        let mut item = Element::new("item_result")
            .with_attr("ident_ref", response.problem.as_str())
            .with_attr(
                "status",
                if response.is_correct {
                    "Correct"
                } else {
                    "Incorrect"
                },
            );
        item.push(Element::new("response_value").with_text(encode_answer(&response.answer)));
        item.push(Element::new("score_value").with_text(format!("{}", response.points_awarded)));
        item.push(
            Element::new("latency").with_text(format!("{}", response.time_spent.as_secs_f64())),
        );
        result.push(item);
    }
    result
}

fn encode_answer(answer: &Answer) -> String {
    match answer {
        Answer::Choice(key) => format!("choice:{}", key.letter()),
        Answer::MultiChoice(keys) => format!(
            "multi:{}",
            keys.iter().map(|k| k.letter()).collect::<String>()
        ),
        Answer::TrueFalse(value) => format!("tf:{value}"),
        Answer::Text(text) => format!("text:{text}"),
        // Count prefix disambiguates `[]` from `[""]` (joining with a
        // separator maps both to the empty string).
        Answer::Completion(blanks) => {
            format!("fib:{}:{}", blanks.len(), blanks.join("\u{1f}"))
        }
        Answer::Match(pairs) => format!(
            "match:{}",
            pairs
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ),
        Answer::Skipped => "skipped".to_string(),
    }
}

fn decode_answer(text: &str) -> Result<Answer, QtiError> {
    let bad = |reason: String| QtiError::Schema { reason };
    if text == "skipped" {
        return Ok(Answer::Skipped);
    }
    let (kind, payload) = text
        .split_once(':')
        .ok_or_else(|| bad(format!("bad response value {text:?}")))?;
    match kind {
        "choice" => {
            let key = payload
                .parse::<OptionKey>()
                .map_err(|err| bad(err.to_string()))?;
            Ok(Answer::Choice(key))
        }
        "multi" => {
            let keys = payload
                .chars()
                .map(OptionKey::from_letter)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|err| bad(err.to_string()))?;
            Ok(Answer::MultiChoice(keys))
        }
        "tf" => match payload {
            "true" => Ok(Answer::TrueFalse(true)),
            "false" => Ok(Answer::TrueFalse(false)),
            other => Err(bad(format!("bad tf value {other:?}"))),
        },
        "text" => Ok(Answer::Text(payload.to_string())),
        "fib" => {
            let (count, joined) = payload
                .split_once(':')
                .ok_or_else(|| bad(format!("bad fib payload {payload:?}")))?;
            let count: usize = count
                .parse()
                .map_err(|_| bad(format!("bad fib count {count:?}")))?;
            let blanks: Vec<String> = if count == 0 {
                Vec::new()
            } else {
                joined.split('\u{1f}').map(str::to_string).collect()
            };
            if blanks.len() != count {
                return Err(bad(format!(
                    "fib count mismatch: declared {count}, found {}",
                    blanks.len()
                )));
            }
            Ok(Answer::Completion(blanks))
        }
        "match" => Ok(Answer::Match(if payload.is_empty() {
            Vec::new()
        } else {
            payload
                .split(',')
                .map(|n| n.parse().map_err(|_| bad(format!("bad match {n:?}"))))
                .collect::<Result<Vec<_>, _>>()?
        })),
        other => Err(bad(format!("unknown response kind {other:?}"))),
    }
}

/// Decodes a `qti_result_report` document back into an [`ExamRecord`].
///
/// Per-item `points_possible` does not travel in the report (QTI
/// outcomes carry totals); it is reconstructed as `points_awarded` for
/// correct items and 0-points-awarded items keep a possible of 0 — use
/// the exam definition for exact maxima.
///
/// # Errors
///
/// Returns [`QtiError::Schema`] for structural mismatches.
pub fn results_from_qti(doc: &Document) -> Result<ExamRecord, QtiError> {
    let root = &doc.root;
    if root.name != "qti_result_report" {
        return Err(QtiError::Schema {
            reason: format!("expected <qti_result_report>, got <{}>", root.name),
        });
    }
    let exam: ExamId = root
        .attr("assessment")
        .unwrap_or_default()
        .parse()
        .map_err(|err| QtiError::Schema {
            reason: format!("bad assessment id: {err}"),
        })?;
    let mut students = Vec::new();
    for result in root.children_named("result") {
        let student: StudentId = result
            .attr("participant")
            .unwrap_or_default()
            .parse()
            .map_err(|err| QtiError::Schema {
                reason: format!("bad participant id: {err}"),
            })?;
        let mut responses = Vec::new();
        for item in result.children_named("item_result") {
            let problem = item
                .attr("ident_ref")
                .unwrap_or_default()
                .parse()
                .map_err(|err| QtiError::Schema {
                    reason: format!("bad ident_ref: {err}"),
                })?;
            let answer = decode_answer(&item.child_text("response_value").unwrap_or_default())?;
            let points_awarded: f64 = item
                .child_text("score_value")
                .unwrap_or_default()
                .trim()
                .parse()
                .unwrap_or(0.0);
            let latency: f64 = item
                .child_text("latency")
                .unwrap_or_default()
                .trim()
                .parse()
                .unwrap_or(0.0);
            let is_correct = item.attr("status") == Some("Correct");
            responses.push(ItemResponse {
                problem,
                answer,
                is_correct,
                points_awarded,
                points_possible: points_awarded,
                time_spent: Duration::from_secs_f64(latency.max(0.0)),
                answered_at: None,
            });
        }
        let mut record = StudentRecord::new(student, responses);
        if let Some(duration) = result
            .find_path(&["outcomes", "duration"])
            .and_then(|d| d.text().trim().parse::<f64>().ok())
        {
            record.total_time = Duration::from_secs_f64(duration.max(0.0));
        }
        students.push(record);
    }
    Ok(ExamRecord::new(exam, students))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExamRecord {
        let answers = [
            Answer::Choice(OptionKey::C),
            Answer::TrueFalse(false),
            Answer::Text("an essay".into()),
            Answer::Completion(vec!["a".into(), "b c".into()]),
            Answer::Match(vec![1, 0]),
            Answer::MultiChoice(vec![OptionKey::A, OptionKey::D]),
            Answer::Skipped,
        ];
        let students = (0..3)
            .map(|s| {
                let responses = answers
                    .iter()
                    .enumerate()
                    .map(|(q, answer)| {
                        let mut response = if (q + s) % 2 == 0 {
                            ItemResponse::correct(
                                format!("q{q}").parse().unwrap(),
                                answer.clone(),
                                2.0,
                            )
                        } else {
                            ItemResponse::incorrect(
                                format!("q{q}").parse().unwrap(),
                                answer.clone(),
                                2.0,
                            )
                        };
                        response.time_spent = Duration::from_secs_f64(12.5 + q as f64);
                        response
                    })
                    .collect();
                let mut record = StudentRecord::new(format!("s{s}").parse().unwrap(), responses);
                record.total_time = Duration::from_secs(600 + s as u64);
                record
            })
            .collect();
        ExamRecord::new("reported-exam".parse().unwrap(), students)
    }

    #[test]
    fn report_round_trips_through_xml_text() {
        let original = record();
        let doc = results_to_qti(&original);
        let text = doc.to_xml_string();
        assert!(text.contains("qti_result_report"));
        assert!(text.contains("participant=\"s0\""));
        let parsed = mine_xml::parse_document(&text).unwrap();
        let back = results_from_qti(&parsed).unwrap();
        assert_eq!(back.exam, original.exam);
        assert_eq!(back.class_size(), 3);
        for (a, b) in back.students.iter().zip(&original.students) {
            assert_eq!(a.student, b.student);
            assert_eq!(a.total_time, b.total_time);
            assert_eq!(a.score(), b.score());
            for (ra, rb) in a.responses.iter().zip(&b.responses) {
                assert_eq!(ra.problem, rb.problem);
                assert_eq!(ra.answer, rb.answer, "answer for {}", rb.problem);
                assert_eq!(ra.is_correct, rb.is_correct);
                assert_eq!(ra.points_awarded, rb.points_awarded);
                assert_eq!(ra.time_spent, rb.time_spent);
            }
        }
    }

    #[test]
    fn reimported_report_supports_analysis() {
        use mine_core::GroupFraction;
        // A report exported from one LMS can be analyzed in another:
        // scores and correctness survive, which is all §4.1 needs.
        let doc = results_to_qti(&record());
        let text = doc.to_xml_string();
        let back = results_from_qti(&mine_xml::parse_document(&text).unwrap()).unwrap();
        back.validate().unwrap();
        assert_eq!(GroupFraction::PAPER.group_size(back.class_size()), 1);
    }

    #[test]
    fn rejects_foreign_documents() {
        let doc = Document::new(Element::new("notareport"));
        assert!(results_from_qti(&doc).is_err());
        let doc = Document::new(Element::new("qti_result_report"));
        assert!(results_from_qti(&doc).is_err(), "missing assessment id");
    }

    #[test]
    fn bad_response_values_are_schema_errors() {
        assert!(decode_answer("garbage-without-colon").is_err());
        assert!(decode_answer("choice:9").is_err());
        assert!(decode_answer("tf:maybe").is_err());
        assert!(decode_answer("match:x,y").is_err());
        assert!(decode_answer("alien:stuff").is_err());
        assert_eq!(decode_answer("skipped").unwrap(), Answer::Skipped);
        assert_eq!(
            decode_answer("fib:0:").unwrap(),
            Answer::Completion(Vec::new())
        );
        assert_eq!(
            decode_answer("fib:1:").unwrap(),
            Answer::Completion(vec![String::new()])
        );
        assert!(decode_answer("fib:").is_err());
        assert!(decode_answer("fib:2:onlyone").is_err());
    }
}
