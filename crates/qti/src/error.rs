//! Error type for QTI interchange.

use std::error::Error as StdError;
use std::fmt;

use mine_itembank::BankError;
use mine_xml::XmlError;

/// Errors raised while encoding or decoding QTI documents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QtiError {
    /// The document is structurally not the QTI we emit.
    Schema {
        /// What was wrong.
        reason: String,
    },
    /// Raw XML parsing failed.
    Xml(XmlError),
    /// A decoded problem failed item-bank validation.
    Bank(BankError),
}

impl fmt::Display for QtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QtiError::Schema { reason } => write!(f, "qti schema error: {reason}"),
            QtiError::Xml(err) => write!(f, "xml error: {err}"),
            QtiError::Bank(err) => write!(f, "item bank error: {err}"),
        }
    }
}

impl StdError for QtiError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            QtiError::Xml(err) => Some(err),
            QtiError::Bank(err) => Some(err),
            QtiError::Schema { .. } => None,
        }
    }
}

impl From<XmlError> for QtiError {
    fn from(err: XmlError) -> Self {
        QtiError::Xml(err)
    }
}

impl From<BankError> for QtiError {
    fn from(err: BankError) -> Self {
        QtiError::Bank(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = QtiError::Schema {
            reason: "missing item".into(),
        };
        assert!(err.to_string().contains("missing item"));
        assert!(err.source().is_none());
        let err: QtiError = XmlError::UnknownEntity { entity: "x".into() }.into();
        assert!(err.source().is_some());
    }
}
