//! QTI 1.2 `<questestinterop>`/`<assessment>` encoding and decoding.
//!
//! An exam maps to one `<assessment>`; each presentation group (§5.4)
//! becomes a `<section>` (ungrouped entries land in the `MAIN` section)
//! and every entry inlines its full `<item>`. Per-entry point overrides
//! are flattened into the inlined item's `qmd_weighting` on export, so a
//! re-import carries the effective points on the problems themselves.

use mine_itembank::{Exam, ExamEntry, GroupStyle, Problem};
use mine_metadata::DisplayOrder;
use mine_xml::{Document, Element};

use crate::error::QtiError;
use crate::item::{item_from_qti, item_to_qti};

/// A decoded QTI assessment: the exam structure plus its problems.
#[derive(Debug, Clone, PartialEq)]
pub struct QtiAssessment {
    /// The reconstructed exam.
    pub exam: Exam,
    /// The problems inlined in the document, in section order.
    pub problems: Vec<Problem>,
}

/// Encodes an exam and its problems as a `questestinterop` document.
///
/// Problems must cover every exam entry; extra problems are ignored.
///
/// # Errors
///
/// Returns [`QtiError::Schema`] when an entry's problem is missing from
/// `problems`.
pub fn assessment_to_qti(exam: &Exam, problems: &[Problem]) -> Result<Document, QtiError> {
    let mut assessment = Element::new("assessment")
        .with_attr("ident", exam.id().as_str())
        .with_attr("title", exam.title());

    let mut qtimetadata = Element::new("qtimetadata");
    qtimetadata.push(field("mine_displayorder", exam.display_order().keyword()));
    if let Some(limit) = exam.meta().test_time {
        qtimetadata.push(field("qmd_timelimit", &limit.as_secs().to_string()));
    }
    assessment.push(qtimetadata);

    let find = |entry: &ExamEntry| -> Result<Problem, QtiError> {
        let mut problem = problems
            .iter()
            .find(|p| p.id() == &entry.problem)
            .cloned()
            .ok_or_else(|| QtiError::Schema {
                reason: format!("exam entry {} has no matching problem", entry.problem),
            })?;
        if let Some(points) = entry.points {
            problem.set_points(points);
        }
        Ok(problem)
    };

    // One section per group, in declaration order.
    for group in exam.groups() {
        let mut section = Element::new("section")
            .with_attr("ident", group.id.as_str())
            .with_attr("title", &group.style.heading);
        section.push(field_block(&group.style));
        for entry in exam.entries_in_group(&group.id) {
            section.push(item_to_qti(&find(entry)?));
        }
        assessment.push(section);
    }
    // Ungrouped entries.
    let mut main = Element::new("section").with_attr("ident", "MAIN");
    for entry in exam.entries().iter().filter(|e| e.group.is_none()) {
        main.push(item_to_qti(&find(entry)?));
    }
    assessment.push(main);

    Ok(Document::new(
        Element::new("questestinterop").with_child(assessment),
    ))
}

fn field(label: &str, entry: &str) -> Element {
    Element::new("qtimetadatafield")
        .with_child(Element::new("fieldlabel").with_text(label))
        .with_child(Element::new("fieldentry").with_text(entry))
}

fn field_block(style: &GroupStyle) -> Element {
    Element::new("qtimetadata")
        .with_child(field("mine_columns", &style.columns.to_string()))
        .with_child(field("mine_shuffle", &style.shuffle_within.to_string()))
        .with_child(field("mine_pagebreak", &style.page_break.to_string()))
}

fn read_fields(parent: &Element) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(qtimetadata) = parent.child("qtimetadata") {
        for f in qtimetadata.children_named("qtimetadatafield") {
            out.push((
                f.child_text("fieldlabel").unwrap_or_default(),
                f.child_text("fieldentry").unwrap_or_default(),
            ));
        }
    }
    out
}

fn lookup<'a>(fields: &'a [(String, String)], label: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, e)| e.as_str())
}

/// Decodes a `questestinterop` document back into an exam + problems.
///
/// # Errors
///
/// Returns [`QtiError::Schema`] for structural mismatches and
/// [`QtiError::Bank`] when the rebuilt exam fails validation.
pub fn assessment_from_qti(doc: &Document) -> Result<QtiAssessment, QtiError> {
    let root = &doc.root;
    if root.local_name() != "questestinterop" {
        return Err(QtiError::Schema {
            reason: format!("expected <questestinterop>, got <{}>", root.name),
        });
    }
    let assessment = root.child("assessment").ok_or_else(|| QtiError::Schema {
        reason: "document has no assessment".into(),
    })?;
    let ident = assessment.attr("ident").ok_or_else(|| QtiError::Schema {
        reason: "assessment missing ident".into(),
    })?;
    let fields = read_fields(assessment);
    let mut builder = Exam::builder(ident)?.title(assessment.attr("title").unwrap_or_default());
    if let Some(order) = lookup(&fields, "mine_displayorder").and_then(DisplayOrder::from_keyword) {
        builder = builder.display_order(order);
    }
    if let Some(limit) = lookup(&fields, "qmd_timelimit").and_then(|t| t.parse::<u64>().ok()) {
        builder = builder.test_time(std::time::Duration::from_secs(limit));
    }

    let mut problems = Vec::new();
    let mut entries: Vec<ExamEntry> = Vec::new();
    for section in assessment.children_named("section") {
        let section_id = section.attr("ident").unwrap_or("MAIN");
        let group_id = if section_id == "MAIN" {
            None
        } else {
            let section_fields = read_fields(section);
            let style = GroupStyle {
                columns: lookup(&section_fields, "mine_columns")
                    .and_then(|c| c.parse().ok())
                    .unwrap_or(1),
                shuffle_within: lookup(&section_fields, "mine_shuffle") == Some("true"),
                page_break: lookup(&section_fields, "mine_pagebreak") == Some("true"),
                heading: section.attr("title").unwrap_or_default().to_string(),
            };
            let gid: mine_core::GroupId = section_id.parse().map_err(|_| QtiError::Schema {
                reason: format!("bad section ident {section_id:?}"),
            })?;
            builder =
                builder.group(mine_itembank::PresentationGroup::new(gid.clone()).with_style(style));
            Some(gid)
        };
        for item in section.children_named("item") {
            let problem = item_from_qti(item)?;
            let mut entry = ExamEntry::new(problem.id().clone());
            entry.group = group_id.clone();
            entries.push(entry);
            problems.push(problem);
        }
    }
    for entry in entries {
        builder = builder.entry_with(entry);
    }
    let exam = builder.build()?;
    Ok(QtiAssessment { exam, problems })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mine_core::OptionKey;
    use mine_itembank::{ChoiceOption, PresentationGroup};

    fn problems() -> Vec<Problem> {
        vec![
            Problem::multiple_choice(
                "q1",
                "Pick one.",
                [
                    ChoiceOption::new(OptionKey::A, "x"),
                    ChoiceOption::new(OptionKey::B, "y"),
                ],
                OptionKey::A,
            )
            .unwrap(),
            Problem::true_false("q2", "Water is wet.", true).unwrap(),
            Problem::essay("q3", "Discuss.").unwrap(),
        ]
    }

    fn exam() -> Exam {
        Exam::builder("final")
            .unwrap()
            .title("Final Exam")
            .display_order(DisplayOrder::Random)
            .test_time(std::time::Duration::from_secs(5400))
            .group(
                PresentationGroup::new("objective".parse().unwrap()).with_style(GroupStyle {
                    columns: 2,
                    shuffle_within: true,
                    page_break: true,
                    heading: "Objective part".into(),
                }),
            )
            .entry_with(
                ExamEntry::new("q1".parse().unwrap()).in_group("objective".parse().unwrap()),
            )
            .entry_with(
                ExamEntry::new("q2".parse().unwrap())
                    .in_group("objective".parse().unwrap())
                    .worth(4.0),
            )
            .entry("q3".parse().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn assessment_round_trip() {
        let doc = assessment_to_qti(&exam(), &problems()).unwrap();
        let text = doc.to_xml_string();
        let parsed = mine_xml::parse_document(&text).unwrap();
        let back = assessment_from_qti(&parsed).unwrap();
        assert_eq!(back.exam.id().as_str(), "final");
        assert_eq!(back.exam.title(), "Final Exam");
        assert_eq!(back.exam.display_order(), DisplayOrder::Random);
        assert_eq!(
            back.exam.meta().test_time,
            Some(std::time::Duration::from_secs(5400))
        );
        assert_eq!(back.exam.len(), 3);
        assert_eq!(back.problems.len(), 3);
        // The group survives as a section.
        let group = back.exam.group(&"objective".parse().unwrap()).unwrap();
        assert_eq!(group.style.columns, 2);
        assert!(group.style.shuffle_within);
        assert_eq!(group.style.heading, "Objective part");
        // The 4-point override was flattened into q2's weighting.
        let q2 = back
            .problems
            .iter()
            .find(|p| p.id().as_str() == "q2")
            .unwrap();
        assert_eq!(q2.points(), 4.0);
    }

    #[test]
    fn entry_order_is_sections_then_main() {
        let doc = assessment_to_qti(&exam(), &problems()).unwrap();
        let text = doc.to_xml_string();
        let parsed = mine_xml::parse_document(&text).unwrap();
        let back = assessment_from_qti(&parsed).unwrap();
        let order: Vec<&str> = back
            .exam
            .entries()
            .iter()
            .map(|e| e.problem.as_str())
            .collect();
        assert_eq!(order, vec!["q1", "q2", "q3"]);
    }

    #[test]
    fn missing_problem_is_schema_error() {
        let err = assessment_to_qti(&exam(), &problems()[..2]).unwrap_err();
        assert!(matches!(err, QtiError::Schema { .. }));
    }

    #[test]
    fn decode_rejects_wrong_root() {
        let doc = Document::new(Element::new("quiz"));
        assert!(assessment_from_qti(&doc).is_err());
        let doc = Document::new(Element::new("questestinterop"));
        assert!(assessment_from_qti(&doc).is_err());
    }
}
