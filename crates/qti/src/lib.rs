//! IMS QTI 1.2-style item and assessment interchange (§2.3).
//!
//! "IMS Question & Test Interoperability (Q&TI) specification allows
//! systems to exchange questions and tests" — and the paper's conclusion
//! notes "the authoring concept is also referenced IMS QTI". This crate
//! exports the item bank's problems and exams to a QTI-1.2-shaped XML
//! vocabulary (`questestinterop` → `assessment` → `section` → `item`)
//! and imports them back, carrying the MINE assessment metadata in
//! `qtimetadatafield` entries (cognition level, subject, difficulty and
//! discrimination indices).
//!
//! # Examples
//!
//! ```
//! use mine_itembank::Problem;
//! use mine_qti::{item_to_qti, item_from_qti};
//!
//! let problem = Problem::true_false("q1", "QTI is an IMS spec.", true)?;
//! let xml = item_to_qti(&problem);
//! let back = item_from_qti(&xml)?;
//! assert_eq!(back.body(), problem.body());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assessment;
pub mod error;
pub mod item;
pub mod results;

pub use assessment::{assessment_from_qti, assessment_to_qti, QtiAssessment};
pub use error::QtiError;
pub use item::{item_from_qti, item_to_qti};
pub use results::{results_from_qti, results_to_qti};
